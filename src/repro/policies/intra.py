"""Intra-layer reuse: the whole layer is resident on-chip.

Every element is transferred exactly once (the off-chip minimum), but the
residency requirement is the full layer working set — often hundreds of kB
to a few MB (Table 3), so this policy only fits large buffers.
"""

from __future__ import annotations

from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic


class IntraLayerReuse(Policy):
    """Whole-layer residency (paper §3.2, "intra-layer reuse")."""

    name = "intra"

    def residency(self, layer: LayerSpec) -> TileSizes:
        """Full-layer working set; the budget only gates feasibility."""
        return TileSizes(
            ifmap=layer.ifmap_elems,
            filters=layer.filter_elems,
            ofmap=layer.ofmap_elems,
        )

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate whole-layer residency within the budget (None if infeasible)."""
        tiles = self.residency(layer)
        if not self._fits(tiles, budget_elems, prefetch):
            return None
        schedule = LayerSchedule(
            resident_ifmap=self.ifmap_pass_elems(layer),
            resident_filters=layer.filter_elems,
            groups=(
                StepGroup(count=1, macs=layer.macs, store=layer.ofmap_elems),
            ),
        )
        traffic = Traffic(
            ifmap_reads=self.ifmap_pass_elems(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            ofmap_resident_at_end=True,
        )
