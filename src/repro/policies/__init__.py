"""Scratchpad memory-management policies (paper §3.2)."""

from .base import (
    CandidatePlan,
    LayerSchedule,
    Policy,
    StepGroup,
    TileSizes,
    Traffic,
)
from .intra import IntraLayerReuse
from .p1 import IfmapReuse
from .p2 import FilterReuse
from .p3 import PerChannelReuse
from .p4 import PartialIfmapReuse, split_blocks
from .p5 import PartialPerChannelReuse
from .registry import (
    FALLBACK_POLICY,
    NAMED_POLICIES,
    SINGLE_TRANSFER_POLICY_NAMES,
    policy_by_name,
)
from .tiled import TiledFallback

__all__ = [
    "Policy",
    "CandidatePlan",
    "LayerSchedule",
    "StepGroup",
    "TileSizes",
    "Traffic",
    "IntraLayerReuse",
    "IfmapReuse",
    "FilterReuse",
    "PerChannelReuse",
    "PartialIfmapReuse",
    "PartialPerChannelReuse",
    "TiledFallback",
    "split_blocks",
    "NAMED_POLICIES",
    "FALLBACK_POLICY",
    "SINGLE_TRANSFER_POLICY_NAMES",
    "policy_by_name",
]
