"""Policy 2 — filter reuse.

The entire ifmap stays resident; filters stream through one at a time, and
the ofmap buffer holds one output channel (``O_H × O_W``).  Every element
crosses the off-chip interface exactly once.

Depth-wise layers stream one per-channel 2-D filter at a time (the grouped
filter's channels are independent), so the filter tile is ``F_H × F_W`` and
one step finishes one ofmap channel.
"""

from __future__ import annotations

from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic


class FilterReuse(Policy):
    """Policy 2: resident ifmap, filters streamed one by one."""

    name = "p2"

    def residency(self, layer: LayerSpec) -> TileSizes:
        """Full ifmap + one filter + one ofmap channel; budget-independent."""
        if layer.kind.is_depthwise:
            filter_tile = layer.f_h * layer.f_w
        else:
            filter_tile = layer.filter_elems_per_filter
        return TileSizes(
            ifmap=layer.ifmap_elems,
            filters=filter_tile,
            ofmap=layer.out_h * layer.out_w,
        )

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate resident ifmap against streamed filters within the budget (None if infeasible)."""
        num_steps = layer.in_c if layer.kind.is_depthwise else layer.num_filters
        channel = layer.out_h * layer.out_w
        tiles = self.residency(layer)
        filter_tile = tiles.filters
        if not self._fits(tiles, budget_elems, prefetch):
            return None
        step_macs = layer.macs // num_steps
        schedule = LayerSchedule(
            resident_ifmap=self.ifmap_pass_elems(layer),
            groups=(
                StepGroup(
                    count=num_steps,
                    filters=filter_tile,
                    macs=step_macs,
                    store=channel,
                ),
            ),
        )
        traffic = Traffic(
            ifmap_reads=self.ifmap_pass_elems(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            ofmap_resident_at_end=False,
        )
