"""Policy 3 — per-channel reuse.

Convolution reuse happens per channel: one ifmap channel meets only the
matching channel of each filter.  This policy keeps one channel of *all*
filters resident (``F_H × F_W × F#``), streams a single-channel ifmap
window (``F_H × I_W``) height-wise, and accumulates into a resident
full-layer ofmap (``O_H × O_W × C_O``).  Every element crosses the
off-chip interface exactly once.

Depth-wise layers degenerate gracefully: each channel's 2-D filter is "one
channel of all filters", and since a DW channel's output depends only on its
own input channel, the ofmap can stream out per channel (``O_H × O_W``
residency) instead of staying resident for the whole layer.
"""

from __future__ import annotations

from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic


class PerChannelReuse(Policy):
    """Policy 3: per-channel filter residency with full-ofmap accumulation."""

    name = "p3"

    def residency(self, layer: LayerSpec) -> TileSizes:
        """Channel window + one filter channel + ofmap; budget-independent."""
        if layer.kind.is_depthwise:
            filter_tile = layer.f_h * layer.f_w
            ofmap_tile = layer.out_h * layer.out_w
        else:
            filter_tile = layer.f_h * layer.f_w * layer.num_filters
            ofmap_tile = layer.ofmap_elems
        return TileSizes(
            ifmap=layer.f_h * layer.padded_w,
            filters=filter_tile,
            ofmap=ofmap_tile,
        )

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate per-channel streaming with full-ofmap accumulation within the budget (None if infeasible)."""
        depthwise = layer.kind.is_depthwise
        tiles = self.residency(layer)
        filter_tile = tiles.filters
        ofmap_tile = tiles.ofmap
        if not self._fits(tiles, budget_elems, prefetch):
            return None

        # Per input channel: load the filter channel + fill the window, then
        # slide the window down one output row at a time.
        row_macs = layer.macs // (layer.out_h * layer.in_c)
        cols = self.covered_cols(layer)
        window_fill = layer.f_h * cols
        row_load = self.row_step(layer) * cols
        per_channel_store = ofmap_tile if depthwise else 0
        groups = [
            StepGroup(
                count=layer.in_c,
                ifmap=window_fill,
                filters=filter_tile,
                macs=row_macs,
                store=per_channel_store,
            )
        ]
        if layer.out_h > 1:
            groups.append(
                StepGroup(
                    count=layer.in_c * (layer.out_h - 1),
                    ifmap=row_load,
                    macs=row_macs,
                )
            )
        if not depthwise:
            # The accumulated full ofmap drains once at the end.
            groups.append(StepGroup(count=1, store=layer.ofmap_elems))
        schedule = LayerSchedule(groups=tuple(groups))
        traffic = Traffic(
            ifmap_reads=layer.in_c * self.ifmap_pass_elems_per_channel(layer),
            filter_reads=layer.in_c * filter_tile,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            ofmap_resident_at_end=not depthwise,
        )
