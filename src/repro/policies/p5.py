"""Policy 5 — partial per-channel reuse.

Combines Policies 3 and 4: the ifmap streams as a single-channel window
(``F_H × I_W``), the filters load in blocks of ``n`` filters with one
channel per filter (``F_H × F_W × n``), and the ofmap holds the full
spatial extent of those ``n`` channels (``O_H × O_W × n``), accumulating
across input channels.  The ifmap re-streams ``x = ⌈F#/n⌉`` times while
filters and ofmap move only once.

Depth-wise layers block over channels (each channel pairs with its own 2-D
filter), so ``x = 1`` — the single-transfer minimum the paper exploits on
EfficientNetB0's DW layers.
"""

from __future__ import annotations

from ..arch.units import ceil_div
from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic
from .p4 import PartialIfmapReuse, split_blocks


class PartialPerChannelReuse(Policy):
    """Policy 5: per-channel streaming against filter blocks of size ``n``."""

    name = "p5"

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate per-channel streaming against filter blocks within the budget (None if infeasible)."""
        if layer.kind.is_depthwise:
            # Identical streaming structure to Policy 4's channel blocking;
            # the distinction between P4 and P5 only exists for dense layers.
            plan = PartialIfmapReuse()._plan_depthwise(layer, budget_elems, prefetch)
            if plan is None:
                return None
            return CandidatePlan(
                policy_name=self.name,
                layer=layer,
                tiles=plan.tiles,
                traffic=plan.traffic,
                schedule=plan.schedule,
                prefetch=prefetch,
                block_size=plan.block_size,
            )
        return self._plan_dense(layer, budget_elems, prefetch)

    def capacity_signature(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> object:
        """The chosen block size ``n`` (or None), like Policy 4."""
        if layer.kind.is_depthwise:
            return PartialIfmapReuse._channel_block(layer, budget_elems, prefetch)
        return self._filter_block(layer, budget_elems, prefetch)

    @staticmethod
    def _filter_block(
        layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> int | None:
        """Dense layers: largest filter-block size ``n`` within the budget."""
        window = layer.f_h * layer.padded_w
        per_filter = layer.f_h * layer.f_w + layer.out_h * layer.out_w
        return PartialIfmapReuse._max_block(
            budget_elems, prefetch, window, per_filter, layer.num_filters - 1
        )

    def _plan_dense(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        window = layer.f_h * layer.padded_w
        n = self._filter_block(layer, budget_elems, prefetch)
        if n is None:
            return None
        x = ceil_div(layer.num_filters, n)
        tiles = TileSizes(
            ifmap=window,
            filters=layer.f_h * layer.f_w * n,
            ofmap=layer.out_h * layer.out_w * n,
        )
        # Per filter block: loop input channels; per channel, load the
        # filter-channel slice and slide the window down the ifmap.
        row_macs_unit = layer.out_w * layer.f_h * layer.f_w
        cols = self.covered_cols(layer)
        row_load = self.row_step(layer) * cols
        groups: list[StepGroup] = []
        for count, size in split_blocks(layer.num_filters, n):
            groups.append(
                StepGroup(
                    count=count * layer.in_c,
                    ifmap=layer.f_h * cols,
                    filters=layer.f_h * layer.f_w * size,
                    macs=row_macs_unit * size,
                )
            )
            if layer.out_h > 1:
                groups.append(
                    StepGroup(
                        count=count * layer.in_c * (layer.out_h - 1),
                        ifmap=row_load,
                        macs=row_macs_unit * size,
                    )
                )
            # Block completes: drain its ofmap channels.
            groups.append(
                StepGroup(count=count, store=layer.out_h * layer.out_w * size)
            )
        schedule = LayerSchedule(groups=tuple(groups))
        traffic = Traffic(
            ifmap_reads=x * layer.in_c * self.ifmap_pass_elems_per_channel(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            block_size=n,
        )
