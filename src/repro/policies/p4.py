"""Policy 4 — partial ifmap reuse.

Like Policy 1 the ifmap streams as a ``F_H × I_W × C_I`` sliding window,
but the filters load in blocks of ``n < F#`` filters, so the whole ifmap is
re-streamed from off-chip ``x = ⌈F#/n⌉`` times while filters and ofmap
still move only once.  ``n`` is memory-dependent: the policy instantiates
the largest block that satisfies the GLB budget (paper: "their requirements
are constrained by the GLB size").

Depth-wise layers block over *channels* instead: a block of ``n`` channels
needs only its own ifmap channels, so the ifmap is never re-streamed
(``x = 1``) and the policy reaches the single-transfer minimum the paper
notes for DW layers.
"""

from __future__ import annotations

from ..arch.units import ceil_div
from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic


def split_blocks(total: int, block: int) -> list[tuple[int, int]]:
    """Partition ``total`` items into blocks: ``[(count, size), ...]``.

    Full blocks first, then the remainder block if any, e.g.
    ``split_blocks(10, 4) == [(2, 4), (1, 2)]``.
    """
    if block <= 0 or total <= 0:
        raise ValueError("split_blocks needs positive total and block")
    full, rem = divmod(total, block)
    out = []
    if full:
        out.append((full, block))
    if rem:
        out.append((1, rem))
    return out


class PartialIfmapReuse(Policy):
    """Policy 4: sliding-window ifmap against filter blocks of size ``n``."""

    name = "p4"

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate sliding-window ifmap against filter blocks within the budget (None if infeasible)."""
        if layer.kind.is_depthwise:
            return self._plan_depthwise(layer, budget_elems, prefetch)
        return self._plan_dense(layer, budget_elems, prefetch)

    def capacity_signature(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> object:
        """The chosen block size ``n`` (or None): the plan is a pure
        function of ``(layer, prefetch, n)``, so equal ``n`` across budgets
        means identical plans."""
        if layer.kind.is_depthwise:
            return self._channel_block(layer, budget_elems, prefetch)
        return self._filter_block(layer, budget_elems, prefetch)

    # ------------------------------------------------------------------

    @staticmethod
    def _max_block(
        budget_elems: int, prefetch: bool, fixed: int, per_n: int, n_max: int
    ) -> int | None:
        """Largest ``n ≤ n_max`` with ``factor·(fixed + n·per_n) ≤ budget``."""
        factor = 2 if prefetch else 1
        room = budget_elems // factor - fixed
        if room < per_n or n_max < 1:
            return None
        return min(n_max, room // per_n)

    def _filter_block(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> int | None:
        """Dense layers: largest filter-block size ``n`` within the budget."""
        window = layer.f_h * layer.padded_w * layer.in_c
        per_filter = layer.filter_elems_per_filter + layer.out_w
        # n ranges over [1, F#): n = F# would be Policy 1 (paper §3.2).
        return self._max_block(
            budget_elems, prefetch, window, per_filter, layer.num_filters - 1
        )

    @staticmethod
    def _channel_block(
        layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> int | None:
        """Depthwise layers: largest channel-block size ``n`` in the budget."""
        per_n = (
            layer.f_h * layer.padded_w  # window slice
            + layer.f_h * layer.f_w  # filter slice
            + layer.out_w  # ofmap row slice
        )
        return PartialIfmapReuse._max_block(
            budget_elems, prefetch, 0, per_n, layer.in_c
        )

    def _plan_dense(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        window = layer.f_h * layer.padded_w * layer.in_c
        n = self._filter_block(layer, budget_elems, prefetch)
        if n is None:
            return None
        x = ceil_div(layer.num_filters, n)
        tiles = TileSizes(
            ifmap=window,
            filters=layer.filter_elems_per_filter * n,
            ofmap=layer.out_w * n,
        )
        row_macs_per_filter = layer.macs // (layer.out_h * layer.num_filters)
        cols = self.covered_cols(layer)
        step_rows_load = self.row_step(layer) * cols * layer.in_c
        fill = layer.f_h * cols * layer.in_c
        groups: list[StepGroup] = []
        for count, size in split_blocks(layer.num_filters, n):
            groups.append(
                StepGroup(
                    count=count,
                    ifmap=fill,
                    filters=layer.filter_elems_per_filter * size,
                    macs=row_macs_per_filter * size,
                    store=layer.out_w * size,
                )
            )
            if layer.out_h > 1:
                groups.append(
                    StepGroup(
                        count=count * (layer.out_h - 1),
                        ifmap=step_rows_load,
                        macs=row_macs_per_filter * size,
                        store=layer.out_w * size,
                    )
                )
        schedule = LayerSchedule(groups=tuple(groups))
        traffic = Traffic(
            ifmap_reads=x * self.ifmap_pass_elems(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            block_size=n,
        )

    def _plan_depthwise(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        # Block over channels: window, filter slice and ofmap row all scale
        # with n, and each channel's ifmap is needed by its own filter only,
        # so the ifmap streams exactly once regardless of n.
        n = self._channel_block(layer, budget_elems, prefetch)
        if n is None:
            return None
        cols = self.covered_cols(layer)
        tiles = TileSizes(
            ifmap=layer.f_h * layer.padded_w * n,
            filters=layer.f_h * layer.f_w * n,
            ofmap=layer.out_w * n,
        )
        groups: list[StepGroup] = []
        for count, size in split_blocks(layer.in_c, n):
            row_macs = layer.out_w * size * layer.f_h * layer.f_w
            groups.append(
                StepGroup(
                    count=count,
                    ifmap=layer.f_h * cols * size,
                    filters=layer.f_h * layer.f_w * size,
                    macs=row_macs,
                    store=layer.out_w * size,
                )
            )
            if layer.out_h > 1:
                groups.append(
                    StepGroup(
                        count=count * (layer.out_h - 1),
                        ifmap=self.row_step(layer) * cols * size,
                        macs=row_macs,
                        store=layer.out_w * size,
                    )
                )
        schedule = LayerSchedule(groups=tuple(groups))
        traffic = Traffic(
            ifmap_reads=layer.in_c * self.ifmap_pass_elems_per_channel(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            block_size=n,
        )
