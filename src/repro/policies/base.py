"""Policy framework: tile plans, streaming schedules and the policy ABC.

A *policy* (paper §3.2) decides which data stays resident in the global
buffer, what streams through it tile by tile, and therefore how much memory
the layer needs and how many off-chip transfers it performs.  Evaluating a
policy on a layer yields a :class:`CandidatePlan`:

* ``tiles`` — the Eq. (1)/(2) residency terms ``I_Tile + F_Tile + O_Tile``;
* ``traffic`` — exact off-chip reads/writes in elements;
* ``schedule`` — a compact streaming schedule (groups of identical steps)
  that the latency estimator and the validation simulator both consume.

All quantities are in *elements*; byte conversion happens at the estimator
boundary through the :class:`~repro.arch.AcceleratorSpec`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..arch.units import ceil_div
from ..nn.layer import LayerSpec


@dataclass(frozen=True)
class TileSizes:
    """Residency requirement of a policy: the Eq. (1) terms, in elements."""

    ifmap: int
    filters: int
    ofmap: int

    def __post_init__(self) -> None:
        if min(self.ifmap, self.filters, self.ofmap) < 0:
            raise ValueError("tile sizes must be non-negative")

    @property
    def total(self) -> int:
        return self.ifmap + self.filters + self.ofmap


@dataclass(frozen=True)
class Traffic:
    """Exact off-chip transfers of a plan, in elements."""

    ifmap_reads: int
    filter_reads: int
    ofmap_writes: int
    #: Intermediate ofmap spill/refill traffic (tiled fallback only).
    ofmap_spills: int = 0

    def __post_init__(self) -> None:
        if min(self.ifmap_reads, self.filter_reads, self.ofmap_writes, self.ofmap_spills) < 0:
            raise ValueError("traffic must be non-negative")

    @property
    def reads(self) -> int:
        return self.ifmap_reads + self.filter_reads + self.ofmap_spills

    @property
    def writes(self) -> int:
        return self.ofmap_writes + self.ofmap_spills

    @property
    def total(self) -> int:
        return self.reads + self.writes


@dataclass(frozen=True)
class StepGroup:
    """``count`` identical streaming steps.

    Each step loads ``ifmap`` + ``filters`` elements from off-chip, performs
    ``macs`` multiply-accumulates, and writes back ``store`` ofmap elements.
    Loads are split by tensor so the inter-layer-reuse transform can strip
    ifmap traffic exactly.  Schedules are stored as groups so that layers
    with thousands of uniform steps stay O(1) to describe; the validation
    simulator expands them on demand.
    """

    count: int
    ifmap: int = 0
    filters: int = 0
    macs: int = 0
    store: int = 0

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("step group count must be positive")
        if min(self.ifmap, self.filters, self.macs, self.store) < 0:
            raise ValueError("step group quantities must be non-negative")

    @property
    def load(self) -> int:
        """Total off-chip load of one step."""
        return self.ifmap + self.filters


@dataclass(frozen=True)
class LayerSchedule:
    """Streaming schedule of one layer under one policy.

    ``resident_ifmap``/``resident_filters`` elements are fetched once before
    any compute starts (e.g. all filters under Policy 1); the step groups
    then stream the rest.
    """

    groups: tuple[StepGroup, ...]
    resident_ifmap: int = 0
    resident_filters: int = 0

    def __post_init__(self) -> None:
        if min(self.resident_ifmap, self.resident_filters) < 0:
            raise ValueError("resident loads must be non-negative")

    @property
    def resident_load(self) -> int:
        return self.resident_ifmap + self.resident_filters

    @property
    def total_ifmap_load(self) -> int:
        return self.resident_ifmap + sum(g.count * g.ifmap for g in self.groups)

    @property
    def total_filter_load(self) -> int:
        return self.resident_filters + sum(g.count * g.filters for g in self.groups)

    @property
    def total_load(self) -> int:
        return self.total_ifmap_load + self.total_filter_load

    @property
    def total_store(self) -> int:
        return sum(g.count * g.store for g in self.groups)

    @property
    def total_macs(self) -> int:
        return sum(g.count * g.macs for g in self.groups)

    @property
    def num_steps(self) -> int:
        return sum(g.count for g in self.groups)


@dataclass(frozen=True)
class CandidatePlan:
    """A feasibility-checked policy instantiation for one layer."""

    policy_name: str
    layer: LayerSpec
    tiles: TileSizes
    traffic: Traffic
    schedule: LayerSchedule
    prefetch: bool
    #: Filter-block size for the memory-dependent policies (P4/P5); None
    #: for the fixed policies.
    block_size: int | None = None
    #: Ofmap tile extent for band-tiled plans: (rows o_t, cols w_t).
    #: None for the named policies (their tiles are implied).
    tile_shape: tuple[int, int] | None = None
    #: Whether the full ofmap is resident when the layer finishes — the
    #: prerequisite for donating it to the next layer (inter-layer reuse).
    ofmap_resident_at_end: bool = False

    @property
    def memory_elems(self) -> int:
        """GLB residency per Eq. (1) (doubled per Eq. (2) with prefetch)."""
        return (2 if self.prefetch else 1) * self.tiles.total

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"p2+p"`` (Table 4 / Fig. 6 style)."""
        return self.policy_name + ("+p" if self.prefetch else "")


class Policy(abc.ABC):
    """A memory-management policy (paper §3.2)."""

    #: Short identifier used in plans and reports ("intra", "p1", .., "p5").
    name: str = ""

    @abc.abstractmethod
    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate the policy for ``layer`` within ``budget_elems``.

        Returns ``None`` when the policy cannot fit the budget (Eq. (1) or
        Eq. (2) violated for every parameterization).
        """

    def residency(self, layer: LayerSpec) -> TileSizes | None:
        """Budget-independent Eq. (1) residency, when the policy has one.

        The fixed policies (intra, P1–P3) derive their tiles from the layer
        alone — the budget only gates feasibility — so they return their
        tiles here.  Budget-dependent policies (P4/P5's block size, the
        tile search) return ``None`` and override
        :meth:`capacity_signature` instead.
        """
        return None

    def capacity_signature(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> object:
        """Everything :meth:`plan` takes from the budget, as a comparable value.

        **Contract:** equal signatures at two budgets imply :meth:`plan`
        returns identical results at both — the soundness condition for
        delta re-planning across a GLB-size sweep
        (:class:`~repro.analyzer.delta.SweepPlanner`).  For the fixed
        policies that is the Eq. (1)/(2) feasibility bit; budget-dependent
        policies encode their chosen parameters (block size ``n``, winning
        tile shape).  The default is maximally conservative: the budget
        itself, which forces a re-plan whenever the budget moves.
        """
        tiles = self.residency(layer)
        if tiles is None:
            return budget_elems
        return self._fits(tiles, budget_elems, prefetch)

    # Helpers shared by concrete policies -------------------------------

    @staticmethod
    def _fits(tiles: TileSizes, budget_elems: int, prefetch: bool) -> bool:
        factor = 2 if prefetch else 1
        return factor * tiles.total <= budget_elems

    @staticmethod
    def row_step(layer: LayerSpec) -> int:
        """New ifmap rows a sliding-window step loads.

        ``stride`` rows for the common ``stride ≤ F_H`` case; when the
        stride exceeds the filter the window skips rows entirely and each
        step loads a fresh ``F_H``-row window.
        """
        return min(layer.stride, layer.f_h)

    @staticmethod
    def covered_rows(layer: LayerSpec) -> int:
        """Padded ifmap rows actually touched by the sliding window."""
        touched = layer.f_h + (layer.out_h - 1) * Policy.row_step(layer)
        return min(layer.padded_h, touched)

    @staticmethod
    def covered_cols(layer: LayerSpec) -> int:
        """Padded ifmap columns actually touched by the sliding window.

        Equals the full padded width for the universal ``stride ≤ F_W``
        case; strided layers with ``S > F_W`` skip columns, which traffic
        accounting must not charge (the declared *tile* still spans the
        padded width — only transfers count touched data).
        """
        step = min(layer.stride, layer.f_w)
        touched = layer.f_w + (layer.out_w - 1) * step
        return min(layer.padded_w, touched)

    @staticmethod
    def ifmap_pass_elems(layer: LayerSpec) -> int:
        """Elements of one height-wise pass over the touched padded ifmap."""
        return (
            Policy.covered_rows(layer)
            * Policy.covered_cols(layer)
            * layer.in_c
        )

    @staticmethod
    def ifmap_pass_elems_per_channel(layer: LayerSpec) -> int:
        """Elements of one height-wise pass over a single padded channel."""
        return Policy.covered_rows(layer) * Policy.covered_cols(layer)


def blocks_of(total: int, block: int) -> int:
    """Number of blocks of size ``block`` covering ``total`` items."""
    return ceil_div(total, block)
