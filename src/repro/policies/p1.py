"""Policy 1 — ifmap reuse.

All filters of the layer stay resident; the ifmap streams through a
height-wise sliding window of ``F_H × I_W × C_I`` and each window produces
one full ofmap row (``1 × O_W × C_O``).  Every element crosses the off-chip
interface exactly once (Fig. 2b of the paper).
"""

from __future__ import annotations

from ..nn.layer import LayerSpec
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic


class IfmapReuse(Policy):
    """Policy 1: resident filters, sliding-window ifmap, ofmap-row output."""

    name = "p1"

    def residency(self, layer: LayerSpec) -> TileSizes:
        """Sliding window + all filters + one ofmap row; budget-independent."""
        return TileSizes(
            ifmap=layer.f_h * layer.padded_w * layer.in_c,
            filters=layer.filter_elems,
            ofmap=layer.out_w * layer.out_c,
        )

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Instantiate resident filters against a sliding ifmap window within the budget (None if infeasible)."""
        tiles = self.residency(layer)
        if not self._fits(tiles, budget_elems, prefetch):
            return None
        row_macs = layer.macs // layer.out_h
        row_store = layer.out_w * layer.out_c
        cols = self.covered_cols(layer)
        step_rows_load = self.row_step(layer) * cols * layer.in_c
        fill = layer.f_h * cols * layer.in_c
        groups = [StepGroup(count=1, ifmap=fill, macs=row_macs, store=row_store)]
        if layer.out_h > 1:
            groups.append(
                StepGroup(
                    count=layer.out_h - 1,
                    ifmap=step_rows_load,
                    macs=row_macs,
                    store=row_store,
                )
            )
        schedule = LayerSchedule(
            resident_filters=layer.filter_elems, groups=tuple(groups)
        )
        traffic = Traffic(
            ifmap_reads=self.ifmap_pass_elems(layer),
            filter_reads=layer.filter_elems,
            ofmap_writes=layer.ofmap_elems,
        )
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            ofmap_resident_at_end=False,
        )
