"""Tile-search fallback for layers no named policy can fit.

Algorithm 1's analyzer requires every layer to have at least one feasible
plan: "If the condition ... is not true for any of the policies, then we
have to search for appropriate tile sizes that will satisfy the condition.
This may lead to an increased off-chip accesses" (paper §3.3).

Policy 5 with ``n = 1`` is the smallest-footprint corner of the named
policies, but it still needs a full spatial ofmap channel (``O_H × O_W``)
resident.  The search tiles further along the access directions of the
paper's Fig. 2a:

* **height-wise** — ofmap row bands of ``o_t`` rows; band boundaries
  re-load the ``F_H − S`` halo rows (the turquoise re-loads of Fig. 2a);
* **width-wise** — ofmap column bands of ``w_t`` columns with the
  symmetric ``F_W − S`` column halos; engaged only when height-wise
  tiling alone cannot fit (width tiling never reduces traffic, it only
  shrinks footprints);
* **depth-wise** — one ifmap channel at a time with per-channel filter
  slices (as in Policies 3/5), re-streamed once per (row band × column
  band × filter block) since a band's partial sums must finish before it
  drains.

Filters additionally block into groups of ``n_f`` as in Policies 4/5.
The search enumerates candidate ``(n_f, o_t[, w_t])`` combinations and
returns the feasible plan with the fewest off-chip accesses, tie-broken
toward fewer steps.

The search is the planner's hot loop (hundreds to thousands of tile
candidates per layer), so by default it runs **vectorized**: the whole
candidate grid's memory footprints, traffic totals and step counts are
evaluated as NumPy arrays in one shot (every quantity has a closed form
in ``(n_f, o_t, w_t)`` — band sums factor into a row-sum × column-sum
product), the winner is picked with a stable masked argmin, and only the
winning candidate is instantiated into a full :class:`CandidatePlan` by
the exact scalar construction.  ``REPRO_SCALAR_PLANNER=1`` selects the
original candidate-at-a-time loop instead; both paths are bit-identical
(same winner, same tie-breaks — the parity suite asserts it).
"""

from __future__ import annotations

import numpy as np

from ..arch.units import ceil_div
from ..nn.layer import LayerSpec
from ..plancore import scalar_planner_enabled, stable_masked_argmin
from .base import CandidatePlan, LayerSchedule, Policy, StepGroup, TileSizes, Traffic
from .p4 import split_blocks


def _candidate_values(limit: int) -> list[int]:
    """1, 2, 4, ... powers of two up to ``limit``, plus ``limit`` itself."""
    values = []
    v = 1
    while v < limit:
        values.append(v)
        v *= 2
    values.append(limit)
    return sorted(set(values))


class TiledFallback(Policy):
    """Tile search over filter blocks × ofmap row bands × column bands."""

    name = "tiled"

    def plan(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """Search tile shapes; return the fewest-accesses feasible plan."""
        if scalar_planner_enabled():
            return self._plan_scalar(layer, budget_elems, prefetch)
        params = self._search(layer, budget_elems, prefetch)
        if params is None:
            return None
        return self._instantiate(layer, budget_elems, prefetch, *params)

    def capacity_signature(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> object:
        """The winning tile parameters (or None): everything plan() takes
        from the budget.  Same winner ⇒ bit-identical plan."""
        return self._search(layer, budget_elems, prefetch)

    # ------------------------------------------------------------------
    # Vectorized grid search (the default path)
    # ------------------------------------------------------------------

    def _search(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> tuple[int, int, int] | None:
        """Winning ``(n_f, o_t, w_t)`` of the tile grid, or None.

        Mirrors the scalar loop exactly: height-wise candidates first
        (``w_t = O_W``), the width direction only when nothing fits.
        """
        n_limit = layer.in_c if layer.kind.is_depthwise else layer.num_filters
        nf_vals = _candidate_values(n_limit)
        ot_vals = _candidate_values(layer.out_h)
        winner = self._grid_winner(
            layer, budget_elems, prefetch, nf_vals, ot_vals, [layer.out_w]
        )
        if winner is None:
            wt_vals = _candidate_values(layer.out_w)[:-1]
            if wt_vals:
                winner = self._grid_winner(
                    layer, budget_elems, prefetch, nf_vals, ot_vals, wt_vals
                )
        return winner

    def _grid_winner(
        self,
        layer: LayerSpec,
        budget_elems: int,
        prefetch: bool,
        nf_vals: list[int],
        ot_vals: list[int],
        wt_vals: list[int],
    ) -> tuple[int, int, int] | None:
        """Best feasible candidate of one ``n_f × o_t × w_t`` grid.

        Every per-candidate quantity of :meth:`_instantiate` has a closed
        form: the band sum ``Σ covered_rows·covered_cols`` factors into
        ``(Σ covered_rows)·(Σ covered_cols)`` because row and column
        bands tile independently, and block sums collapse through
        ``Σ count = ⌈total/n_f⌉`` and ``Σ count·size = total``.  The
        winner minimizes ``(traffic, steps)`` with the earliest grid
        index kept on exact ties — the same key and tie-break as the
        scalar loop's strict-improvement ``consider()``.
        """
        # Candidate axes in the scalar loop's nesting order (n_f outer,
        # o_t middle, w_t inner), flattened C-order.
        n_f = np.repeat(
            np.asarray(nf_vals, dtype=np.int64), len(ot_vals) * len(wt_vals)
        )
        o_t = np.tile(
            np.repeat(np.asarray(ot_vals, dtype=np.int64), len(wt_vals)),
            len(nf_vals),
        )
        w_t = np.tile(np.asarray(wt_vals, dtype=np.int64), len(nf_vals) * len(ot_vals))

        depthwise = layer.kind.is_depthwise
        row_step = min(layer.stride, layer.f_h)
        col_step = min(layer.stride, layer.f_w)
        filter_area = layer.f_h * layer.f_w

        # Eq. (1) residency terms of every candidate.
        window_cols = np.minimum(layer.padded_w, layer.f_w + (w_t - 1) * col_step)
        window = layer.f_h * window_cols * (n_f if depthwise else 1)
        filter_slice = filter_area * n_f
        ofmap_tile = o_t * w_t * n_f
        factor = 2 if prefetch else 1
        feasible = factor * (window + filter_slice + ofmap_tile) <= budget_elems
        if not bool(feasible.any()):
            return None

        # Band structure: Σ_bands covered_rows·covered_cols factors into
        # (Σ_bh covered_rows)·(Σ_bw covered_cols).
        bands_h = -(-layer.out_h // o_t)
        bands_w = -(-layer.out_w // w_t)
        rows_last = layer.out_h - (bands_h - 1) * o_t
        cols_last = layer.out_w - (bands_w - 1) * w_t
        cr_full = np.minimum(layer.padded_h, layer.f_h + (o_t - 1) * row_step)
        cr_last = np.minimum(layer.padded_h, layer.f_h + (rows_last - 1) * row_step)
        cc_full = np.minimum(layer.padded_w, layer.f_w + (w_t - 1) * col_step)
        cc_last = np.minimum(layer.padded_w, layer.f_w + (cols_last - 1) * col_step)
        sum_rows = (bands_h - 1) * cr_full + cr_last
        sum_cols = (bands_w - 1) * cc_full + cc_last
        bands = bands_h * bands_w

        # Filter blocking: Σ count = ⌈total/n_f⌉ blocks, Σ count·size = total.
        total_items = layer.in_c if depthwise else layer.num_filters
        num_blocks = -(-total_items // n_f)

        if depthwise:
            total_ifmap = sum_rows * sum_cols * layer.in_c
            total_filters = bands * filter_area * layer.in_c
            num_steps = bands * num_blocks
        else:
            chan_iters = layer.in_c
            total_ifmap = sum_rows * sum_cols * chan_iters * num_blocks
            total_filters = bands * chan_iters * filter_area * layer.num_filters
            num_steps = bands * num_blocks * (chan_iters + 1)
        traffic_total = total_ifmap + total_filters + layer.ofmap_elems

        index = stable_masked_argmin(feasible, traffic_total, num_steps)
        if index is None:
            return None
        return (int(n_f[index]), int(o_t[index]), int(w_t[index]))

    # ------------------------------------------------------------------
    # Scalar path (parity oracle, REPRO_SCALAR_PLANNER=1)
    # ------------------------------------------------------------------

    def _plan_scalar(
        self, layer: LayerSpec, budget_elems: int, prefetch: bool
    ) -> CandidatePlan | None:
        """The original candidate-at-a-time search (kept as parity oracle)."""
        best: CandidatePlan | None = None
        best_key: tuple[int, int] | None = None
        n_limit = layer.in_c if layer.kind.is_depthwise else layer.num_filters

        def consider(plan: CandidatePlan | None) -> None:
            nonlocal best, best_key
            if plan is None:
                return
            key = (plan.traffic.total, plan.schedule.num_steps)
            if best_key is None or key < best_key:
                best, best_key = plan, key

        for n_f in _candidate_values(n_limit):
            for o_t in _candidate_values(layer.out_h):
                consider(
                    self._instantiate(
                        layer, budget_elems, prefetch, n_f, o_t, layer.out_w
                    )
                )
        if best is None:
            # Height-wise tiling alone cannot fit: engage the width
            # direction (Fig. 2a width-wise access with column halos).
            for n_f in _candidate_values(n_limit):
                for o_t in _candidate_values(layer.out_h):
                    for w_t in _candidate_values(layer.out_w)[:-1]:
                        consider(
                            self._instantiate(
                                layer, budget_elems, prefetch, n_f, o_t, w_t
                            )
                        )
        return best

    def _instantiate(
        self,
        layer: LayerSpec,
        budget_elems: int,
        prefetch: bool,
        n_f: int,
        o_t: int,
        w_t: int,
    ) -> CandidatePlan | None:
        depthwise = layer.kind.is_depthwise
        row_step = min(layer.stride, layer.f_h)
        col_step = min(layer.stride, layer.f_w)
        window_cols = min(layer.padded_w, layer.f_w + (w_t - 1) * col_step)
        window = layer.f_h * window_cols * (n_f if depthwise else 1)
        filter_slice = layer.f_h * layer.f_w * n_f
        ofmap_tile = o_t * w_t * n_f
        tiles = TileSizes(ifmap=window, filters=filter_slice, ofmap=ofmap_tile)
        if not self._fits(tiles, budget_elems, prefetch):
            return None

        bands_h = ceil_div(layer.out_h, o_t)
        bands_w = ceil_div(layer.out_w, w_t)
        groups: list[StepGroup] = []
        total_ifmap = 0
        total_filters = 0
        chan_iters = 1 if depthwise else layer.in_c
        blocks = split_blocks(layer.in_c if depthwise else layer.num_filters, n_f)

        for bh in range(bands_h):
            rows = min(o_t, layer.out_h - bh * o_t)
            covered_rows = min(layer.padded_h, layer.f_h + (rows - 1) * row_step)
            for bw in range(bands_w):
                cols = min(w_t, layer.out_w - bw * w_t)
                covered_cols = min(
                    layer.padded_w, layer.f_w + (cols - 1) * col_step
                )
                band_elems = covered_rows * covered_cols
                out_elems = rows * cols
                for count, size in blocks:
                    macs = out_elems * size * layer.f_h * layer.f_w
                    if depthwise:
                        groups.append(
                            StepGroup(
                                count=count,
                                ifmap=band_elems * size,
                                filters=layer.f_h * layer.f_w * size,
                                macs=macs,
                                store=out_elems * size,
                            )
                        )
                        total_ifmap += count * band_elems * size
                        total_filters += count * layer.f_h * layer.f_w * size
                    else:
                        groups.append(
                            StepGroup(
                                count=count * chan_iters,
                                ifmap=band_elems,
                                filters=layer.f_h * layer.f_w * size,
                                macs=macs,
                            )
                        )
                        groups.append(
                            StepGroup(count=count, store=out_elems * size)
                        )
                        total_ifmap += count * chan_iters * band_elems
                        total_filters += (
                            count * chan_iters * layer.f_h * layer.f_w * size
                        )

        traffic = Traffic(
            ifmap_reads=total_ifmap,
            filter_reads=total_filters,
            ofmap_writes=layer.ofmap_elems,
        )
        schedule = LayerSchedule(groups=tuple(groups))
        return CandidatePlan(
            policy_name=self.name,
            layer=layer,
            tiles=tiles,
            traffic=traffic,
            schedule=schedule,
            prefetch=prefetch,
            block_size=n_f,
            tile_shape=(o_t, w_t),
        )
