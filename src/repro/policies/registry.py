"""Registry of the memory-management policies from paper §3.2/§3.3.

Algorithm 1 line 1: ``policies = {intra-layer reuse, intra-layer reuse with
prefetching, policy 1-5, policy 1-5 with prefetching}``.  The tiled
fallback participates only when nothing else fits (paper §3.3).
"""

from __future__ import annotations

from .base import Policy
from .intra import IntraLayerReuse
from .p1 import IfmapReuse
from .p2 import FilterReuse
from .p3 import PerChannelReuse
from .p4 import PartialIfmapReuse
from .p5 import PartialPerChannelReuse
from .tiled import TiledFallback

#: Named policies in paper order (intra, p1..p5).
NAMED_POLICIES: tuple[Policy, ...] = (
    IntraLayerReuse(),
    IfmapReuse(),
    FilterReuse(),
    PerChannelReuse(),
    PartialIfmapReuse(),
    PartialPerChannelReuse(),
)

#: The fallback tile search (used when no named policy fits).
FALLBACK_POLICY: Policy = TiledFallback()

#: Policies whose plans transfer every element exactly once for dense
#: layers (Table 3 columns).
SINGLE_TRANSFER_POLICY_NAMES = ("intra", "p1", "p2", "p3")


def policy_by_name(name: str) -> Policy:
    """Look up a policy instance by its short name (including "tiled")."""
    for policy in (*NAMED_POLICIES, FALLBACK_POLICY):
        if policy.name == name:
            return policy
    raise KeyError(f"unknown policy {name!r}")
