"""Reproduction of "Scratchpad Memory Management for Deep Learning
Accelerators" (Zouzoula et al., ICPP 2024).

Public API tour
---------------
* :mod:`repro.arch` — accelerator specification (:class:`AcceleratorSpec`).
* :mod:`repro.nn` — layer/model descriptions, builder DSL and the model zoo
  (:func:`repro.nn.zoo.get_model`).
* :mod:`repro.policies` — the scratchpad management policies (§3.2).
* :mod:`repro.estimators` — per-layer memory/accesses/latency estimates.
* :mod:`repro.analyzer` — Algorithm 1, Hom/Het planners, inter-layer reuse.
* :mod:`repro.dram` — banked DRAM model (mapping policies, trace backend).
* :mod:`repro.scalesim` — the separate-buffer baseline simulator.
* :mod:`repro.sim` — step-level simulator validating the estimators.
* :mod:`repro.experiments` — regeneration of every paper table and figure.

Quickstart::

    from repro import AcceleratorSpec, Objective, plan_heterogeneous
    from repro.nn.zoo import get_model

    plan = plan_heterogeneous(
        get_model("ResNet18"), AcceleratorSpec(glb_bytes=64 * 1024),
        Objective.ACCESSES,
    )
    print(plan.total_accesses_bytes / 2**20, "MB off-chip")
"""

from .analyzer import (
    ExecutionPlan,
    Objective,
    best_homogeneous,
    plan_heterogeneous,
    plan_homogeneous,
)
from .arch import PAPER_GLB_SIZES, AcceleratorSpec
from .dram import DEFAULT_DDR4_SPEC, DramSpec
from .estimators import PolicyEvaluation, evaluate_layer
from .nn import LayerKind, LayerSpec, Model, ModelBuilder

__version__ = "1.0.0"

__all__ = [
    "AcceleratorSpec",
    "PAPER_GLB_SIZES",
    "DramSpec",
    "DEFAULT_DDR4_SPEC",
    "Objective",
    "ExecutionPlan",
    "plan_heterogeneous",
    "plan_homogeneous",
    "best_homogeneous",
    "PolicyEvaluation",
    "evaluate_layer",
    "LayerKind",
    "LayerSpec",
    "Model",
    "ModelBuilder",
    "__version__",
]
