"""Plain-text and CSV rendering of result tables.

Every experiment in :mod:`repro.experiments` reduces to one or more tables
whose rows mirror the paper's tables and figure series.  This renderer
keeps the output dependency-free (monospace alignment, CSV export) so the
benchmark harness can print paper-vs-measured comparisons directly.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence


@dataclass
class Table:
    """A titled table of stringifiable cells."""

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row (arity-checked against the headers)."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{self.title}: row has {len(cells)} cells for "
                f"{len(self.headers)} headers"
            )
        self.rows.append(list(cells))

    def _cell(self, value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    def render(self) -> str:
        """Monospace-aligned text rendering."""
        cells = [[self._cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(h), *(len(row[i]) for row in cells)) if cells else len(h)
            for i, h in enumerate(self.headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in cells:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (headers + rows)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.headers)
        writer.writerows([[self._cell(v) for v in row] for row in self.rows])
        return buf.getvalue()

    def save_csv(self, path: str | Path) -> None:
        """Write the CSV rendering to a file."""
        Path(path).write_text(self.to_csv())


def series_table(
    title: str,
    index_name: str,
    index: Sequence[Any],
    series: dict[str, Sequence[Any]],
) -> Table:
    """Build a table from named series sharing an index (figure data)."""
    table = Table(title=title, headers=[index_name, *series])
    for i, idx in enumerate(index):
        table.add_row(idx, *(values[i] for values in series.values()))
    return table
