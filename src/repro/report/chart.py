"""ASCII chart rendering for terminal output.

The experiment tables carry the numbers; these helpers make the *shapes*
of the paper's figures visible in a terminal — grouped bars for Fig. 5/8
style comparisons, simple line-ish series for sweeps — without any
plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

#: Glyphs cycled across series in grouped charts.
_GLYPHS = "#*+ox%@"


@dataclass
class BarChart:
    """A horizontal bar chart with optionally grouped series."""

    title: str
    width: int = 50
    #: (group label, series label, value) triples in insertion order.
    entries: list[tuple[str, str, float]] = field(default_factory=list)

    def add(self, group: str, series: str, value: float) -> None:
        """Append one bar."""
        if value < 0:
            raise ValueError(f"bar values must be non-negative, got {value}")
        self.entries.append((group, series, value))

    def render(self) -> str:
        """Monospace rendering with a glyph legend."""
        if not self.entries:
            return f"{self.title}\n(no data)"
        peak = max(value for _, _, value in self.entries) or 1.0
        series_order: list[str] = []
        for _, series, _ in self.entries:
            if series not in series_order:
                series_order.append(series)
        glyph = {
            series: _GLYPHS[i % len(_GLYPHS)] for i, series in enumerate(series_order)
        }
        label_width = max(
            len(f"{group} {series}") for group, series, _ in self.entries
        )
        lines = [self.title, "=" * len(self.title)]
        last_group = None
        for group, series, value in self.entries:
            if group != last_group and last_group is not None:
                lines.append("")
            last_group = group
            bar = glyph[series] * max(1, round(value / peak * self.width))
            label = f"{group} {series}".ljust(label_width)
            lines.append(f"{label} |{bar} {value:g}")
        legend = "  ".join(f"{glyph[s]}={s}" for s in series_order)
        lines.append("")
        lines.append(f"legend: {legend}")
        return "\n".join(lines)


def bar_chart(
    title: str,
    groups: Sequence[str],
    series: dict[str, Sequence[float]],
    width: int = 50,
) -> BarChart:
    """Build a grouped bar chart from parallel series."""
    chart = BarChart(title=title, width=width)
    for i, group in enumerate(groups):
        for name, values in series.items():
            if len(values) != len(groups):
                raise ValueError(
                    f"series {name!r} has {len(values)} values for "
                    f"{len(groups)} groups"
                )
            chart.add(str(group), name, values[i])
    return chart


def sparkline(values: Sequence[float], width: int | None = None) -> str:
    """A one-line trend glyph string (block characters)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    picked = list(values)
    if width is not None and len(picked) > width:
        stride = len(picked) / width
        picked = [picked[int(i * stride)] for i in range(width)]
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))] for v in picked)
