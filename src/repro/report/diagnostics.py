"""One JSON diagnostics schema shared by ``repro lint`` and ``repro verify``.

Both tools emit structured diagnostics — the plan verifier's ``V0xx``
:class:`~repro.verify.diagnostics.Diagnostic` records and the static
analyzer's ``R0xx`` :class:`~repro.analysis.findings.Finding` records.
Downstream tooling (CI annotations, dashboards) should parse *one*
schema, so this module is the single place that shapes either stream
into the ``repro-diagnostics/1`` payload::

    {
      "schema": "repro-diagnostics/1",
      "tool": "lint" | "verify",
      "ok": bool,
      "counts": {"checks": int, "errors": int, "warnings": int, ...},
      "diagnostics": [
        {
          "code": "R001",            # ^[VR]\\d{3}$
          "title": "...",
          "severity": "error" | "warning",
          "message": "...",
          "location": {"file": str|null, "line": int|null,
                        "subject": str|null, "layer": str|null,
                        "policy": str|null},
          "expected": any|null, "actual": any|null,
          "suppressed": bool, "baselined": bool
        }, ...
      ]
    }

:func:`validate_payload` is the schema's executable definition; the
regression test in ``tests/test_analysis.py`` holds both CLIs' JSON
output to it.

The module also validates the second machine-readable stream the repo
emits: the telemetry exporter's ``repro-telemetry/1`` payload
(:mod:`repro.obs.export` — a Chrome ``trace_event`` file with a metrics
snapshot and metadata riding along).  :func:`validate_telemetry_payload`
plays the same role for it that :func:`validate_payload` plays for
diagnostics.

This module deliberately imports nothing from :mod:`repro.verify` or
:mod:`repro.analysis` (both import the report layer), so the payload
builders take the report objects duck-typed.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.findings import AnalysisReport
    from ..verify.diagnostics import VerificationReport

#: Identifier of the shared schema (bump on incompatible changes).
SCHEMA_ID = "repro-diagnostics/1"

#: Identifier of the telemetry export schema.  Kept as a literal here
#: (this module imports nothing from the subsystems it validates); a
#: regression test pins it to :data:`repro.obs.export.TELEMETRY_SCHEMA`.
TELEMETRY_SCHEMA_ID = "repro-telemetry/1"

#: Identifier of the serving protocol schema.  Same literal-pinning
#: arrangement: a regression test ties it to
#: :data:`repro.serve.protocol.SERVE_SCHEMA_ID`.
SERVE_SCHEMA_ID = "repro-serve/1"

#: Endpoints a serve envelope may name (mirrors
#: :data:`repro.serve.protocol.ENDPOINTS`, pinned by the same test).
SERVE_ENDPOINTS = ("health", "models", "stats", "plan", "explain", "simulate")

_CODE_RE = re.compile(r"^[VR]\d{3}$")
_SEVERITIES = ("error", "warning")
_LOCATION_KEYS = ("file", "line", "subject", "layer", "policy")
_ENTRY_KEYS = (
    "code",
    "title",
    "severity",
    "message",
    "location",
    "expected",
    "actual",
    "suppressed",
    "baselined",
)


def diagnostic_entry(
    *,
    code: str,
    title: str,
    severity: str,
    message: str,
    file: str | None = None,
    line: int | None = None,
    subject: str | None = None,
    layer: str | None = None,
    policy: str | None = None,
    expected: Any = None,
    actual: Any = None,
    suppressed: bool = False,
    baselined: bool = False,
) -> dict[str, Any]:
    """One schema-shaped diagnostic entry (all keys always present)."""
    return {
        "code": code,
        "title": title,
        "severity": severity,
        "message": message,
        "location": {
            "file": file,
            "line": line,
            "subject": subject,
            "layer": layer,
            "policy": policy,
        },
        "expected": expected,
        "actual": actual,
        "suppressed": suppressed,
        "baselined": baselined,
    }


def make_payload(
    tool: str,
    ok: bool,
    counts: dict[str, int],
    diagnostics: Iterable[dict[str, Any]],
) -> dict[str, Any]:
    """Assemble the full ``repro-diagnostics/1`` payload."""
    return {
        "schema": SCHEMA_ID,
        "tool": tool,
        "ok": ok,
        "counts": dict(counts),
        "diagnostics": list(diagnostics),
    }


def lint_payload(report: "AnalysisReport") -> dict[str, Any]:
    """Shape a static-analysis report into the shared schema."""
    entries = [
        diagnostic_entry(
            code=f.code,
            title=f.title,
            severity=f.severity.value,
            message=f.message,
            file=f.path,
            line=f.line or None,
            suppressed=f.suppressed,
            baselined=f.baselined,
        )
        for f in sorted(report.findings, key=lambda f: (f.path, f.line, f.code))
    ]
    return make_payload("lint", report.ok(strict=True), report.counts(), entries)


def verify_payload(reports: Iterable["VerificationReport"]) -> dict[str, Any]:
    """Shape plan-verification reports into the shared schema."""
    entries = []
    checks = errors = warnings = 0
    ok = True
    for report in reports:
        checks += report.checks
        errors += len(report.errors)
        warnings += len(report.warnings)
        ok = ok and report.ok
        for d in report.diagnostics:
            entries.append(
                diagnostic_entry(
                    code=d.code,
                    title=d.title,
                    severity=d.severity.value,
                    message=d.message,
                    subject=report.subject,
                    layer=d.layer_name,
                    policy=d.policy,
                    expected=d.expected,
                    actual=d.actual,
                )
            )
    counts = {"checks": checks, "errors": errors, "warnings": warnings}
    return make_payload("verify", ok, counts, entries)


def validate_payload(payload: Any) -> list[str]:
    """Structural validation; returns a list of problems (empty = valid).

    This function *is* the schema: the regression suite feeds both CLIs'
    ``--format json`` output through it, so the two tools cannot drift
    apart without a test failure.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SCHEMA_ID:
        problems.append(f"schema must be {SCHEMA_ID!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("tool"), str):
        problems.append("tool must be a string")
    if not isinstance(payload.get("ok"), bool):
        problems.append("ok must be a boolean")
    counts = payload.get("counts")
    if not isinstance(counts, dict) or not all(
        isinstance(k, str) and isinstance(v, int) for k, v in counts.items()
    ):
        problems.append("counts must be an object of integer counters")
    diagnostics = payload.get("diagnostics")
    if not isinstance(diagnostics, list):
        return [*problems, "diagnostics must be a list"]
    for i, entry in enumerate(diagnostics):
        where = f"diagnostics[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        missing = [k for k in _ENTRY_KEYS if k not in entry]
        if missing:
            problems.append(f"{where} missing keys: {missing}")
            continue
        if not (isinstance(entry["code"], str) and _CODE_RE.match(entry["code"])):
            problems.append(f"{where}.code must match ^[VR]ddd$")
        if entry["severity"] not in _SEVERITIES:
            problems.append(f"{where}.severity must be one of {_SEVERITIES}")
        for key in ("title", "message"):
            if not isinstance(entry[key], str):
                problems.append(f"{where}.{key} must be a string")
        location = entry["location"]
        if not isinstance(location, dict):
            problems.append(f"{where}.location is not an object")
        else:
            extra = [k for k in _LOCATION_KEYS if k not in location]
            if extra:
                problems.append(f"{where}.location missing keys: {extra}")
            line = location.get("line")
            if line is not None and not isinstance(line, int):
                problems.append(f"{where}.location.line must be int or null")
        for key in ("suppressed", "baselined"):
            if not isinstance(entry[key], bool):
                problems.append(f"{where}.{key} must be a boolean")
    return problems


# ----------------------------------------------------------------------
# SARIF 2.1.0 (the repro lint --format sarif export)
# ----------------------------------------------------------------------

_SARIF_LEVELS = ("error", "warning", "note", "none")
_SARIF_SUPPRESSION_KINDS = ("inSource", "external")


def _validate_sarif_result(
    entry: Any, rule_ids: set[str], where: str, problems: list[str]
) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{where} is not an object")
        return
    rule_id = entry.get("ruleId")
    if not isinstance(rule_id, str):
        problems.append(f"{where}.ruleId must be a string")
    elif rule_ids and rule_id not in rule_ids:
        problems.append(f"{where}.ruleId {rule_id!r} not in tool.driver.rules")
    if entry.get("level") not in _SARIF_LEVELS:
        problems.append(f"{where}.level must be one of {_SARIF_LEVELS}")
    message = entry.get("message")
    if not (isinstance(message, dict) and isinstance(message.get("text"), str)):
        problems.append(f"{where}.message.text must be a string")
    locations = entry.get("locations")
    if not isinstance(locations, list) or not locations:
        problems.append(f"{where}.locations must be a non-empty list")
        locations = []
    for j, loc in enumerate(locations):
        lwhere = f"{where}.locations[{j}]"
        physical = loc.get("physicalLocation") if isinstance(loc, dict) else None
        if not isinstance(physical, dict):
            problems.append(f"{lwhere}.physicalLocation is not an object")
            continue
        artifact = physical.get("artifactLocation")
        if not (
            isinstance(artifact, dict) and isinstance(artifact.get("uri"), str)
        ):
            problems.append(f"{lwhere} artifactLocation.uri must be a string")
        region = physical.get("region")
        if region is not None:
            start = region.get("startLine") if isinstance(region, dict) else None
            if not isinstance(start, int) or isinstance(start, bool) or start < 1:
                problems.append(f"{lwhere}.region.startLine must be a positive int")
    fingerprints = entry.get("partialFingerprints")
    if fingerprints is not None and not (
        isinstance(fingerprints, dict)
        and all(
            isinstance(k, str) and isinstance(v, str)
            for k, v in fingerprints.items()
        )
    ):
        problems.append(f"{where}.partialFingerprints must map strings to strings")
    suppressions = entry.get("suppressions")
    if suppressions is not None:
        if not isinstance(suppressions, list):
            problems.append(f"{where}.suppressions must be a list")
        else:
            for j, supp in enumerate(suppressions):
                if (
                    not isinstance(supp, dict)
                    or supp.get("kind") not in _SARIF_SUPPRESSION_KINDS
                ):
                    problems.append(
                        f"{where}.suppressions[{j}].kind must be one of "
                        f"{_SARIF_SUPPRESSION_KINDS}"
                    )


def validate_sarif_payload(payload: Any) -> list[str]:
    """Structural validation of a SARIF 2.1.0 lint export.

    Returns a list of problems (empty = valid).  This is the executable
    subset of the SARIF 2.1.0 schema the project relies on: version
    pinning, the tool driver with per-rule metadata, and results with
    physical locations, fingerprints and suppressions.  The regression
    suite feeds ``repro lint --format sarif`` output through it, so the
    exporter cannot drift from what scanning UIs ingest.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("version") != "2.1.0":
        problems.append(f"version must be '2.1.0', got {payload.get('version')!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return [*problems, "runs must be a non-empty list"]
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        rule_ids: set[str] = set()
        if not isinstance(driver, dict):
            problems.append(f"{where}.tool.driver is not an object")
        else:
            if not isinstance(driver.get("name"), str):
                problems.append(f"{where}.tool.driver.name must be a string")
            rules = driver.get("rules", [])
            if not isinstance(rules, list):
                problems.append(f"{where}.tool.driver.rules must be a list")
                rules = []
            for j, rule_entry in enumerate(rules):
                rwhere = f"{where}.tool.driver.rules[{j}]"
                if not isinstance(rule_entry, dict) or not isinstance(
                    rule_entry.get("id"), str
                ):
                    problems.append(f"{rwhere}.id must be a string")
                    continue
                rule_ids.add(rule_entry["id"])
                short = rule_entry.get("shortDescription")
                if not (
                    isinstance(short, dict)
                    and isinstance(short.get("text"), str)
                ):
                    problems.append(f"{rwhere}.shortDescription.text must be a string")
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be a list")
            continue
        for j, entry in enumerate(results):
            _validate_sarif_result(
                entry, rule_ids, f"{where}.results[{j}]", problems
            )
    return problems


# ----------------------------------------------------------------------
# repro-telemetry/1 (the obs exporter's Chrome-trace + metrics payload)
# ----------------------------------------------------------------------

_TRACE_PHASES = ("X", "M")
_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid", "args")
_METRIC_KINDS = ("counters", "gauges", "histograms")
_HISTOGRAM_KEYS = ("count", "sum", "min", "max")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _validate_trace_event(entry: Any, where: str, problems: list[str]) -> None:
    if not isinstance(entry, dict):
        problems.append(f"{where} is not an object")
        return
    missing = [k for k in _EVENT_KEYS if k not in entry]
    if missing:
        problems.append(f"{where} missing keys: {missing}")
        return
    if not isinstance(entry["name"], str):
        problems.append(f"{where}.name must be a string")
    if entry["ph"] not in _TRACE_PHASES:
        problems.append(f"{where}.ph must be one of {_TRACE_PHASES}")
    if not _is_number(entry["ts"]) or entry["ts"] < 0:
        problems.append(f"{where}.ts must be a non-negative number")
    for key in ("pid", "tid"):
        if not isinstance(entry[key], int) or isinstance(entry[key], bool):
            problems.append(f"{where}.{key} must be an integer")
    if not isinstance(entry["args"], dict):
        problems.append(f"{where}.args must be an object")
    if entry["ph"] == "X":
        dur = entry.get("dur")
        if not _is_number(dur) or dur < 0:
            problems.append(f"{where}.dur must be a non-negative number")


def _validate_metrics(metrics: Any, problems: list[str]) -> None:
    if not isinstance(metrics, dict):
        problems.append("metrics must be an object")
        return
    missing = [k for k in _METRIC_KINDS if k not in metrics]
    if missing:
        problems.append(f"metrics missing keys: {missing}")
    for kind in ("counters", "gauges"):
        values = metrics.get(kind)
        if values is None:
            continue
        if not isinstance(values, dict) or not all(
            isinstance(k, str) and _is_number(v) for k, v in values.items()
        ):
            problems.append(f"metrics.{kind} must map names to numbers")
    histograms = metrics.get("histograms")
    if histograms is not None:
        if not isinstance(histograms, dict):
            problems.append("metrics.histograms must be an object")
            return
        for name, summary in histograms.items():
            where = f"metrics.histograms[{name!r}]"
            if not isinstance(summary, dict):
                problems.append(f"{where} is not an object")
                continue
            absent = [k for k in _HISTOGRAM_KEYS if k not in summary]
            if absent:
                problems.append(f"{where} missing keys: {absent}")
            bad = [k for k in _HISTOGRAM_KEYS if k in summary and not _is_number(summary[k])]
            if bad:
                problems.append(f"{where} non-numeric fields: {bad}")


def validate_telemetry_payload(payload: Any) -> list[str]:
    """Structural validation of a ``repro-telemetry/1`` payload.

    Returns a list of problems (empty = valid).  Like
    :func:`validate_payload`, this function *is* the schema — the
    regression suite feeds ``--trace-out`` files through it, so the
    exporter cannot drift without a test failure.  The checked shape is
    a superset of the Chrome ``trace_event`` JSON object form, so any
    valid payload loads in Perfetto / ``chrome://tracing`` as-is.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != TELEMETRY_SCHEMA_ID:
        problems.append(
            f"schema must be {TELEMETRY_SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("displayTimeUnit"), str):
        problems.append("displayTimeUnit must be a string")
    meta = payload.get("meta")
    if not isinstance(meta, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in meta.items()
    ):
        problems.append("meta must be an object of string values")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        problems.append("traceEvents must be a list")
    else:
        for i, entry in enumerate(events):
            _validate_trace_event(entry, f"traceEvents[{i}]", problems)
    _validate_metrics(payload.get("metrics"), problems)
    return problems


def validate_serve_payload(payload: Any) -> list[str]:
    """Structural validation of a ``repro-serve/1`` response envelope.

    Returns a list of problems (empty = valid).  This function *is* the
    serving schema: the serve test suite feeds live daemon responses —
    successes and every structured error — through it, so the HTTP layer
    cannot drift from the documented envelope without a test failure.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != SERVE_SCHEMA_ID:
        problems.append(
            f"schema must be {SERVE_SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        problems.append("ok must be a boolean")
    endpoint = payload.get("endpoint")
    if not isinstance(endpoint, str):
        problems.append("endpoint must be a string")
    result = payload.get("result")
    error = payload.get("error")
    if ok is True:
        if not isinstance(result, dict):
            problems.append("ok envelopes must carry a result object")
        if error is not None:
            problems.append("ok envelopes must have error = null")
        if isinstance(endpoint, str) and endpoint not in SERVE_ENDPOINTS:
            problems.append(
                f"ok envelopes must name a known endpoint, got {endpoint!r}"
            )
    elif ok is False:
        if result is not None:
            problems.append("error envelopes must have result = null")
        if not isinstance(error, dict):
            problems.append("error envelopes must carry an error object")
        else:
            if not (isinstance(error.get("code"), str) and error["code"]):
                problems.append("error.code must be a non-empty string")
            if not isinstance(error.get("message"), str):
                problems.append("error.message must be a string")
    return problems
