"""Result-table and chart rendering helpers."""

from .chart import BarChart, bar_chart, sparkline
from .table import Table, series_table

__all__ = ["Table", "series_table", "BarChart", "bar_chart", "sparkline"]
