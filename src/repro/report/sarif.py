"""SARIF 2.1.0 export of ``repro lint`` reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs ingest (GitHub code
scanning, VS Code SARIF viewer, …).  :func:`sarif_payload` shapes an
:class:`~repro.analysis.findings.AnalysisReport` into one SARIF run:

* every rule code that occurs in the report becomes a
  ``tool.driver.rules`` entry carrying the catalog title, description
  and default severity level;
* every finding becomes a ``results`` entry with a physical location
  (project-relative URI + 1-based line region), the content-addressed
  baseline fingerprint under ``partialFingerprints`` (so scanning UIs
  track findings across line shifts exactly like the baseline file
  does), and a ``suppressions`` entry for noqa'd (``inSource``) or
  baselined (``external``) findings;
* the run's ``invocation`` records wall time and the strict-gate
  outcome.

Like the sibling ``repro-diagnostics/1`` builder, this module takes the
report duck-typed and keeps module-level imports free of
:mod:`repro.analysis` (which imports the report layer);
:func:`~repro.report.diagnostics.validate_sarif_payload` is the
executable subset of the SARIF schema the regression suite holds this
output to.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..analysis.findings import AnalysisReport, Finding

#: Canonical JSON-schema URI for SARIF 2.1.0 payloads.
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

SARIF_VERSION = "2.1.0"

#: Name the run's tool.driver reports to scanning UIs.
DRIVER_NAME = "repro-lint"

#: Key under ``partialFingerprints`` carrying the baseline fingerprint.
FINGERPRINT_KEY = "reproLintFingerprint/v1"


def _rule_description(code: str) -> str:
    # Function-level import: the report layer must not depend on
    # repro.analysis at import time (it imports us back).
    from ..analysis.codes import RULE_DESCRIPTIONS

    return RULE_DESCRIPTIONS.get(code, "")


def _result(finding: "Finding", rule_index: dict[str, int]) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.code,
        "ruleIndex": rule_index[finding.code],
        "level": finding.severity.value,
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    **(
                        {"region": {"startLine": finding.line}}
                        if finding.line > 0
                        else {}
                    ),
                }
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint()},
    }
    suppressions: list[dict[str, Any]] = []
    if finding.suppressed:
        suppressions.append(
            {"kind": "inSource", "justification": "repro: noqa marker"}
        )
    if finding.baselined:
        suppressions.append(
            {"kind": "external", "justification": "lint-baseline.json"}
        )
    if suppressions:
        result["suppressions"] = suppressions
    return result


def sarif_payload(report: "AnalysisReport") -> dict[str, Any]:
    """Shape a static-analysis report into a SARIF 2.1.0 payload."""
    ordered = sorted(report.findings, key=lambda f: (f.path, f.line, f.code))
    codes = sorted({f.code for f in ordered})
    rule_index = {code: i for i, code in enumerate(codes)}
    titles = {f.code: f.title for f in ordered}
    severities = {f.code: f.severity.value for f in ordered}
    rules = [
        {
            "id": code,
            "name": titles[code],
            "shortDescription": {"text": titles[code]},
            "fullDescription": {"text": _rule_description(code)},
            "defaultConfiguration": {"level": severities[code]},
        }
        for code in codes
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": DRIVER_NAME,
                        "rules": rules,
                    }
                },
                "invocations": [
                    {
                        "executionSuccessful": report.ok(strict=True),
                        "properties": {
                            "wallTimeSeconds": round(
                                report.duration_seconds, 3
                            ),
                            "files": report.files,
                            "checks": report.checks,
                        },
                    }
                ],
                "columnKind": "utf16CodeUnits",
                "results": [_result(f, rule_index) for f in ordered],
            }
        ],
    }
