"""Energy cost model for memory traffic and compute.

The paper motivates access reduction with energy: "off-chip data
transfers are the most energy costly operations, approximately 10–100×
of the energy for a local computation" (§2.3, citing Li et al.).  The
evaluation reports accesses, not joules, so this module is an
*extension*: it converts a plan's (or the baseline's) traffic and MAC
counts into energy with a configurable cost model, letting users compare
schemes on the metric the paper ultimately argues about.

Defaults follow the widely used 45 nm numbers from Horowitz (ISSCC'14),
normalized per byte / per MAC:

* DRAM access        ≈ 160 pJ/byte  (1.3 nJ per 64-bit word)
* large SRAM access  ≈ 1.25 pJ/byte (tens-of-kB scratchpad)
* 8-bit MAC          ≈ 0.23 pJ      (0.2 pJ mult + 0.03 pJ add)

giving a ≈128× DRAM:SRAM ratio — inside the paper's 10–100× per-element
band once data width is accounted for.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer.plan import ExecutionPlan
from ..scalesim.simulator import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy costs in picojoules."""

    dram_pj_per_byte: float = 160.0
    sram_pj_per_byte: float = 1.25
    mac_pj: float = 0.23

    def __post_init__(self) -> None:
        if min(self.dram_pj_per_byte, self.sram_pj_per_byte, self.mac_pj) < 0:
            raise ValueError("energy costs must be non-negative")

    @property
    def dram_sram_ratio(self) -> float:
        """How much costlier an off-chip byte is than an on-chip one."""
        if self.sram_pj_per_byte == 0:
            return float("inf")
        return self.dram_pj_per_byte / self.sram_pj_per_byte


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one inference, split by component (picojoules).

    Under the flat model ``dram_pj`` is traffic × cost-per-byte and the
    three DRAM sub-components are zero.  With a banked
    :class:`~repro.dram.DramSpec` on the plan's accelerator, ``dram_pj``
    is instead the trace-simulated device energy and the activation /
    read / write split is reported alongside.
    """

    dram_pj: float
    sram_pj: float
    mac_pj: float
    dram_act_pj: float = 0.0
    dram_read_pj: float = 0.0
    dram_write_pj: float = 0.0

    @property
    def total_pj(self) -> float:
        return self.dram_pj + self.sram_pj + self.mac_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    @property
    def dram_share(self) -> float:
        return self.dram_pj / self.total_pj if self.total_pj else 0.0


#: Default cost model (Horowitz ISSCC'14-derived, see module docstring).
DEFAULT_ENERGY_MODEL = EnergyModel()


def _sram_bytes_for_macs(macs: int, dram_bytes: int, bytes_per_elem: int) -> int:
    """On-chip traffic estimate: every MAC reads two operands and writes
    one partial sum through the local hierarchy, plus every DRAM byte
    crosses the scratchpad once on its way in/out.

    Stays in exact integer arithmetic — the byte count can exceed
    ``2**53``, where a float64 intermediate would silently round.
    """
    return 3 * macs * bytes_per_elem + dram_bytes


def plan_energy(
    plan: ExecutionPlan, model: EnergyModel = DEFAULT_ENERGY_MODEL
) -> EnergyBreakdown:
    """Energy of an execution plan under the cost model.

    With a banked :class:`~repro.dram.DramSpec` on ``plan.spec`` the
    off-chip component comes from the trace-driven backend (per-activation
    plus per-byte read/write costs from the device spec) instead of the
    flat ``dram_pj_per_byte`` constant, and the activation/read/write
    split is populated.
    """
    dram_bytes = plan.total_accesses_bytes
    macs = plan.model.total_macs
    sram_bytes = _sram_bytes_for_macs(macs, dram_bytes, plan.spec.bytes_per_elem)
    if plan.spec.dram is not None:
        from ..dram.planstats import simulate_plan_dram

        stats = simulate_plan_dram(plan).total
        return EnergyBreakdown(
            dram_pj=stats.energy_pj,
            sram_pj=sram_bytes * model.sram_pj_per_byte,
            mac_pj=macs * model.mac_pj,
            dram_act_pj=stats.act_energy_pj,
            dram_read_pj=stats.read_energy_pj,
            dram_write_pj=stats.write_energy_pj,
        )
    return EnergyBreakdown(
        dram_pj=dram_bytes * model.dram_pj_per_byte,
        sram_pj=sram_bytes * model.sram_pj_per_byte,
        mac_pj=macs * model.mac_pj,
    )


def baseline_energy(
    result: SimulationResult, model: EnergyModel = DEFAULT_ENERGY_MODEL
) -> EnergyBreakdown:
    """Energy of a baseline simulation under the cost model."""
    dram_bytes = result.total_traffic_bytes
    macs = sum(layer.workload.macs for layer in result.layers)
    sram_bytes = _sram_bytes_for_macs(macs, dram_bytes, result.config.bytes_per_elem)
    return EnergyBreakdown(
        dram_pj=dram_bytes * model.dram_pj_per_byte,
        sram_pj=sram_bytes * model.sram_pj_per_byte,
        mac_pj=macs * model.mac_pj,
    )
