"""Energy cost modeling (extension; the paper reports accesses only)."""

from .model import (
    DEFAULT_ENERGY_MODEL,
    EnergyBreakdown,
    EnergyModel,
    baseline_energy,
    plan_energy,
)

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "DEFAULT_ENERGY_MODEL",
    "plan_energy",
    "baseline_energy",
]
