"""Inter-layer reuse planning (paper §5.4) as a chain dynamic program.

When layer *i*'s ofmap can stay resident in the GLB until layer *i+1*
consumes it, the plan saves both the ofmap write-back of *i* and the ifmap
reads of *i+1*.  Whether that is worth the residency cost — and which
policies the two layers should then run — is a joint decision along the
whole chain, so the analyzer solves it exactly with a backward DP over
(layer, candidate policy, incoming-donation) states.

Donation across a pair requires:

* the pair is a direct producer→consumer edge (branches, residual adds and
  pooling break the chain — see :meth:`repro.nn.Model.feeds_next`);
* the donor keeps its *full* ofmap on-chip alongside its streamed tiles
  (:func:`~repro.analyzer.plan.required_memory_elems` with ``donates``);
* the receiver hosts the full donated ifmap alongside its streamed tiles
  (same helper with ``receives``);
* the donor does not spill partial ofmaps off-chip (tiled fallback plans
  with spill traffic are excluded).
"""

from __future__ import annotations

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyEvaluation
from ..nn.model import Model
from .objectives import Objective
from .plan import LayerAssignment, make_assignment, required_memory_elems

#: Cost tuples are (primary metric, secondary metric) per the objective.
_Cost = tuple[float, float]
_INFEASIBLE: _Cost = (float("inf"), float("inf"))


def _add(a: _Cost, b: _Cost) -> _Cost:
    return (a[0] + b[0], a[1] + b[1])


def _assignment_cost(assignment: LayerAssignment, objective: Objective) -> _Cost:
    return objective.key(assignment.accesses_bytes, assignment.latency_cycles)


def _fits(
    ev: PolicyEvaluation, spec: AcceleratorSpec, receives: bool, donates: bool
) -> bool:
    return required_memory_elems(ev, receives, donates) <= spec.glb_elems


def _can_donate(ev: PolicyEvaluation) -> bool:
    return ev.plan.traffic.ofmap_spills == 0


def apply_opportunistic_interlayer(
    model: Model,
    spec: AcceleratorSpec,
    assignments: list[LayerAssignment],
) -> list[LayerAssignment]:
    """Paper-faithful inter-layer reuse: donate where the chosen plans allow.

    The per-layer policies are fixed first (Algorithm 1); a left-to-right
    pass then enables donation on every producer→consumer pair whose chosen
    plans can host the retained ofmap / resident ifmap.  Donation strictly
    removes off-chip traffic, so whenever it is feasible it is beneficial
    for both objectives.

    (The joint DP in :func:`plan_chain_with_interlayer` is our extension:
    it co-selects policies and donation edges and can find donations this
    pass cannot; see the ablation benchmarks.)
    """
    n = len(assignments)
    flags: list[tuple[bool, bool]] = [(False, False) for _ in range(n)]
    receives = False
    for i in range(n):
        ev = assignments[i].evaluation
        donates = False
        if i < n - 1 and model.feeds_next(i) and _can_donate(ev):
            ev_next = assignments[i + 1].evaluation
            if _fits(ev, spec, receives, True) and _fits(ev_next, spec, True, False):
                donates = True
        flags[i] = (receives, donates)
        receives = donates
    return [
        make_assignment(i, assignments[i].evaluation, spec, receives=rec, donates=don)
        for i, (rec, don) in enumerate(flags)
    ]


def plan_chain_with_interlayer(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective,
    candidates: list[list[PolicyEvaluation]],
) -> list[LayerAssignment]:
    """Jointly choose per-layer policies and donation edges.

    ``candidates[i]`` are the feasible evaluations of layer ``i`` (from
    :func:`repro.estimators.evaluate_layer`).  Returns one assignment per
    layer with ``receives``/``donates`` set along the chosen edges.
    """
    n = len(model.layers)
    if len(candidates) != n:
        raise ValueError("need one candidate list per layer")
    if any(not c for c in candidates):
        raise ValueError("every layer needs at least one feasible candidate")

    # Pre-materialize assignments per (layer, candidate, receives, donates)
    # so the DP and the reconstruction share exact metrics.
    cells: list[dict[tuple[int, bool, bool], LayerAssignment]] = []
    for i, evs in enumerate(candidates):
        cell: dict[tuple[int, bool, bool], LayerAssignment] = {}
        for j, ev in enumerate(evs):
            for receives in (False, True):
                for donates in (False, True):
                    if donates and (i == n - 1 or not model.feeds_next(i)):
                        continue
                    if donates and not _can_donate(ev):
                        continue
                    if not _fits(ev, spec, receives, donates):
                        continue
                    cell[(j, receives, donates)] = make_assignment(
                        i, ev, spec, receives=receives, donates=donates
                    )
        cells.append(cell)

    # Backward DP: best[(j, receives)] = (cost of layers i.., donate flag,
    # next candidate index) for layer i.
    nxt: dict[tuple[int, bool], tuple[_Cost, bool, int | None]] = {}
    for j, _ in enumerate(candidates[n - 1]):
        for receives in (False, True):
            assignment = cells[n - 1].get((j, receives, False))
            cost = (
                _assignment_cost(assignment, objective)
                if assignment is not None
                else _INFEASIBLE
            )
            nxt[(j, receives)] = (cost, False, None)

    tables: list[dict[tuple[int, bool], tuple[_Cost, bool, int | None]]] = [nxt]
    for i in range(n - 2, -1, -1):
        cur: dict[tuple[int, bool], tuple[_Cost, bool, int | None]] = {}
        nxt = tables[0]
        for j, _ in enumerate(candidates[i]):
            for receives in (False, True):
                best: tuple[_Cost, bool, int | None] = (_INFEASIBLE, False, None)
                for donates in (False, True):
                    assignment = cells[i].get((j, receives, donates))
                    if assignment is None:
                        continue
                    here = _assignment_cost(assignment, objective)
                    for k, _ in enumerate(candidates[i + 1]):
                        tail = nxt.get((k, donates), (_INFEASIBLE, False, None))[0]
                        total = _add(here, tail)
                        if total < best[0]:
                            best = (total, donates, k)
                cur[(j, receives)] = best
        tables.insert(0, cur)

    # Choose the entry candidate (layer 0 never receives).
    first = tables[0]
    best_j = min(
        range(len(candidates[0])),
        key=lambda j: first[(j, False)][0],
    )
    if first[(best_j, False)][0] == _INFEASIBLE:
        raise ValueError("no feasible inter-layer plan exists")

    # Reconstruct.
    assignments: list[LayerAssignment] = []
    j, receives = best_j, False
    for i in range(n):
        cost, donates, next_j = tables[i][(j, receives)]
        assignments.append(cells[i][(j, receives, donates)])
        if next_j is None:
            break
        j, receives = next_j, donates
    return assignments
