"""Memory-management analyzer: Algorithm 1, plans and inter-layer reuse."""

from .algorithm1 import select_policy
from .batch import BatchedPlan, batch_sweep, plan_batched
from .delta import SweepPlanner
from .export import load_plan_dict, plan_to_dict, save_plan
from .interlayer import apply_opportunistic_interlayer, plan_chain_with_interlayer
from .objectives import Objective
from .pareto import ParetoPoint, pareto_frontier, plan_weighted
from .plan import (
    ExecutionPlan,
    LayerAssignment,
    make_assignment,
    required_memory_elems,
    transformed_schedule,
)
from .planner import (
    best_homogeneous,
    candidate_evaluations,
    plan_heterogeneous,
    plan_homogeneous,
)

__all__ = [
    "Objective",
    "select_policy",
    "ExecutionPlan",
    "LayerAssignment",
    "make_assignment",
    "required_memory_elems",
    "transformed_schedule",
    "plan_heterogeneous",
    "plan_homogeneous",
    "best_homogeneous",
    "candidate_evaluations",
    "plan_chain_with_interlayer",
    "apply_opportunistic_interlayer",
    "plan_to_dict",
    "save_plan",
    "load_plan_dict",
    "ParetoPoint",
    "pareto_frontier",
    "plan_weighted",
    "BatchedPlan",
    "plan_batched",
    "batch_sweep",
    "SweepPlanner",
]
