"""Algorithm 1: pick the best policy per layer for a given objective.

The paper's Algorithm 1 iterates policies per layer, keeps those whose
memory estimate fits the GLB, and selects the one with minimum accesses,
tie-broken on latency.  The latency-objective variant (used for ``Hom_l`` /
``Het_l`` in §5.2) swaps the comparison order.  Both are expressed by the
lexicographic :meth:`~repro.analyzer.objectives.Objective.key`.
"""

from __future__ import annotations

from ..estimators.evaluate import PolicyEvaluation
from .objectives import Objective


def select_policy(
    evaluations: list[PolicyEvaluation], objective: Objective
) -> PolicyEvaluation:
    """Algorithm 1 lines 6–19 for one layer.

    ``evaluations`` must contain only feasible candidates (the memory check
    of line 10 happens during evaluation).  Raises if the layer has no
    feasible policy at all — Algorithm 1's fallback tile search should have
    produced one before this point.
    """
    if not evaluations:
        raise ValueError("no feasible policy for layer; tile search failed")
    return min(
        evaluations,
        key=lambda ev: objective.key(ev.accesses_bytes, ev.latency_cycles),
    )
