"""Algorithm 1: pick the best policy per layer for a given objective.

The paper's Algorithm 1 iterates policies per layer, keeps those whose
memory estimate fits the GLB, and selects the one with minimum accesses,
tie-broken on latency.  The latency-objective variant (used for ``Hom_l`` /
``Het_l`` in §5.2) swaps the comparison order.  Both are expressed by the
lexicographic :meth:`~repro.analyzer.objectives.Objective.key`.

When the caller passes an ``audit`` list, the selection also records one
:class:`~repro.obs.audit.CandidateRecord` per feasible candidate — the
winner with its metrics, every loser with the concrete reason it lost
(how much more traffic / how many more cycles than the winner).  The
recording is pure bookkeeping over already-computed values and never
changes which candidate wins.
"""

from __future__ import annotations

from ..estimators.evaluate import PolicyEvaluation
from ..obs.audit import CandidateRecord
from .objectives import Objective


def _reject_reason(
    evaluation: PolicyEvaluation, winner: PolicyEvaluation, objective: Objective
) -> str:
    """Why ``evaluation`` lost to ``winner`` under ``objective``."""
    extra_bytes = evaluation.accesses_bytes - winner.accesses_bytes
    extra_cycles = evaluation.latency_cycles - winner.latency_cycles
    if objective is Objective.ACCESSES:
        if extra_bytes > 0:
            return f"{extra_bytes} B more off-chip traffic than {winner.label}"
        if extra_cycles > 0:
            return f"same traffic as {winner.label}, {extra_cycles:.0f} cycles slower"
    else:
        if extra_cycles > 0:
            return f"{extra_cycles:.0f} cycles slower than {winner.label}"
        if extra_bytes > 0:
            return f"same latency as {winner.label}, {extra_bytes} B more traffic"
    return f"ties with {winner.label}; earlier-listed candidate kept"


def select_policy(
    evaluations: list[PolicyEvaluation],
    objective: Objective,
    audit: list[CandidateRecord] | None = None,
) -> PolicyEvaluation:
    """Algorithm 1 lines 6–19 for one layer.

    ``evaluations`` must contain only feasible candidates (the memory check
    of line 10 happens during evaluation).  Raises if the layer has no
    feasible policy at all — Algorithm 1's fallback tile search should have
    produced one before this point.

    ``audit``, when given, receives one record per candidate with the
    accept/reject reason; it does not affect the selection.
    """
    if not evaluations:
        raise ValueError("no feasible policy for layer; tile search failed")
    winner = min(
        evaluations,
        key=lambda ev: objective.key(ev.accesses_bytes, ev.latency_cycles),
    )
    if audit is not None:
        for ev in evaluations:
            chosen = ev is winner
            if chosen:
                reason = (
                    f"best {objective.value} of {len(evaluations)} feasible candidates"
                )
            else:
                reason = _reject_reason(ev, winner, objective)
            audit.append(
                CandidateRecord(
                    label=ev.label,
                    policy=ev.policy_name,
                    prefetch=ev.prefetch,
                    feasible=True,
                    chosen=chosen,
                    reason=reason,
                    memory_bytes=ev.memory_bytes,
                    accesses_bytes=ev.accesses_bytes,
                    latency_cycles=ev.latency_cycles,
                )
            )
    return winner
