"""Algorithm 1: pick the best policy per layer for a given objective.

The paper's Algorithm 1 iterates policies per layer, keeps those whose
memory estimate fits the GLB, and selects the one with minimum accesses,
tie-broken on latency.  The latency-objective variant (used for ``Hom_l`` /
``Het_l`` in §5.2) swaps the comparison order.  Both are expressed by the
lexicographic :meth:`~repro.analyzer.objectives.Objective.key`.

When the caller passes an ``audit`` list, the selection also records one
:class:`~repro.obs.audit.CandidateRecord` per feasible candidate — the
winner with its metrics, every loser with the concrete reason it lost
(how much more traffic / how many more cycles than the winner).  The
recording is pure bookkeeping over already-computed values and never
changes which candidate wins.
"""

from __future__ import annotations

import numpy as np

from ..estimators.evaluate import PolicyEvaluation
from ..obs.audit import CandidateRecord
from ..plancore import scalar_planner_enabled, stable_masked_argmin
from .objectives import Objective


def _cycles_slower(extra_cycles: float) -> str:
    """Truthful phrasing of a positive cycle delta.

    Latencies are floats, so a loser can trail by a fraction of a cycle;
    rounding with ``:.0f`` used to print the lie "0 cycles slower".  Whole
    deltas keep the integer phrasing, sub-cycle deltas are reported as such.
    """
    if extra_cycles < 1.0:
        return "<1 cycle slower"
    return f"{extra_cycles:.0f} cycles slower"


def _reject_reason(
    evaluation: PolicyEvaluation, winner: PolicyEvaluation, objective: Objective
) -> str:
    """Why ``evaluation`` lost to ``winner`` under ``objective``."""
    extra_bytes = evaluation.accesses_bytes - winner.accesses_bytes
    extra_cycles = evaluation.latency_cycles - winner.latency_cycles
    if objective is Objective.ACCESSES:
        if extra_bytes > 0:
            return f"{extra_bytes} B more off-chip traffic than {winner.label}"
        if extra_cycles > 0:
            return f"same traffic as {winner.label}, {_cycles_slower(extra_cycles)}"
    else:
        if extra_cycles > 0:
            return f"{_cycles_slower(extra_cycles)} than {winner.label}"
        if extra_bytes > 0:
            return f"same latency as {winner.label}, {extra_bytes} B more traffic"
    return f"ties with {winner.label}; earlier-listed candidate kept"


def _select_index(
    evaluations: list[PolicyEvaluation], objective: Objective
) -> int:
    """Index of the Algorithm 1 winner, with **explicitly stable** ties.

    Exact key ties keep the earliest-listed candidate.  The scalar path
    encodes the candidate index into the comparison key (rather than
    leaning on ``min()`` happening to be stable), and the vectorized path
    selects with :func:`~repro.plancore.stable_masked_argmin`, whose
    tie-break is lowest-index by construction — so the two paths cannot
    diverge on ties.
    """
    if scalar_planner_enabled():
        return min(
            range(len(evaluations)),
            key=lambda i: (
                *objective.key(
                    evaluations[i].accesses_bytes, evaluations[i].latency_cycles
                ),
                i,
            ),
        )
    accesses = np.array([ev.accesses_bytes for ev in evaluations], dtype=np.int64)
    latency = np.array([ev.latency_cycles for ev in evaluations], dtype=np.float64)
    keys = (
        (accesses, latency) if objective is Objective.ACCESSES else (latency, accesses)
    )
    index = stable_masked_argmin(np.ones(len(evaluations), dtype=np.bool_), *keys)
    assert index is not None  # evaluations is non-empty and the mask all-True
    return index


def select_policy(
    evaluations: list[PolicyEvaluation],
    objective: Objective,
    audit: list[CandidateRecord] | None = None,
) -> PolicyEvaluation:
    """Algorithm 1 lines 6–19 for one layer.

    ``evaluations`` must contain only feasible candidates (the memory check
    of line 10 happens during evaluation).  Raises if the layer has no
    feasible policy at all — Algorithm 1's fallback tile search should have
    produced one before this point.

    ``audit``, when given, receives one record per candidate with the
    accept/reject reason; it does not affect the selection.
    """
    if not evaluations:
        raise ValueError("no feasible policy for layer; tile search failed")
    winner = evaluations[_select_index(evaluations, objective)]
    if audit is not None:
        for ev in evaluations:
            chosen = ev is winner
            if chosen:
                reason = (
                    f"best {objective.value} of {len(evaluations)} feasible candidates"
                )
            else:
                reason = _reject_reason(ev, winner, objective)
            audit.append(
                CandidateRecord(
                    label=ev.label,
                    policy=ev.policy_name,
                    prefetch=ev.prefetch,
                    feasible=True,
                    chosen=chosen,
                    reason=reason,
                    memory_bytes=ev.memory_bytes,
                    accesses_bytes=ev.accesses_bytes,
                    latency_cycles=ev.latency_cycles,
                )
            )
    return winner
