"""Accesses-vs-latency Pareto analysis (extension).

The paper optimizes one objective at a time (Algorithm 1 and its latency
variant) and shows the two extremes trade off (Fig. 9).  This module maps
the frontier *between* them: a weighted scalarization sweeps the
per-layer selection from pure-accesses to pure-latency, and the
plan-level frontier keeps the non-dominated outcomes.

Per-layer scalarization uses metrics normalized to the layer's own best
feasible value, so layers of very different magnitudes contribute
comparably for intermediate weights; the endpoints (``alpha`` 0 and 1)
reproduce the lexicographic Algorithm-1 selections up to ties.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyEvaluation
from ..nn.model import Model
from .objectives import Objective
from .plan import ExecutionPlan, make_assignment
from .planner import candidate_evaluations


@dataclass(frozen=True)
class ParetoPoint:
    """One frontier point: a plan and the weight that produced it."""

    alpha: float  #: 0 = pure accesses, 1 = pure latency
    accesses_bytes: int
    latency_cycles: float
    plan: ExecutionPlan

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak domination on (accesses, latency), strict somewhere."""
        return (
            self.accesses_bytes <= other.accesses_bytes
            and self.latency_cycles <= other.latency_cycles
            and (
                self.accesses_bytes < other.accesses_bytes
                or self.latency_cycles < other.latency_cycles
            )
        )


def _select_weighted(
    evaluations: list[PolicyEvaluation], alpha: float
) -> PolicyEvaluation:
    """Pick the evaluation minimizing the normalized weighted objective."""
    min_acc = min(ev.accesses_bytes for ev in evaluations)
    min_lat = min(ev.latency_cycles for ev in evaluations)

    def score(ev: PolicyEvaluation) -> float:
        acc = ev.accesses_bytes / min_acc if min_acc else 1.0
        lat = ev.latency_cycles / min_lat if min_lat else 1.0
        return (1.0 - alpha) * acc + alpha * lat

    return min(evaluations, key=score)


def plan_weighted(
    model: Model,
    spec: AcceleratorSpec,
    alpha: float,
    *,
    allow_prefetch: bool = True,
) -> ExecutionPlan:
    """Heterogeneous plan under a weighted accesses/latency objective."""
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    candidates = candidate_evaluations(model, spec, allow_prefetch=allow_prefetch)
    if any(not evs for evs in candidates):
        raise ValueError(f"{model.name}: some layer has no feasible policy")
    assignments = [
        make_assignment(i, _select_weighted(evs, alpha), spec)
        for i, evs in enumerate(candidates)
    ]
    objective = Objective.LATENCY if alpha >= 0.5 else Objective.ACCESSES
    return ExecutionPlan(
        model=model,
        spec=spec,
        objective=objective,
        scheme=f"het(alpha={alpha:.2f})",
        assignments=tuple(assignments),
    )


def pareto_frontier(
    model: Model,
    spec: AcceleratorSpec,
    num_points: int = 11,
    *,
    allow_prefetch: bool = True,
) -> list[ParetoPoint]:
    """Sweep ``alpha`` and keep the non-dominated plans, sorted by accesses."""
    if num_points < 2:
        raise ValueError("need at least the two endpoint weights")
    points: list[ParetoPoint] = []
    for i in range(num_points):
        alpha = i / (num_points - 1)
        plan = plan_weighted(model, spec, alpha, allow_prefetch=allow_prefetch)
        points.append(
            ParetoPoint(
                alpha=alpha,
                accesses_bytes=plan.total_accesses_bytes,
                latency_cycles=plan.total_latency_cycles,
                plan=plan,
            )
        )
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points)
    ]
    # Deduplicate identical outcomes, keep ascending accesses.
    seen: set[tuple[int, float]] = set()
    unique = []
    for p in sorted(frontier, key=lambda p: (p.accesses_bytes, p.latency_cycles)):
        key = (p.accesses_bytes, round(p.latency_cycles, 6))
        if key not in seen:
            seen.add(key)
            unique.append(p)
    return unique
