"""Optimization objectives (paper §3.1).

Objective 1 minimizes off-chip data transfers under the GLB constraint;
Objective 2 minimizes latency.  Algorithm 1 breaks ties on the secondary
metric (lines 13–15), which both keys encode lexicographically.
"""

from __future__ import annotations

import enum


class Objective(enum.Enum):
    """What the analyzer optimizes for each layer."""

    ACCESSES = "accesses"
    LATENCY = "latency"

    def key(self, accesses_bytes: float, latency_cycles: float) -> tuple[float, float]:
        """Lexicographic comparison key: primary metric, then tiebreak."""
        if self is Objective.ACCESSES:
            return (accesses_bytes, latency_cycles)
        return (latency_cycles, accesses_bytes)
