"""Execution plans: the analyzer's output (paper Fig. 4).

A :class:`LayerAssignment` binds one layer to the policy evaluation the
analyzer chose for it, possibly adjusted for inter-layer reuse (§5.4).  An
:class:`ExecutionPlan` is the per-layer sequence plus aggregate metrics —
the quantities plotted in Figs. 5–11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyEvaluation
from ..estimators.latency import schedule_latency
from ..nn.layer import LayerSpec
from ..nn.model import Model
from ..obs.audit import CandidateRecord, DecisionTrail, LayerDecision
from ..policies.base import LayerSchedule, StepGroup
from .objectives import Objective


def transformed_schedule(
    schedule: LayerSchedule, receives: bool, donates: bool
) -> LayerSchedule:
    """Apply inter-layer reuse to a schedule.

    ``receives``: the ifmap is already resident (donated by the previous
    layer), so all ifmap loads disappear.  ``donates``: the ofmap stays
    resident for the next layer, so all ofmap stores disappear.
    """
    if not receives and not donates:
        return schedule
    groups = tuple(
        StepGroup(
            count=g.count,
            ifmap=0 if receives else g.ifmap,
            filters=g.filters,
            macs=g.macs,
            store=0 if donates else g.store,
        )
        for g in schedule.groups
    )
    return LayerSchedule(
        groups=groups,
        resident_ifmap=0 if receives else schedule.resident_ifmap,
        resident_filters=schedule.resident_filters,
    )


def required_memory_elems(
    evaluation: PolicyEvaluation, receives: bool, donates: bool
) -> int:
    """GLB elements the assignment needs, inter-layer adjustments included.

    A received ifmap sits resident at its *unpadded* full size (it is the
    previous layer's ofmap); a donated ofmap stays resident at full size.
    Neither is double-buffered, so the Eq. (2) prefetch factor applies only
    to the streamed tiles.
    """
    plan = evaluation.plan
    factor = 2 if plan.prefetch else 1
    ifmap_term = plan.layer.ifmap_elems if receives else factor * plan.tiles.ifmap
    filter_term = factor * plan.tiles.filters
    ofmap_term = plan.layer.ofmap_elems if donates else factor * plan.tiles.ofmap
    return ifmap_term + filter_term + ofmap_term


@dataclass(frozen=True)
class LayerAssignment:
    """One layer's chosen policy with inter-layer-adjusted metrics."""

    index: int
    layer: LayerSpec
    evaluation: PolicyEvaluation
    receives: bool = False
    donates: bool = False
    accesses_bytes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    latency_cycles: float = 0.0
    memory_bytes: int = 0

    @property
    def label(self) -> str:
        return self.evaluation.label

    @property
    def policy_name(self) -> str:
        return self.evaluation.policy_name

    @property
    def prefetch(self) -> bool:
        return self.evaluation.prefetch


def make_assignment(
    index: int,
    evaluation: PolicyEvaluation,
    spec: AcceleratorSpec,
    receives: bool = False,
    donates: bool = False,
) -> LayerAssignment:
    """Materialize an assignment, recomputing metrics under inter-layer reuse."""
    plan = evaluation.plan
    b = spec.bytes_per_elem
    if not receives and not donates:
        return LayerAssignment(
            index=index,
            layer=plan.layer,
            evaluation=evaluation,
            accesses_bytes=evaluation.accesses_bytes,
            read_bytes=evaluation.read_bytes,
            write_bytes=evaluation.write_bytes,
            latency_cycles=evaluation.latency_cycles,
            memory_bytes=evaluation.memory_bytes,
        )
    traffic = plan.traffic
    reads = (0 if receives else traffic.ifmap_reads) + traffic.filter_reads + traffic.ofmap_spills
    writes = (0 if donates else traffic.ofmap_writes) + traffic.ofmap_spills
    schedule = transformed_schedule(plan.schedule, receives, donates)
    latency = schedule_latency(schedule, spec, plan.prefetch, layer=plan.layer)
    return LayerAssignment(
        index=index,
        layer=plan.layer,
        evaluation=evaluation,
        receives=receives,
        donates=donates,
        accesses_bytes=(reads + writes) * b,
        read_bytes=reads * b,
        write_bytes=writes * b,
        latency_cycles=latency.total_cycles,
        memory_bytes=required_memory_elems(evaluation, receives, donates) * b,
    )


@dataclass(frozen=True)
class ExecutionPlan:
    """A complete per-layer management scheme with aggregate metrics."""

    model: Model
    spec: AcceleratorSpec
    objective: Objective
    scheme: str  #: e.g. "het", "hom(p1)", "het+interlayer"
    assignments: tuple[LayerAssignment, ...]
    #: Decision audit trail recorded while planning (None for plans built
    #: outside the planners, e.g. hand-assembled in tests).  Excluded from
    #: equality/repr so audited and unaudited plans compare identically.
    audit: DecisionTrail | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.assignments) != len(self.model.layers):
            raise ValueError(
                f"{self.scheme}: {len(self.assignments)} assignments for "
                f"{len(self.model.layers)} layers"
            )

    def __iter__(self) -> Iterator[LayerAssignment]:
        return iter(self.assignments)

    def explain(self) -> DecisionTrail:
        """The decision audit trail behind this plan.

        Planner-built plans carry the full trail (every candidate per
        layer with its accept/reject reason).  For plans without one —
        hand-assembled or deserialized from an older cache — a minimal
        trail is synthesized from the assignments: one chosen record per
        layer, no rejected candidates.
        """
        if self.audit is not None:
            return self.audit
        layers = tuple(
            LayerDecision(
                index=a.index,
                layer=a.layer.name,
                candidates=(
                    CandidateRecord(
                        label=a.label,
                        policy=a.policy_name,
                        prefetch=a.prefetch,
                        feasible=True,
                        chosen=True,
                        reason="reconstructed from assignment (no audit recorded)",
                        memory_bytes=a.memory_bytes,
                        accesses_bytes=a.accesses_bytes,
                        latency_cycles=a.latency_cycles,
                    ),
                ),
            )
            for a in self.assignments
        )
        return DecisionTrail(
            scheme=self.scheme,
            objective=self.objective.value,
            glb_bytes=self.spec.glb_bytes,
            layers=layers,
            notes=("synthesized: plan carried no recorded audit trail",),
        )

    # Aggregate metrics ------------------------------------------------

    @property
    def total_accesses_bytes(self) -> int:
        return sum(a.accesses_bytes for a in self.assignments)

    @property
    def total_read_bytes(self) -> int:
        return sum(a.read_bytes for a in self.assignments)

    @property
    def total_write_bytes(self) -> int:
        return sum(a.write_bytes for a in self.assignments)

    @property
    def total_latency_cycles(self) -> float:
        return sum(a.latency_cycles for a in self.assignments)

    @property
    def policies_used(self) -> tuple[str, ...]:
        """Distinct policy labels in use, sorted (Table 4 contents)."""
        return tuple(sorted({a.label for a in self.assignments}))

    @property
    def policy_families_used(self) -> tuple[str, ...]:
        """Distinct policy families (prefetch-agnostic), sorted."""
        return tuple(sorted({a.policy_name for a in self.assignments}))

    @property
    def prefetch_coverage(self) -> float:
        """Fraction of layers running a +p policy (Fig. 10 coverage)."""
        return sum(1 for a in self.assignments if a.prefetch) / len(self.assignments)

    @property
    def interlayer_pairs_possible(self) -> int:
        """Producer→consumer pairs in the model (Fig. 11 denominator)."""
        return sum(
            1 for i in range(len(self.model.layers) - 1) if self.model.feeds_next(i)
        )

    @property
    def interlayer_pairs_applied(self) -> int:
        """Pairs where the plan actually keeps the ofmap on-chip."""
        return sum(1 for a in self.assignments if a.donates)

    @property
    def interlayer_coverage(self) -> float:
        """Fraction of possible pairs exploited (Fig. 11 percentages)."""
        possible = self.interlayer_pairs_possible
        return self.interlayer_pairs_applied / possible if possible else 0.0

    @property
    def max_memory_bytes(self) -> int:
        """Largest per-layer GLB residency the plan ever needs."""
        return max(a.memory_bytes for a in self.assignments)
