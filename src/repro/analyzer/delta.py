"""Delta re-planning across a spec ladder (GLB sweeps, ablation ladders).

A GLB-size sweep re-runs Algorithm 1 on the same model at every size, but
most layers' candidate sets do not change between adjacent sizes: a policy
whose Eq. (1)/(2) capacity check keeps the same outcome — and, for the
budget-parameterized policies, the same chosen parameters — produces the
exact same :class:`~repro.estimators.evaluate.PolicyEvaluation` objects.

:class:`SweepPlanner` exploits that through each policy's
:meth:`~repro.policies.base.Policy.capacity_signature`: a compact value
capturing *everything* the policy's ``plan()`` takes from the budget
(feasibility bit for the fixed policies, block size ``n`` for P4/P5, the
winning tile parameters for the search fallback).  Equal signatures at two
budgets imply bit-identical evaluations, so the planner re-evaluates
**only** the layers whose signature moved and reuses the previous
evaluations for the rest — producing plans byte-identical to a full
:func:`~repro.analyzer.planner.plan_heterogeneous` run at every point (the
sweep-parity suite asserts it, audit trails included).

Invalidation invariant (what moves what):

* ``glb_bytes`` — the *only* field tracked incrementally; layers re-plan
  iff their capacity signature changes.
* any other spec field (``data_width_bits``, ``dram_bandwidth_elems_per_
  cycle``, ``ops_per_cycle``, ``dram``) — invalidates **every** layer:
  byte conversions and the latency model depend on them in ways no
  capacity signature covers.

Under ``REPRO_SCALAR_PLANNER`` the planner re-plans every layer at every
point and never touches the (vectorized) signature machinery — the scalar
parity oracle has no incremental path; results are identical either way.

Metrics: every ``plan()`` call adds per-layer counts to the PR 5 counters
``planner_layers_replanned_count`` / ``planner_layers_reused_count``, so
sweeps can assert they evaluated strictly fewer layers than points×layers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyAttempt, PolicyEvaluation, evaluate_layer
from ..nn.model import Model
from ..obs import get_tracer, metrics_registry
from ..obs.audit import CandidateRecord, TrailBuilder
from ..plancore import scalar_planner_enabled
from ..policies.base import Policy
from ..policies.registry import FALLBACK_POLICY, NAMED_POLICIES
from .algorithm1 import select_policy
from .objectives import Objective
from .plan import ExecutionPlan, make_assignment
from .planner import _candidate_records, _maybe_verify


@dataclass(frozen=True)
class _LayerState:
    """One layer's cached evaluation grid, keyed by capacity signature."""

    signature: tuple[object, ...]
    evaluations: tuple[PolicyEvaluation, ...]
    attempts: tuple[PolicyAttempt, ...]


class SweepPlanner:
    """Incremental heterogeneous planner for one model across a spec ladder.

    Call :meth:`plan` once per sweep point.  Within a ladder where only
    ``glb_bytes`` moves, layers whose capacity signatures are unchanged
    reuse their previous evaluations; every other layer (and every layer
    after any *other* spec field moved) is re-planned from scratch.  Each
    returned plan is byte-identical to ``plan_heterogeneous(model, spec,
    objective)`` with the same options.

    ``record_audit=False`` reproduces planner variants that attach no
    decision trail (e.g. the ``het(named-only)`` ablation), and
    ``always_fallback=False`` restricts the tile search to its rescue role
    exactly as :func:`~repro.analyzer.planner.candidate_evaluations` does.
    """

    def __init__(
        self,
        model: Model,
        objective: Objective = Objective.ACCESSES,
        *,
        scheme: str = "het",
        policies: tuple[Policy, ...] = NAMED_POLICIES,
        allow_prefetch: bool = True,
        use_fallback: bool = True,
        always_fallback: bool = True,
        record_audit: bool = True,
        verify: bool = False,
    ) -> None:
        self._model = model
        self._objective = objective
        self._scheme = scheme
        self._policies = policies
        self._allow_prefetch = allow_prefetch
        self._use_fallback = use_fallback
        self._always_fallback = always_fallback
        self._record_audit = record_audit
        self._verify = verify
        self._states: list[_LayerState | None] = [None] * len(model.layers)
        self._last_spec: AcceleratorSpec | None = None

    # ------------------------------------------------------------------

    def _signature(self, layer_index: int, budget_elems: int) -> tuple[object, ...]:
        """The layer's full capacity signature at one budget.

        Concatenates every candidate's
        :meth:`~repro.policies.base.Policy.capacity_signature` over
        (policy × prefetch), fallback included when it may engage — equal
        tuples at two budgets mean ``evaluate_layer`` returns identical
        results at both.
        """
        layer = self._model.layers[layer_index]
        prefetch_options = (False, True) if self._allow_prefetch else (False,)
        parts: list[object] = []
        for policy in self._policies:
            for prefetch in prefetch_options:
                parts.append(policy.capacity_signature(layer, budget_elems, prefetch))
        if self._use_fallback:
            for prefetch in prefetch_options:
                parts.append(
                    FALLBACK_POLICY.capacity_signature(layer, budget_elems, prefetch)
                )
        return tuple(parts)

    def _only_glb_moved(self, spec: AcceleratorSpec) -> bool:
        """Whether ``spec`` differs from the previous point in glb_bytes only."""
        previous = self._last_spec
        if previous is None:
            return False
        return replace(previous, glb_bytes=spec.glb_bytes) == spec

    # ------------------------------------------------------------------

    def plan(self, spec: AcceleratorSpec) -> ExecutionPlan:
        """Plan the model at one sweep point, reusing what cannot have moved."""
        scalar = scalar_planner_enabled()
        if scalar or not self._only_glb_moved(spec):
            # Scalar parity oracle (no incremental path), a non-GLB spec
            # field moved, or this is the first point: nothing of the
            # previous evaluations is trustworthy.
            self._states = [None] * len(self._model.layers)
        self._last_spec = None if scalar else spec

        tracer = get_tracer()
        registry = metrics_registry()
        budget = spec.glb_elems
        replanned = 0
        reused = 0
        states: list[_LayerState] = []
        with tracer.start(
            "plan_heterogeneous_delta",
            model=self._model.name,
            glb_bytes=spec.glb_bytes,
            objective=self._objective.value,
        ) as plan_span:
            for i, layer in enumerate(self._model.layers):
                # The signature machinery is vectorized; the scalar oracle
                # skips it and re-plans unconditionally (states were reset).
                signature = () if scalar else self._signature(i, budget)
                state = self._states[i]
                if state is None or state.signature != signature:
                    attempts: list[PolicyAttempt] = []
                    with tracer.start("plan_layer", layer=layer.name) as layer_span:
                        evaluations = evaluate_layer(
                            layer,
                            spec,
                            policies=self._policies,
                            use_fallback=self._use_fallback,
                            allow_prefetch=self._allow_prefetch,
                            always_fallback=self._always_fallback,
                            attempts=attempts,
                        )
                        layer_span.set_attr("candidates_count", len(evaluations))
                    state = _LayerState(
                        signature=signature,
                        evaluations=tuple(evaluations),
                        attempts=tuple(attempts),
                    )
                    self._states[i] = state
                    replanned += 1
                else:
                    reused += 1
                states.append(state)

            empty = [
                self._model.layers[i].name
                for i, state in enumerate(states)
                if not state.evaluations
            ]
            if empty:
                raise ValueError(
                    f"{self._model.name}: no feasible policy for layers {empty} at "
                    f"GLB={spec.glb_bytes} bytes"
                )

            trail = TrailBuilder(
                scheme=self._scheme,
                objective=self._objective.value,
                glb_bytes=spec.glb_bytes,
            )
            assignments = []
            for i, state in enumerate(states):
                selected: list[CandidateRecord] = []
                choice = select_policy(
                    list(state.evaluations),
                    self._objective,
                    audit=selected if self._record_audit else None,
                )
                if self._record_audit:
                    trail.add_layer(
                        i,
                        self._model.layers[i].name,
                        _candidate_records(list(state.attempts), selected),
                    )
                assignments.append(make_assignment(i, choice, spec))

            plan_span.set_attr("scheme", self._scheme)
            plan_span.set_attr("layers_replanned", replanned)
            plan_span.set_attr("layers_reused", reused)
            registry.counter("planner_layers_count").add(len(self._model.layers))
            registry.counter("planner_candidates_count").add(
                sum(len(s.evaluations) for s in states)
            )
            registry.counter("planner_layers_replanned_count").add(replanned)
            registry.counter("planner_layers_reused_count").add(reused)

        return _maybe_verify(
            ExecutionPlan(
                model=self._model,
                spec=spec,
                objective=self._objective,
                scheme=self._scheme,
                assignments=tuple(assignments),
                audit=trail.build() if self._record_audit else None,
            ),
            self._verify,
        )
