"""Batched inference with cross-item weight reuse (extension).

The paper evaluates batch 1 ("the most appropriate for latency
constrained applications", §4) but its background names two reuse forms
batching unlocks: *global reuse* — filters stay on-chip across inputs
(§2.2) — and the Escher-style batch buffering it cites [27].  This module
models layer-by-layer batched execution: each layer runs consecutively
for all ``B`` items, so a policy that keeps the layer's *entire* filter
set resident (intra-layer reuse or Policy 1) loads filters **once per
batch** instead of once per item, while feature-map traffic still scales
with ``B``.

Policies that stream filters (P2/P3/P5, filter-blocked P4, the tile
search) reload them per item; the batched analyzer therefore re-runs the
per-layer selection with batch-aware metrics — at larger ``B`` it shifts
toward the filter-resident policies even where they were not the batch-1
winners.

Latency model: the resident filter load is paid once, then the per-item
streaming timeline repeats ``B`` times (per-item pipelines do not overlap
across items — conservative, matching the layer-by-layer semantics).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyEvaluation
from ..nn.model import Model
from .objectives import Objective
from .planner import candidate_evaluations


@dataclass(frozen=True)
class BatchedAssignment:
    """One layer's batched selection and metrics."""

    layer_name: str
    label: str
    filters_resident: bool
    accesses_bytes: int  #: whole-batch off-chip traffic
    latency_cycles: float  #: whole-batch latency


@dataclass(frozen=True)
class BatchedPlan:
    """Batched execution metrics for a whole model."""

    model_name: str
    batch: int
    assignments: tuple[BatchedAssignment, ...]

    @property
    def total_accesses_bytes(self) -> int:
        return sum(a.accesses_bytes for a in self.assignments)

    @property
    def total_latency_cycles(self) -> float:
        return sum(a.latency_cycles for a in self.assignments)

    @property
    def per_item_accesses_bytes(self) -> float:
        return self.total_accesses_bytes / self.batch

    @property
    def weight_reuse_coverage(self) -> float:
        """Fraction of layers running with batch-resident filters."""
        return sum(1 for a in self.assignments if a.filters_resident) / len(
            self.assignments
        )


def _filters_resident(ev: PolicyEvaluation) -> bool:
    """Whether the plan holds the layer's entire filter set resident."""
    plan = ev.plan
    return plan.schedule.resident_filters == plan.layer.filter_elems


def _batched_metrics(
    ev: PolicyEvaluation, spec: AcceleratorSpec, batch: int
) -> tuple[int, float]:
    """(accesses_bytes, latency_cycles) for ``batch`` items under ``ev``."""
    b = spec.bytes_per_elem
    traffic = ev.plan.traffic
    filter_bytes = traffic.filter_reads * b
    stream_bytes = ev.accesses_bytes - filter_bytes
    resident_cycles = spec.transfer_cycles(
        ev.plan.schedule.resident_load * b
    )
    per_item_cycles = ev.latency_cycles - resident_cycles
    if _filters_resident(ev):
        accesses = filter_bytes + batch * stream_bytes
        latency = resident_cycles + batch * per_item_cycles
    else:
        accesses = batch * ev.accesses_bytes
        latency = batch * ev.latency_cycles
    return accesses, latency


def plan_batched(
    model: Model,
    spec: AcceleratorSpec,
    batch: int,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
) -> BatchedPlan:
    """Per-layer policy selection with batch-aware metrics."""
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    candidates = candidate_evaluations(model, spec, allow_prefetch=allow_prefetch)
    assignments = []
    for layer, evs in zip(model.layers, candidates):
        if not evs:
            raise ValueError(f"{model.name}/{layer.name}: no feasible policy")
        scored = [(ev, *_batched_metrics(ev, spec, batch)) for ev in evs]
        best, accesses, latency = min(
            scored, key=lambda item: objective.key(item[1], item[2])
        )
        assignments.append(
            BatchedAssignment(
                layer_name=layer.name,
                label=best.label,
                filters_resident=_filters_resident(best),
                accesses_bytes=accesses,
                latency_cycles=latency,
            )
        )
    return BatchedPlan(
        model_name=model.name, batch=batch, assignments=tuple(assignments)
    )


@dataclass(frozen=True)
class BatchSweepRow:
    """One batch size's per-item metrics."""

    batch: int
    per_item_accesses_bytes: float
    per_item_latency_cycles: float
    weight_reuse_coverage: float


def batch_sweep(
    model: Model,
    spec: AcceleratorSpec,
    batches: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
    objective: Objective = Objective.ACCESSES,
) -> list[BatchSweepRow]:
    """Per-item traffic/latency as the batch size grows."""
    rows = []
    for batch in batches:
        plan = plan_batched(model, spec, batch, objective)
        rows.append(
            BatchSweepRow(
                batch=batch,
                per_item_accesses_bytes=plan.per_item_accesses_bytes,
                per_item_latency_cycles=plan.total_latency_cycles / batch,
                weight_reuse_coverage=plan.weight_reuse_coverage,
            )
        )
    return rows
