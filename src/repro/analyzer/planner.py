"""Plan construction: homogeneous and heterogeneous management schemes.

The paper compares (§5.1):

* ``Hom`` — the *homogeneous* scheme: every layer runs the same policy
  family (falling back to the tile search only when that family cannot fit
  a layer at all), with the family chosen to minimize the objective;
* ``Het`` — the *heterogeneous* scheme: Algorithm 1 picks the best policy
  per layer.

Prefetch variants: within a scheme each layer may use the policy with or
without prefetching (Table 4 writes "policy 1 (+p)" when both occur);
``allow_prefetch=False`` reproduces the prefetch-disabled reference of
Fig. 10.  ``interlayer=True`` enables the §5.4 chain DP.

Every planner accepts ``verify=True`` (a debug mode): the emitted plan is
statically checked against the :mod:`repro.verify` invariant catalog and a
:class:`~repro.verify.PlanVerificationError` is raised if any invariant is
violated — turning planner bugs into hard failures at the source.

Telemetry: planning runs inside tracer spans (one per plan, one per layer
for ``Het``) and every plan carries a :class:`~repro.obs.audit.DecisionTrail`
recording each candidate policy with its capacity check and accept/reject
reason — surfaced by ``repro explain`` and ``ExecutionPlan.explain()``.
Both are pure bookkeeping: plans are bit-identical with tracing on or off.
"""

from __future__ import annotations

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyAttempt, PolicyEvaluation, evaluate_layer
from ..nn.model import Model
from ..obs import get_tracer, metrics_registry
from ..obs.audit import CandidateRecord, TrailBuilder
from ..policies.base import Policy
from ..policies.registry import NAMED_POLICIES
from .algorithm1 import select_policy
from .interlayer import apply_opportunistic_interlayer, plan_chain_with_interlayer
from .objectives import Objective
from .plan import ExecutionPlan, LayerAssignment, make_assignment


def candidate_evaluations(
    model: Model,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...] = NAMED_POLICIES,
    allow_prefetch: bool = True,
    always_fallback: bool = True,
) -> list[list[PolicyEvaluation]]:
    """Feasible policy evaluations for every layer of the model."""
    return [
        evaluate_layer(
            layer,
            spec,
            policies=policies,
            allow_prefetch=allow_prefetch,
            always_fallback=always_fallback,
        )
        for layer in model.layers
    ]


def _maybe_verify(plan: ExecutionPlan, verify: bool) -> ExecutionPlan:
    """Run the static verifier over a fresh plan when requested."""
    if verify:
        # Imported lazily: repro.verify consumes this module's output types.
        from ..verify import check_plan

        check_plan(plan)
    return plan


def _infeasible_record(attempt: PolicyAttempt) -> CandidateRecord:
    """Audit record for a (policy, prefetch) try that fit no tiling."""
    reason = (
        "no tiling fits the GLB with double buffering (Eq. (2))"
        if attempt.prefetch
        else "no tiling fits the GLB budget (Eq. (1))"
    )
    return CandidateRecord(
        label=attempt.label,
        policy=attempt.policy_name,
        prefetch=attempt.prefetch,
        feasible=False,
        chosen=False,
        reason=reason,
    )


def _candidate_records(
    attempts: list[PolicyAttempt], selected: list[CandidateRecord]
) -> list[CandidateRecord]:
    """Merge infeasible attempts with Algorithm 1's records, in try order."""
    by_label = {record.label: record for record in selected}
    records: list[CandidateRecord] = []
    for attempt in attempts:
        if attempt.feasible:
            record = by_label.get(attempt.label)
            if record is not None:
                records.append(record)
        else:
            records.append(_infeasible_record(attempt))
    return records


def _reconcile_chosen(
    trail: TrailBuilder, assignments: list[LayerAssignment]
) -> None:
    """Point each layer's chosen flag at the *final* assignment.

    The inter-layer DP may override Algorithm 1's per-layer pick; the
    trail keeps the original winner with an override reason.
    """
    chosen_by_index = {
        decision.index: decision.chosen for decision in trail.layers
    }
    for assignment in assignments:
        chosen = chosen_by_index.get(assignment.index)
        if chosen is None or chosen.label != assignment.label:
            trail.rechoose(
                assignment.index,
                assignment.label,
                "selected by inter-layer DP (co-optimized with ofmap donations)",
            )


def plan_heterogeneous(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
    verify: bool = False,
) -> ExecutionPlan:
    """The ``Het`` scheme: best policy per layer (Algorithm 1).

    ``interlayer=True`` enables §5.4 ofmap donation between consecutive
    layers.  ``interlayer_mode`` selects the paper-faithful
    ``"opportunistic"`` pass (policies first, donations where they fit) or
    our ``"joint"`` DP extension that co-optimizes both decisions.
    """
    tracer = get_tracer()
    trail = TrailBuilder(
        scheme="het", objective=objective.value, glb_bytes=spec.glb_bytes
    )
    with tracer.start(
        "plan_heterogeneous",
        model=model.name,
        glb_bytes=spec.glb_bytes,
        objective=objective.value,
    ) as plan_span:
        candidates: list[list[PolicyEvaluation]] = []
        attempts_per_layer: list[list[PolicyAttempt]] = []
        for layer in model.layers:
            attempts: list[PolicyAttempt] = []
            with tracer.start("plan_layer", layer=layer.name) as layer_span:
                evaluations = evaluate_layer(
                    layer,
                    spec,
                    allow_prefetch=allow_prefetch,
                    always_fallback=True,
                    attempts=attempts,
                )
                layer_span.set_attr("candidates_count", len(evaluations))
            candidates.append(evaluations)
            attempts_per_layer.append(attempts)
        empty = [model.layers[i].name for i, c in enumerate(candidates) if not c]
        if empty:
            raise ValueError(
                f"{model.name}: no feasible policy for layers {empty} at "
                f"GLB={spec.glb_bytes} bytes"
            )
        assignments = []
        for i, evaluations in enumerate(candidates):
            selected: list[CandidateRecord] = []
            choice = select_policy(evaluations, objective, audit=selected)
            trail.add_layer(
                i,
                model.layers[i].name,
                _candidate_records(attempts_per_layer[i], selected),
            )
            assignments.append(make_assignment(i, choice, spec))
        scheme = "het"
        if interlayer:
            if interlayer_mode == "opportunistic":
                assignments = apply_opportunistic_interlayer(model, spec, assignments)
                scheme = "het+il"
            elif interlayer_mode == "joint":
                assignments = plan_chain_with_interlayer(
                    model, spec, objective, candidates
                )
                scheme = "het+il(joint)"
            else:
                raise ValueError(f"unknown interlayer_mode {interlayer_mode!r}")
            _reconcile_chosen(trail, assignments)
            donated = sum(1 for a in assignments if a.donates)
            trail.note(
                f"inter-layer pass ({interlayer_mode}): "
                f"{donated} ofmap donation(s) applied"
            )
        trail.scheme = scheme
        plan_span.set_attr("scheme", scheme)
        registry = metrics_registry()
        registry.counter("planner_layers_count").add(len(model.layers))
        registry.counter("planner_candidates_count").add(
            sum(len(c) for c in candidates)
        )
    return _maybe_verify(
        ExecutionPlan(
            model=model,
            spec=spec,
            objective=objective,
            scheme=scheme,
            assignments=tuple(assignments),
            audit=trail.build(),
        ),
        verify,
    )


def plan_homogeneous(
    model: Model,
    spec: AcceleratorSpec,
    family: str,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    verify: bool = False,
) -> ExecutionPlan | None:
    """The homogeneous scheme for one policy family (e.g. ``"p1"``).

    Layers the family cannot fit fall back to the tile search, as
    Algorithm 1 prescribes for infeasible layers.  Returns ``None`` when
    even the fallback fails somewhere (practically: never for paper-sized
    buffers).
    """
    family_policies = tuple(p for p in NAMED_POLICIES if p.name == family)
    if not family_policies:
        raise KeyError(f"unknown policy family {family!r}")
    scheme = f"hom({family})"
    trail = TrailBuilder(
        scheme=scheme, objective=objective.value, glb_bytes=spec.glb_bytes
    )
    assignments = []
    with get_tracer().start("plan_homogeneous", model=model.name, family=family):
        for i, layer in enumerate(model.layers):
            attempts: list[PolicyAttempt] = []
            evaluations = evaluate_layer(
                layer,
                spec,
                policies=family_policies,
                use_fallback=True,
                allow_prefetch=allow_prefetch,
                attempts=attempts,
            )
            if not evaluations:
                return None
            selected: list[CandidateRecord] = []
            choice = select_policy(evaluations, objective, audit=selected)
            trail.add_layer(
                i, layer.name, _candidate_records(attempts, selected)
            )
            assignments.append(make_assignment(i, choice, spec))
    return _maybe_verify(
        ExecutionPlan(
            model=model,
            spec=spec,
            objective=objective,
            scheme=scheme,
            assignments=tuple(assignments),
            audit=trail.build(),
        ),
        verify,
    )


def best_homogeneous(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    verify: bool = False,
) -> ExecutionPlan:
    """The ``Hom`` scheme: the best single-policy plan for the objective."""
    best: ExecutionPlan | None = None
    best_key: tuple[float, float] | None = None
    for policy in NAMED_POLICIES:
        plan = plan_homogeneous(
            model, spec, policy.name, objective, allow_prefetch=allow_prefetch
        )
        if plan is None:
            continue
        key = objective.key(plan.total_accesses_bytes, plan.total_latency_cycles)
        if best_key is None or key < best_key:
            best, best_key = plan, key
    if best is None:
        raise ValueError(f"{model.name}: no homogeneous scheme is feasible")
    return _maybe_verify(best, verify)
