"""Plan construction: homogeneous and heterogeneous management schemes.

The paper compares (§5.1):

* ``Hom`` — the *homogeneous* scheme: every layer runs the same policy
  family (falling back to the tile search only when that family cannot fit
  a layer at all), with the family chosen to minimize the objective;
* ``Het`` — the *heterogeneous* scheme: Algorithm 1 picks the best policy
  per layer.

Prefetch variants: within a scheme each layer may use the policy with or
without prefetching (Table 4 writes "policy 1 (+p)" when both occur);
``allow_prefetch=False`` reproduces the prefetch-disabled reference of
Fig. 10.  ``interlayer=True`` enables the §5.4 chain DP.

Every planner accepts ``verify=True`` (a debug mode): the emitted plan is
statically checked against the :mod:`repro.verify` invariant catalog and a
:class:`~repro.verify.PlanVerificationError` is raised if any invariant is
violated — turning planner bugs into hard failures at the source.
"""

from __future__ import annotations

from ..arch.spec import AcceleratorSpec
from ..estimators.evaluate import PolicyEvaluation, evaluate_layer
from ..nn.model import Model
from ..policies.base import Policy
from ..policies.registry import NAMED_POLICIES
from .algorithm1 import select_policy
from .interlayer import apply_opportunistic_interlayer, plan_chain_with_interlayer
from .objectives import Objective
from .plan import ExecutionPlan, make_assignment


def candidate_evaluations(
    model: Model,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...] = NAMED_POLICIES,
    allow_prefetch: bool = True,
    always_fallback: bool = True,
) -> list[list[PolicyEvaluation]]:
    """Feasible policy evaluations for every layer of the model."""
    return [
        evaluate_layer(
            layer,
            spec,
            policies=policies,
            allow_prefetch=allow_prefetch,
            always_fallback=always_fallback,
        )
        for layer in model.layers
    ]


def _maybe_verify(plan: ExecutionPlan, verify: bool) -> ExecutionPlan:
    """Run the static verifier over a fresh plan when requested."""
    if verify:
        # Imported lazily: repro.verify consumes this module's output types.
        from ..verify import check_plan

        check_plan(plan)
    return plan


def plan_heterogeneous(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
    verify: bool = False,
) -> ExecutionPlan:
    """The ``Het`` scheme: best policy per layer (Algorithm 1).

    ``interlayer=True`` enables §5.4 ofmap donation between consecutive
    layers.  ``interlayer_mode`` selects the paper-faithful
    ``"opportunistic"`` pass (policies first, donations where they fit) or
    our ``"joint"`` DP extension that co-optimizes both decisions.
    """
    candidates = candidate_evaluations(model, spec, allow_prefetch=allow_prefetch)
    empty = [model.layers[i].name for i, c in enumerate(candidates) if not c]
    if empty:
        raise ValueError(
            f"{model.name}: no feasible policy for layers {empty} at "
            f"GLB={spec.glb_bytes} bytes"
        )
    assignments = [
        make_assignment(i, select_policy(evs, objective), spec)
        for i, evs in enumerate(candidates)
    ]
    scheme = "het"
    if interlayer:
        if interlayer_mode == "opportunistic":
            assignments = apply_opportunistic_interlayer(model, spec, assignments)
            scheme = "het+il"
        elif interlayer_mode == "joint":
            assignments = plan_chain_with_interlayer(model, spec, objective, candidates)
            scheme = "het+il(joint)"
        else:
            raise ValueError(f"unknown interlayer_mode {interlayer_mode!r}")
    return _maybe_verify(
        ExecutionPlan(
            model=model,
            spec=spec,
            objective=objective,
            scheme=scheme,
            assignments=tuple(assignments),
        ),
        verify,
    )


def plan_homogeneous(
    model: Model,
    spec: AcceleratorSpec,
    family: str,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    verify: bool = False,
) -> ExecutionPlan | None:
    """The homogeneous scheme for one policy family (e.g. ``"p1"``).

    Layers the family cannot fit fall back to the tile search, as
    Algorithm 1 prescribes for infeasible layers.  Returns ``None`` when
    even the fallback fails somewhere (practically: never for paper-sized
    buffers).
    """
    family_policies = tuple(p for p in NAMED_POLICIES if p.name == family)
    if not family_policies:
        raise KeyError(f"unknown policy family {family!r}")
    assignments = []
    for i, layer in enumerate(model.layers):
        evs = evaluate_layer(
            layer,
            spec,
            policies=family_policies,
            use_fallback=True,
            allow_prefetch=allow_prefetch,
        )
        if not evs:
            return None
        assignments.append(make_assignment(i, select_policy(evs, objective), spec))
    return _maybe_verify(
        ExecutionPlan(
            model=model,
            spec=spec,
            objective=objective,
            scheme=f"hom({family})",
            assignments=tuple(assignments),
        ),
        verify,
    )


def best_homogeneous(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    verify: bool = False,
) -> ExecutionPlan:
    """The ``Hom`` scheme: the best single-policy plan for the objective."""
    best: ExecutionPlan | None = None
    best_key: tuple[float, float] | None = None
    for policy in NAMED_POLICIES:
        plan = plan_homogeneous(
            model, spec, policy.name, objective, allow_prefetch=allow_prefetch
        )
        if plan is None:
            continue
        key = objective.key(plan.total_accesses_bytes, plan.total_latency_cycles)
        if best_key is None or key < best_key:
            best, best_key = plan, key
    if best is None:
        raise ValueError(f"{model.name}: no homogeneous scheme is feasible")
    return _maybe_verify(best, verify)
