"""Execution-plan export: the schedule a compiler backend would consume.

The paper's future work integrates the policies into a DL compiler (TVM).
This module defines the hand-off format: a JSON document with one record
per layer carrying the chosen policy, its tile sizes, prefetch/donation
flags and the expected metrics, plus plan-level totals.  Round-tripping is
lossless for everything a code generator needs (the analyzer internals —
schedules, candidate sets — are intentionally not serialized).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..arch.spec import AcceleratorSpec
from .plan import ExecutionPlan, LayerAssignment

EXPORT_SCHEMA = 1


def assignment_to_dict(
    assignment: LayerAssignment, spec: AcceleratorSpec
) -> dict[str, Any]:
    """Serialize one layer assignment."""
    plan = assignment.evaluation.plan
    b = spec.bytes_per_elem
    return {
        "layer": assignment.layer.name,
        "policy": assignment.policy_name,
        "prefetch": assignment.prefetch,
        "block_size": plan.block_size,
        "tiles_bytes": {
            "ifmap": plan.tiles.ifmap * b,
            "filters": plan.tiles.filters * b,
            "ofmap": plan.tiles.ofmap * b,
        },
        "memory_bytes": assignment.memory_bytes,
        "receives_ifmap_on_chip": assignment.receives,
        "donates_ofmap_on_chip": assignment.donates,
        "expected": {
            "accesses_bytes": assignment.accesses_bytes,
            "read_bytes": assignment.read_bytes,
            "write_bytes": assignment.write_bytes,
            "latency_cycles": assignment.latency_cycles,
        },
    }


def plan_to_dict(plan: ExecutionPlan) -> dict[str, Any]:
    """Serialize a full execution plan."""
    spec = plan.spec
    return {
        "schema": EXPORT_SCHEMA,
        "model": plan.model.name,
        "scheme": plan.scheme,
        "objective": plan.objective.value,
        "accelerator": {
            "pe_rows": spec.pe_rows,
            "pe_cols": spec.pe_cols,
            "ops_per_cycle": spec.ops_per_cycle,
            "data_width_bits": spec.data_width_bits,
            "glb_bytes": spec.glb_bytes,
            "dram_bandwidth_elems_per_cycle": spec.dram_bandwidth_elems_per_cycle,
        },
        "totals": {
            "accesses_bytes": plan.total_accesses_bytes,
            "latency_cycles": plan.total_latency_cycles,
            "prefetch_coverage": plan.prefetch_coverage,
            "interlayer_coverage": plan.interlayer_coverage,
            "max_memory_bytes": plan.max_memory_bytes,
        },
        "layers": [assignment_to_dict(a, spec) for a in plan.assignments],
    }


def save_plan(plan: ExecutionPlan, path: str | Path) -> None:
    """Write the plan export to a JSON file."""
    Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2))


def load_plan_dict(path: str | Path) -> dict[str, Any]:
    """Read a previously exported plan (as a dict; schema-checked)."""
    data: dict[str, Any] = json.loads(Path(path).read_text())
    if data.get("schema") != EXPORT_SCHEMA:
        raise ValueError(f"unsupported plan schema {data.get('schema')}")
    return data
