"""The ``repro-serve/1`` JSON protocol: requests, responses, errors.

Every daemon response — success or failure — is one envelope::

    {
      "schema": "repro-serve/1",
      "ok": true | false,
      "endpoint": "plan" | "explain" | "simulate" | "models" | "health"
                  | "stats",
      "result": {...} | null,        # exactly one of result/error is set
      "error": {"code": str, "message": str} | null
    }

POST bodies are plain JSON parameter objects (no envelope); the
:class:`PlanRequest` dataclass is their validated form.  Malformed JSON,
unknown endpoints, unknown models and bad parameter types all map to
structured error envelopes with non-2xx HTTP statuses — a client never
sees a traceback.

:func:`repro.report.diagnostics.validate_serve_payload` is the
envelope's executable schema definition, in the same style as
``repro-diagnostics/1`` and ``repro-telemetry/1``; a regression test
pins the two schema-id literals together.

:func:`canonical_json` renders payloads with sorted keys and fixed
separators, so two processes serializing the same plan produce the same
bytes — the property the load generator's byte-identity check and the
acceptance criteria rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

#: Identifier of the serving schema (bump on incompatible changes).
SERVE_SCHEMA_ID = "repro-serve/1"

#: Every endpoint the daemon exposes (GET: health/models/stats;
#: POST: plan/explain/simulate).
ENDPOINTS: tuple[str, ...] = (
    "health",
    "models",
    "stats",
    "plan",
    "explain",
    "simulate",
)

#: Endpoints that accept a POST parameter body.
POST_ENDPOINTS: tuple[str, ...] = ("plan", "explain", "simulate")

#: Structured error codes an envelope may carry.
ERROR_CODES: tuple[str, ...] = (
    "invalid-json",
    "unknown-endpoint",
    "bad-request",
    "unknown-model",
    "internal",
)


class ProtocolError(Exception):
    """A request that cannot be served, with its structured error code."""

    def __init__(self, code: str, message: str, http_status: int = 400) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = http_status


def ok_response(endpoint: str, result: dict[str, Any]) -> dict[str, Any]:
    """A success envelope for one endpoint."""
    return {
        "schema": SERVE_SCHEMA_ID,
        "ok": True,
        "endpoint": endpoint,
        "result": result,
        "error": None,
    }


def error_response(endpoint: str, code: str, message: str) -> dict[str, Any]:
    """A failure envelope carrying a structured error."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown protocol error code {code!r}")
    return {
        "schema": SERVE_SCHEMA_ID,
        "ok": False,
        "endpoint": endpoint,
        "result": None,
        "error": {"code": code, "message": message},
    }


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON bytes: sorted keys, fixed separators, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    ).encode()


@dataclass(frozen=True)
class PlanRequest:
    """Validated parameters of a plan / explain / simulate request.

    Mirrors the knobs of :meth:`repro.manager.MemoryManager.plan_cached`
    plus the accelerator-spec fields the CLI exposes, with the CLI's
    defaults.
    """

    model: str
    glb_kb: int = 64
    data_width_bits: int = 8
    ops_per_cycle: int = 512
    dram_bandwidth_elems_per_cycle: float = 16.0
    objective: str = "accesses"
    scheme: str = "het"
    prefetch: bool = True
    interlayer: bool = False
    interlayer_mode: str = "opportunistic"

    def to_params(self) -> dict[str, Any]:
        """The request back as a plain JSON parameter object."""
        return {
            "model": self.model,
            "glb_kb": self.glb_kb,
            "data_width_bits": self.data_width_bits,
            "ops_per_cycle": self.ops_per_cycle,
            "dram_bandwidth_elems_per_cycle": self.dram_bandwidth_elems_per_cycle,
            "objective": self.objective,
            "scheme": self.scheme,
            "prefetch": self.prefetch,
            "interlayer": self.interlayer,
            "interlayer_mode": self.interlayer_mode,
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ProtocolError("bad-request", message)


def parse_plan_request(params: Any) -> PlanRequest:
    """Validate a POST parameter object into a :class:`PlanRequest`.

    Raises :class:`ProtocolError` (code ``bad-request``) on missing or
    ill-typed fields; unknown fields are rejected too, so client typos
    (``"objektive"``) fail loudly instead of silently using defaults.
    """
    _require(isinstance(params, dict), "request body must be a JSON object")
    assert isinstance(params, dict)
    known = set(PlanRequest.__dataclass_fields__)
    unknown = sorted(set(params) - known)
    _require(not unknown, f"unknown parameter(s): {', '.join(unknown)}")
    model = params.get("model")
    _require(
        isinstance(model, str) and bool(model),
        "'model' must be a non-empty string (a zoo model name)",
    )
    merged: dict[str, Any] = {"model": model}
    for name, kind, constraint in (
        ("glb_kb", int, "a positive integer"),
        ("data_width_bits", int, "a positive integer"),
        ("ops_per_cycle", int, "a positive integer"),
    ):
        if name in params:
            value = params[name]
            _require(
                isinstance(value, kind)
                and not isinstance(value, bool)
                and value > 0,
                f"{name!r} must be {constraint}",
            )
            merged[name] = value
    if "dram_bandwidth_elems_per_cycle" in params:
        bandwidth = params["dram_bandwidth_elems_per_cycle"]
        _require(
            isinstance(bandwidth, (int, float))
            and not isinstance(bandwidth, bool)
            and bandwidth > 0,
            "'dram_bandwidth_elems_per_cycle' must be a positive number",
        )
        merged["dram_bandwidth_elems_per_cycle"] = float(bandwidth)
    if "objective" in params:
        objective = params["objective"]
        _require(
            objective in ("accesses", "latency"),
            "'objective' must be 'accesses' or 'latency'",
        )
        merged["objective"] = objective
    if "scheme" in params:
        scheme = params["scheme"]
        _require(
            isinstance(scheme, str)
            and (
                scheme in ("het", "hom")
                or (scheme.startswith("hom(") and scheme.endswith(")"))
            ),
            "'scheme' must be 'het', 'hom' or 'hom(<family>)'",
        )
        merged["scheme"] = scheme
    for flag in ("prefetch", "interlayer"):
        if flag in params:
            value = params[flag]
            _require(isinstance(value, bool), f"{flag!r} must be a boolean")
            merged[flag] = value
    if "interlayer_mode" in params:
        mode = params["interlayer_mode"]
        _require(
            mode in ("opportunistic", "joint"),
            "'interlayer_mode' must be 'opportunistic' or 'joint'",
        )
        merged["interlayer_mode"] = mode
    request = PlanRequest(**merged)
    _require(
        not (request.interlayer and request.scheme != "het"),
        "inter-layer reuse is only supported for the het scheme",
    )
    return request
