"""LRU index + size-cap eviction for the shared content-addressed cache.

The persistent plan cache (:mod:`repro.experiments.cache`) is written by
many processes at once — experiment pool workers, daemon pool workers,
CLI invocations — so its recency index cannot be a single JSON document
that writers read-modify-write (two concurrent writers would drop each
other's updates).  Instead the index is an **append-only journal**:

* Every store and every hit appends one small JSON line with
  ``O_APPEND`` (atomic for writes far below ``PIPE_BUF``, so concurrent
  appends never interleave mid-line on POSIX).
* Recency is the *journal order itself* — later lines are more recent —
  so no clock and no cross-process sequence counter is needed, and the
  replayed order is identical in every reader.
* Readers replay the journal tolerantly: a torn or corrupt trailing
  line (crashed writer) is skipped, never fatal.

Eviction (:meth:`CacheIndex.prune`) takes an exclusive ``flock`` on a
sidecar lock file, replays the journal, reconciles it against the files
actually on disk (disk is the source of truth for existence and size),
deletes least-recently-used entries until the total size fits the cap,
and atomically rewrites a compacted journal.  Entries are removed with
``unlink`` only after the compacted journal is in place, and concurrent
readers treat a vanished entry file as an ordinary cache miss — so an
in-flight ``load``/``store`` can race an eviction without corruption:
the worst case is one recomputation.  Callers may also pass ``keep``
keys (entries they are actively using) which are never evicted.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

try:  # POSIX-only; the repo targets Linux but degrades gracefully.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

#: Journal file name inside the cache directory.
JOURNAL_NAME = "index.journal"

#: Lock file name (flock target) inside the cache directory.
LOCK_NAME = "index.lock"


@dataclass(frozen=True)
class IndexEntry:
    """One cache entry as the index knows it."""

    key: str
    size_bytes: int
    #: Journal line number of the entry's most recent touch (-1 when the
    #: entry exists on disk but was never journaled — treated as oldest).
    seq: int


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`CacheIndex.prune` pass."""

    evicted_count: int
    evicted_bytes: int
    remaining_count: int
    remaining_bytes: int

    def to_payload(self) -> dict[str, int]:
        """The result as a JSON-safe dict (CLI / bench output)."""
        return {
            "evicted_count": self.evicted_count,
            "evicted_bytes": self.evicted_bytes,
            "remaining_count": self.remaining_count,
            "remaining_bytes": self.remaining_bytes,
        }


class _Flock:
    """Exclusive advisory lock on a file (no-op where flock is missing)."""

    def __init__(self, path: Path) -> None:
        self._path = path
        self._handle: IO[str] | None = None

    def __enter__(self) -> "_Flock":
        self._path.parent.mkdir(parents=True, exist_ok=True)
        handle = self._path.open("a")
        if fcntl is not None:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        self._handle = handle
        return self

    def __exit__(self, *exc_info: object) -> None:
        handle = self._handle
        self._handle = None
        if handle is not None:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            handle.close()


class CacheIndex:
    """Append-only LRU journal for one cache directory.

    All methods are safe to call from many processes concurrently; only
    :meth:`prune` and :meth:`compact` take the exclusive lock.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)

    @property
    def journal_path(self) -> Path:
        """Location of the append-only journal file."""
        return self.root / JOURNAL_NAME

    @property
    def lock_path(self) -> Path:
        """Location of the flock sidecar file."""
        return self.root / LOCK_NAME

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def record(self, key: str, size_bytes: int) -> None:
        """Append one touch record (store or hit) for ``key``.

        A single ``O_APPEND`` write of one short line: atomic with
        respect to every other concurrent writer, never read-modify-
        write.  Failures are swallowed — the index is a performance
        structure, not a correctness one (disk remains authoritative).
        """
        line = json.dumps(
            {"key": key, "size_bytes": int(size_bytes)}, sort_keys=True
        )
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            try:
                os.write(fd, (line + "\n").encode())
            finally:
                os.close(fd)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def _replay(self) -> dict[str, IndexEntry]:
        """Replay the journal; last touch wins, corrupt lines skipped."""
        entries: dict[str, IndexEntry] = {}
        try:
            raw = self.journal_path.read_bytes()
        except OSError:
            return entries
        for seq, line in enumerate(raw.splitlines()):
            try:
                record = json.loads(line)
                key = record["key"]
                size_bytes = int(record["size_bytes"])
            except (ValueError, KeyError, TypeError):
                continue  # torn/corrupt line from a crashed writer
            if isinstance(key, str):
                entries[key] = IndexEntry(key=key, size_bytes=size_bytes, seq=seq)
        return entries

    def _disk_entries(self) -> dict[str, int]:
        """key → size for every entry file actually on disk."""
        sizes: dict[str, int] = {}
        if not self.root.is_dir():
            return sizes
        for path in self.root.rglob("*.pkl"):
            try:
                sizes[path.stem] = path.stat().st_size
            except OSError:
                continue  # raced an eviction/clear
        return sizes

    def entries(self) -> list[IndexEntry]:
        """Current entries, least- to most-recently used.

        Reconciled against disk: journal records without a backing file
        are dropped; on-disk files the journal never saw sort oldest
        (deterministically, by key) with authoritative disk sizes.
        """
        journal = self._replay()
        disk = self._disk_entries()
        merged: list[IndexEntry] = []
        for key in sorted(disk):
            recorded = journal.get(key)
            merged.append(
                IndexEntry(
                    key=key,
                    size_bytes=disk[key],
                    seq=recorded.seq if recorded is not None else -1,
                )
            )
        merged.sort(key=lambda e: (e.seq, e.key))
        return merged

    def total_bytes(self) -> int:
        """Total size of all entry files on disk."""
        return sum(self._disk_entries().values())

    def _entry_file(self, key: str) -> Path:
        # Mirrors repro.experiments.cache._entry_path fan-out layout.
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Eviction / maintenance
    # ------------------------------------------------------------------

    def _write_journal(self, survivors: list[IndexEntry]) -> None:
        """Atomically replace the journal with a compacted one."""
        self.root.mkdir(parents=True, exist_ok=True)
        lines = "".join(
            json.dumps({"key": e.key, "size_bytes": e.size_bytes}, sort_keys=True)
            + "\n"
            for e in survivors
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".journal.tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(lines)
            os.replace(tmp, self.journal_path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def prune(
        self, max_bytes: int, *, keep: frozenset[str] = frozenset()
    ) -> PruneResult:
        """Evict least-recently-used entries until the total fits the cap.

        Holds the exclusive index lock for the whole pass, so concurrent
        prunes serialize.  Keys in ``keep`` (in-flight entries the caller
        is actively reading or just wrote) are never evicted.  The
        compacted journal is written *before* entry files are unlinked,
        so a crash mid-prune leaves extra files (reclaimed next pass),
        never a journal that references nothing.
        """
        with _Flock(self.lock_path):
            entries = self.entries()
            total_bytes = sum(e.size_bytes for e in entries)
            victims: list[IndexEntry] = []
            for entry in entries:  # oldest first
                if total_bytes <= max_bytes:
                    break
                if entry.key in keep:
                    continue
                victims.append(entry)
                total_bytes -= entry.size_bytes
            victim_keys = {v.key for v in victims}
            survivors = [e for e in entries if e.key not in victim_keys]
            self._write_journal(survivors)
            for victim in victims:
                try:
                    self._entry_file(victim.key).unlink()
                except OSError:
                    pass
            return PruneResult(
                evicted_count=len(victims),
                evicted_bytes=sum(v.size_bytes for v in victims),
                remaining_count=len(survivors),
                remaining_bytes=sum(e.size_bytes for e in survivors),
            )

    def compact(self) -> int:
        """Rewrite the journal to one line per live entry; returns count.

        Called on daemon shutdown (the "flush the cache index atomically"
        step) and after clears, so journals do not grow without bound.
        """
        with _Flock(self.lock_path):
            survivors = self.entries()
            self._write_journal(survivors)
            return len(survivors)

    def clear(self) -> None:
        """Drop the journal (after the entries themselves were deleted)."""
        with _Flock(self.lock_path):
            try:
                self.journal_path.unlink()
            except OSError:
                pass

    def iter_keys(self) -> Iterator[str]:
        """All keys on disk (unordered source: sorted for determinism)."""
        yield from sorted(self._disk_entries())
