"""Deterministic load generator for the ``repro serve`` daemon.

``repro bench serve --clients N --requests M`` replays a seeded traffic
mix (plan/explain/simulate requests over the model zoo at several GLB
sizes) against a daemon and reports latency percentiles, throughput and
cache hit-rate into ``BENCH_serve.json`` — the serving counterpart of
the experiment engine's ``BENCH_experiments.json``.

Determinism without :mod:`random`: request *i* of a run is chosen by the
SHA-256 digest of ``"<seed>:<i>"`` (:func:`request_mix`), so the same
``--seed`` always produces the same request sequence, byte for byte —
only the interleaving across client threads varies.

Each response is additionally checked for **byte identity**: the served
``result`` (minus the per-request ``cache`` hit flag) must equal, under
:func:`~repro.serve.protocol.canonical_json`, what a direct in-process
call to the same handler produces.  This is the acceptance property that
the daemon serves exactly what ``MemoryManager.plan_cached`` computes —
no drift between the HTTP path and the library path.
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from ..obs import clock
from .handlers import execute
from .protocol import canonical_json

#: Default model mix (small nets keep the cold CI run cheap).
DEFAULT_MODELS: tuple[str, ...] = ("MobileNet", "ResNet18", "MnasNet")

#: Default GLB sizes (KiB) in the mix.
DEFAULT_GLB_KB: tuple[int, ...] = (32, 64)

#: Endpoint weights per 100 requests (plan-heavy, like a real client).
MIX_WEIGHTS: tuple[tuple[str, int], ...] = (
    ("plan", 70),
    ("explain", 15),
    ("simulate", 15),
)


@dataclass(frozen=True)
class RequestJob:
    """One scheduled request of the seeded mix."""

    index: int
    endpoint: str
    params: dict[str, Any]


@dataclass(frozen=True)
class RequestOutcome:
    """What one request did: status, cache hit, latency, byte identity."""

    endpoint: str
    status: int
    ok: bool
    cache_hit: bool
    latency_seconds: float
    byte_identical: bool


def _digest_ints(seed: int, index: int, count: int) -> list[int]:
    """``count`` deterministic small ints from sha256("<seed>:<index>")."""
    digest = hashlib.sha256(f"{seed}:{index}".encode()).digest()
    return [digest[i] for i in range(count)]


def _pick_endpoint(roll: int) -> str:
    """Map a 0–255 roll onto the weighted endpoint mix."""
    point = roll % sum(weight for _, weight in MIX_WEIGHTS)
    for endpoint, weight in MIX_WEIGHTS:
        if point < weight:
            return endpoint
        point -= weight
    return MIX_WEIGHTS[0][0]


def request_mix(
    seed: int,
    count: int,
    *,
    models: tuple[str, ...] = DEFAULT_MODELS,
    glb_kb: tuple[int, ...] = DEFAULT_GLB_KB,
) -> list[RequestJob]:
    """The full seeded request sequence for one run.

    Pure function of its arguments (hash-derived choices, no RNG state),
    so two runs with the same seed replay identical traffic — the basis
    of the warm-run hit-rate acceptance check.
    """
    jobs = []
    for index in range(count):
        d_model, d_glb, d_endpoint = _digest_ints(seed, index, 3)
        jobs.append(
            RequestJob(
                index=index,
                endpoint=_pick_endpoint(d_endpoint),
                params={
                    "model": models[d_model % len(models)],
                    "glb_kb": glb_kb[d_glb % len(glb_kb)],
                },
            )
        )
    return jobs


def _comparable(result: dict[str, Any]) -> bytes:
    """A response result's canonical bytes minus the ``cache`` hit flag.

    The hit flag legitimately differs between the served call and the
    local oracle call (the second one always hits), so byte identity is
    defined over everything else.
    """
    return canonical_json({k: v for k, v in result.items() if k != "cache"})


def _verify_bytes(job: RequestJob, served_result: dict[str, Any]) -> bool:
    """Served payload == direct in-process handler payload, byte for byte."""
    status, envelope = execute(job.endpoint, job.params)
    if status != 200:
        return False
    return _comparable(served_result) == _comparable(envelope["result"])


def _one_request(url: str, job: RequestJob, verify: bool) -> RequestOutcome:
    """POST one job to the daemon and measure it."""
    request = urllib.request.Request(
        f"{url}/{job.endpoint}",
        data=json.dumps(job.params).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    start_ns = clock.monotonic_ns()
    try:
        with urllib.request.urlopen(request, timeout=300) as response:
            status = int(response.status)
            body = response.read()
    except urllib.error.HTTPError as exc:
        status = int(exc.code)
        body = exc.read()
    except (urllib.error.URLError, OSError):
        return RequestOutcome(job.endpoint, 0, False, False, 0.0, False)
    latency = clock.elapsed_seconds(start_ns)
    try:
        envelope = json.loads(body)
    except json.JSONDecodeError:
        return RequestOutcome(job.endpoint, status, False, False, latency, False)
    ok = status == 200 and bool(envelope.get("ok"))
    result = envelope.get("result") or {}
    cache_hit = bool(result.get("cache", {}).get("hit"))
    identical = (
        _verify_bytes(job, result) if (ok and verify) else ok
    )
    return RequestOutcome(
        job.endpoint, status, ok, cache_hit, latency, identical
    )


def _percentile(sorted_values: list[float], quantile: float) -> float:
    """Nearest-rank percentile of an ascending list (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(quantile * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class LoadReport:
    """Aggregate result of one load-generator run."""

    url: str
    clients: int
    seed: int
    outcomes: tuple[RequestOutcome, ...]
    wall_seconds: float

    @property
    def total(self) -> int:
        """Requests attempted."""
        return len(self.outcomes)

    @property
    def ok_count(self) -> int:
        """Requests that returned a 200 success envelope."""
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def error_count(self) -> int:
        """Requests that failed at any level (transport, status, body)."""
        return self.total - self.ok_count

    @property
    def hit_rate(self) -> float:
        """Fraction of successful requests served from the plan cache."""
        return (
            sum(1 for o in self.outcomes if o.ok and o.cache_hit) / self.ok_count
            if self.ok_count
            else 0.0
        )

    @property
    def byte_identical(self) -> bool:
        """True iff every successful response matched the local oracle."""
        return all(o.byte_identical for o in self.outcomes if o.ok)

    @property
    def throughput_rps(self) -> float:
        """Completed requests per wall-clock second."""
        return self.total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def _latencies(self) -> list[float]:
        return sorted(o.latency_seconds for o in self.outcomes if o.ok)

    def latency_summary(self) -> dict[str, float]:
        """p50/p99/mean request latency in seconds."""
        latencies = self._latencies()
        return {
            "p50": _percentile(latencies, 0.50),
            "p99": _percentile(latencies, 0.99),
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
        }

    def bench_record(self) -> dict[str, Any]:
        """JSON-serializable perf record (``BENCH_serve.json``)."""
        from ..experiments import cache

        per_endpoint: dict[str, int] = {}
        for outcome in self.outcomes:
            per_endpoint[outcome.endpoint] = (
                per_endpoint.get(outcome.endpoint, 0) + 1
            )
        return {
            "schema": 1,
            "kind": "serve",
            "url": self.url,
            "clients": self.clients,
            "seed": self.seed,
            "requests": self.total,
            "ok": self.ok_count,
            "errors": self.error_count,
            "per_endpoint": dict(sorted(per_endpoint.items())),
            "hit_rate": self.hit_rate,
            "byte_identical": self.byte_identical,
            "latency_seconds": self.latency_summary(),
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "cache": {
                "enabled": cache.cache_enabled(),
                "dir": str(cache.cache_dir()),
                "schema_version": cache.CACHE_SCHEMA_VERSION,
                "entries": cache.entry_count(),
                "total_bytes": cache.total_bytes(),
            },
        }

    def write_bench(self, path: str | Path) -> None:
        """Write the perf record as JSON."""
        Path(path).write_text(json.dumps(self.bench_record(), indent=2) + "\n")


def run_load(
    url: str,
    *,
    clients: int = 4,
    requests: int = 24,
    seed: int = 0,
    models: tuple[str, ...] = DEFAULT_MODELS,
    glb_kb: tuple[int, ...] = DEFAULT_GLB_KB,
    verify: bool = True,
) -> LoadReport:
    """Replay the seeded mix against ``url`` with ``clients`` threads."""
    jobs = request_mix(seed, requests, models=models, glb_kb=glb_kb)
    start_ns = clock.monotonic_ns()
    with ThreadPoolExecutor(max_workers=max(1, clients)) as pool:
        outcomes = tuple(
            pool.map(lambda job: _one_request(url, job, verify), jobs)
        )
    return LoadReport(
        url=url,
        clients=clients,
        seed=seed,
        outcomes=outcomes,
        wall_seconds=clock.elapsed_seconds(start_ns),
    )


def bench_serve(
    *,
    clients: int = 4,
    requests: int = 24,
    seed: int = 0,
    url: str | None = None,
    jobs: int = 0,
    models: tuple[str, ...] = DEFAULT_MODELS,
    glb_kb: tuple[int, ...] = DEFAULT_GLB_KB,
    verify: bool = True,
    out: str | Path | None = "BENCH_serve.json",
) -> LoadReport:
    """One-shot benchmark: boot a daemon if needed, load it, report.

    With ``url=None`` an in-process :class:`ReproServer` is booted on an
    ephemeral port and torn down afterwards; pass ``--url`` to aim at an
    already-running daemon (CI's smoke job does both passes this way).
    """
    from .server import ReproServer

    server: ReproServer | None = None
    thread: threading.Thread | None = None
    if url is None:
        server = ReproServer("127.0.0.1", 0, jobs=jobs)
        thread = threading.Thread(
            target=server.serve_forever, name="repro-serve-bench", daemon=True
        )
        thread.start()
        url = f"http://127.0.0.1:{server.port}"
    try:
        report = run_load(
            url,
            clients=clients,
            requests=requests,
            seed=seed,
            models=models,
            glb_kb=glb_kb,
            verify=verify,
        )
    finally:
        if server is not None:
            server.shutdown()
            assert thread is not None
            thread.join()
            server.close()
    if out is not None:
        report.write_bench(out)
    return report
