"""The ``repro serve`` daemon: a threaded HTTP front over the planner.

Architecture::

    client ──HTTP──▶ ServeRequestHandler (thread per request)
                        │  parse path/body → (endpoint, params)
                        ▼
                     ReproServer.dispatch
                        │  --jobs 0: in-process   --jobs N: process pool
                        ▼
                     handlers.execute  →  (status, repro-serve/1 envelope)

The daemon is deliberately stdlib-only (:mod:`http.server`); plans are
milliseconds-to-seconds of CPU work, so a thread-per-request front with
an optional :class:`~concurrent.futures.ProcessPoolExecutor` behind it
(same worker initializer as the experiment engine) is the right shape —
no event loop, no framework dependency.

Graceful shutdown (:func:`run_server`): SIGINT/SIGTERM set an event; the
serve loop stops accepting, in-flight request threads are joined
(``daemon_threads = False`` + ``block_on_close = True``), the worker
pool drains, the cache journal is compacted to a single atomic file, and
the process exits 0.
"""

from __future__ import annotations

import json
import signal
import threading
from concurrent.futures import ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..obs import clock, configure_worker, get_tracer, metrics_registry
from .handlers import execute
from .protocol import POST_ENDPOINTS, canonical_json, error_response

#: Endpoints reachable with GET (read-only probes).
GET_ENDPOINTS: tuple[str, ...] = ("health", "models", "stats")

#: Largest request body the daemon will read, in bytes.
MAX_BODY_BYTES = 1 << 20


class ReproServer(ThreadingHTTPServer):
    """Planning-as-a-service HTTP server with an optional worker pool.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    ``jobs=0`` executes requests in the handler thread; ``jobs>0``
    submits them to a :class:`ProcessPoolExecutor` whose workers share
    the on-disk plan cache with the parent and with every other entry
    point (CLI, experiment engine).
    """

    # Join in-flight request threads on server_close(): this is the
    # drain half of graceful shutdown.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, jobs: int = 0
    ) -> None:
        super().__init__((host, port), ServeRequestHandler)
        self._pool: ProcessPoolExecutor | None = (
            ProcessPoolExecutor(max_workers=jobs, initializer=configure_worker)
            if jobs > 0
            else None
        )

    @property
    def port(self) -> int:
        """The actually-bound TCP port (useful with ``port=0``)."""
        return int(self.server_address[1])

    def dispatch(
        self, endpoint: str, params: Any = None
    ) -> tuple[int, dict[str, Any]]:
        """Run one request through the pool (or inline) to an envelope."""
        if self._pool is None:
            return execute(endpoint, params)
        try:
            return self._pool.submit(execute, endpoint, params).result()
        except Exception as exc:  # pool broken / worker died
            return 500, error_response(
                endpoint, "internal", f"worker pool failure: {exc}"
            )

    def close(self) -> None:
        """Stop accepting, drain request threads, shut the pool down."""
        self.server_close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


class ServeRequestHandler(BaseHTTPRequestHandler):
    """Maps HTTP requests onto ``repro-serve/1`` envelopes.

    GET serves :data:`GET_ENDPOINTS`; POST serves
    :data:`~repro.serve.protocol.POST_ENDPOINTS` with a JSON parameter
    body.  Every outcome — including malformed JSON, unknown paths and
    wrong methods — is a structured envelope with a meaningful status
    code; a traceback never reaches the wire.
    """

    server: ReproServer
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr lines; metrics carry the signal."""

    def _endpoint(self) -> str:
        """The endpoint named by the request path (no nesting, no query)."""
        return self.path.split("?", 1)[0].strip("/")

    def _send(self, status: int, envelope: dict[str, Any]) -> None:
        """Write one envelope as a complete HTTP response."""
        body = canonical_json(envelope)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        metrics_registry().counter("serve_requests_count").add(1)
        if status >= 400:
            metrics_registry().counter("serve_errors_count").add(1)

    def _serve(self, endpoint: str, params: Any) -> None:
        """Dispatch + time one request (shared GET/POST tail)."""
        start_ns = clock.monotonic_ns()
        with get_tracer().start("serve_request", endpoint=endpoint) as span:
            status, envelope = self.server.dispatch(endpoint, params)
            span.set_attr("status", status)
        if endpoint in POST_ENDPOINTS or endpoint in GET_ENDPOINTS:
            metrics_registry().histogram(f"serve_{endpoint}_seconds").observe(
                clock.elapsed_seconds(start_ns)
            )
        self._send(status, envelope)

    def do_GET(self) -> None:
        """Serve the read-only probe endpoints."""
        endpoint = self._endpoint()
        if endpoint in POST_ENDPOINTS:
            self._send(
                405,
                error_response(
                    endpoint, "bad-request", f"endpoint {endpoint!r} requires POST"
                ),
            )
            return
        self._serve(endpoint, None)

    def do_POST(self) -> None:
        """Serve the planning endpoints from a JSON parameter body."""
        endpoint = self._endpoint()
        if endpoint in GET_ENDPOINTS:
            self._send(
                405,
                error_response(
                    endpoint, "bad-request", f"endpoint {endpoint!r} requires GET"
                ),
            )
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_BODY_BYTES:
            self._send(
                400,
                error_response(
                    endpoint,
                    "bad-request",
                    f"request body exceeds {MAX_BODY_BYTES} bytes",
                ),
            )
            return
        raw = self.rfile.read(length) if length else b""
        try:
            params = json.loads(raw or b"null")
        except json.JSONDecodeError as exc:
            self._send(
                400,
                error_response(
                    endpoint, "invalid-json", f"request body is not JSON: {exc}"
                ),
            )
            return
        self._serve(endpoint, params)


def run_server(
    host: str = "127.0.0.1",
    port: int = 8077,
    *,
    jobs: int = 0,
    announce: bool = True,
) -> int:
    """Run the daemon until SIGINT/SIGTERM; drain and exit 0.

    The shutdown sequence — stop accepting, join in-flight request
    threads, drain the worker pool, compact the cache journal to one
    atomic file — is the satellite "graceful shutdown" contract; CI's
    serve smoke job asserts the exit status.
    """
    server = ReproServer(host, port, jobs=jobs)
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _on_signal)
        for sig in (signal.SIGINT, signal.SIGTERM)
    }
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=False
    )
    thread.start()
    if announce:
        print(f"repro serve listening on http://{host}:{server.port} (jobs={jobs})", flush=True)
    try:
        stop.wait()
    finally:
        server.shutdown()
        thread.join()
        server.close()
        from ..experiments import cache

        if cache.cache_enabled():
            cache.index().compact()
        for sig, old in previous.items():
            signal.signal(sig, old)
    if announce:
        print("repro serve: drained, cache index flushed, exiting 0", flush=True)
    return 0
