"""Endpoint handlers: validated request params → response payloads.

Each ``handle_<endpoint>`` function is pure with respect to its inputs
(same request, same cache state → same payload bytes) and HTTP-free, so
the same code path serves three callers:

* the daemon's worker pool (:func:`execute` is the module-level function
  :class:`~repro.serve.server.ReproServer` submits, hence picklable),
* in-process dispatch (``--jobs 0``) and unit tests,
* the load generator's byte-identity oracle (it computes the expected
  payload by calling the handler directly and compares it against the
  served bytes).

The ``handle_`` prefix is a naming contract: the determinism-
reachability lint (R050–R053) treats every ``handle_*`` function as a
root, so any nondeterministic call that becomes reachable from a serve
endpoint is flagged with a witness chain in ``repro lint``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from ..analyzer import Objective
from ..analyzer.export import plan_to_dict
from ..arch.spec import AcceleratorSpec
from ..arch.units import kib
from ..manager import MemoryManager
from ..nn.zoo import ALL_MODEL_NAMES, get_model
from .protocol import (
    ENDPOINTS,
    ProtocolError,
    PlanRequest,
    error_response,
    ok_response,
    parse_plan_request,
)


def _resolve_model_name(name: str) -> str:
    """Map a request's model name onto the zoo (case-insensitive)."""
    canonical = {known.lower(): known for known in ALL_MODEL_NAMES}.get(
        name.lower()
    )
    if canonical is None:
        raise ProtocolError(
            "unknown-model",
            f"unknown model {name!r}; available: {', '.join(ALL_MODEL_NAMES)}",
            http_status=404,
        )
    return canonical


def _canonical_request(params: Any) -> PlanRequest:
    """Parse and normalize a request (model name in canonical zoo case).

    Normalizing here means the echoed ``result["request"]`` — and hence
    the full response payload — is identical however the client cased
    the model name.
    """
    request = parse_plan_request(params)
    return replace(request, model=_resolve_model_name(request.model))


def _spec_for(request: PlanRequest) -> AcceleratorSpec:
    """The accelerator spec a request describes."""
    return AcceleratorSpec(
        glb_bytes=kib(request.glb_kb),
        data_width_bits=request.data_width_bits,
        ops_per_cycle=request.ops_per_cycle,
        dram_bandwidth_elems_per_cycle=request.dram_bandwidth_elems_per_cycle,
    )


def handle_health(params: Any = None) -> dict[str, Any]:
    """Liveness probe: daemon status and cache configuration."""
    from ..experiments import cache

    return {
        "status": "ok",
        "cache_enabled": cache.cache_enabled(),
        "cache_schema_version": cache.CACHE_SCHEMA_VERSION,
    }


def handle_models(params: Any = None) -> dict[str, Any]:
    """The model registry: every zoo network with its headline stats."""
    models = []
    for name in ALL_MODEL_NAMES:
        model = get_model(name)
        models.append(
            {
                "name": name,
                "layers": model.num_layers,
                "macs": model.total_macs,
                "weight_elems": model.total_weight_elems,
            }
        )
    return {"models": models}


def handle_stats(params: Any = None) -> dict[str, Any]:
    """Shared-cache statistics: entries, bytes, this-process counters."""
    from ..experiments import cache

    return {
        "cache": {
            "enabled": cache.cache_enabled(),
            "dir": str(cache.cache_dir()),
            "schema_version": cache.CACHE_SCHEMA_VERSION,
            "entries": cache.entry_count(),
            "total_bytes": cache.total_bytes(),
            "max_bytes": cache.cache_max_bytes(),
            "counters": cache.stats.snapshot(),
        }
    }


def handle_plan(params: Any) -> dict[str, Any]:
    """Plan a model through the shared cache; the daemon's core endpoint.

    The response's ``plan`` sub-object is byte-identical (under
    :func:`~repro.serve.protocol.canonical_json`) to
    ``plan_to_dict(MemoryManager(spec).plan_cached(...))`` for the same
    request — the acceptance property the load generator asserts.
    """
    request = _canonical_request(params)
    manager = MemoryManager(_spec_for(request))
    try:
        plan, hit, key = manager.plan_cached_detail(
            get_model(request.model),
            Objective(request.objective),
            scheme=request.scheme,
            prefetch=request.prefetch,
            interlayer=request.interlayer,
            interlayer_mode=request.interlayer_mode,
        )
    except (ValueError, KeyError) as exc:  # infeasible or unknown scheme
        raise ProtocolError("bad-request", str(exc)) from exc
    return {
        "request": request.to_params(),
        "plan": plan_to_dict(plan),
        "cache": {"hit": hit, "key": key},
    }


def handle_explain(params: Any) -> dict[str, Any]:
    """The planner's per-layer decision audit trail for one request."""
    request = _canonical_request(params)
    manager = MemoryManager(_spec_for(request))
    try:
        plan, hit, key = manager.plan_cached_detail(
            get_model(request.model),
            Objective(request.objective),
            scheme=request.scheme,
            prefetch=request.prefetch,
            interlayer=request.interlayer,
            interlayer_mode=request.interlayer_mode,
        )
    except (ValueError, KeyError) as exc:
        raise ProtocolError("bad-request", str(exc)) from exc
    return {
        "request": request.to_params(),
        "explain": plan.explain().to_payload(),
        "cache": {"hit": hit, "key": key},
    }


def handle_simulate(params: Any) -> dict[str, Any]:
    """Simulate the three fixed-partition baselines for one request.

    Results go through the same content-addressed cache as the
    experiment suite's ``baseline`` entries (identical keys), so a
    daemon serving simulate traffic warms the Fig. 5/8 artifacts too.
    """
    from ..experiments import cache
    from ..scalesim import SimulationResult, baseline_configs, simulate

    request = _canonical_request(params)
    model = get_model(request.model)
    spec = _spec_for(request)
    key = cache.make_key(
        "baseline",
        model=cache.model_digest(model),
        spec=cache.spec_payload(spec),
    )
    hit, cached = cache.lookup(key)
    if hit:
        results: dict[str, SimulationResult] = dict(cached)
    else:
        configs = baseline_configs(
            spec.glb_bytes, data_width_bits=spec.data_width_bits
        )
        results = {
            label: simulate(model, config) for label, config in configs.items()
        }
        cache.store(key, results)
    return {
        "request": request.to_params(),
        "baselines": {
            label: {
                "traffic_bytes": result.total_traffic_bytes,
                "cycles": result.total_cycles,
                "mean_utilization": result.mean_utilization,
            }
            for label, result in results.items()
        },
        "cache": {"hit": hit, "key": key},
    }


#: endpoint → handler (the daemon's and the pool's dispatch table).
HANDLERS: dict[str, Callable[[Any], dict[str, Any]]] = {
    "health": handle_health,
    "models": handle_models,
    "stats": handle_stats,
    "plan": handle_plan,
    "explain": handle_explain,
    "simulate": handle_simulate,
}


def execute(endpoint: str, params: Any = None) -> tuple[int, dict[str, Any]]:
    """Dispatch one request; returns ``(http_status, response_envelope)``.

    Module-level (hence picklable) so :class:`ReproServer` can submit it
    to the process pool; every failure mode becomes a structured
    ``repro-serve/1`` error envelope, never a traceback on the wire.
    """
    if endpoint not in ENDPOINTS:
        return 404, error_response(
            endpoint,
            "unknown-endpoint",
            f"unknown endpoint {endpoint!r}; available: {', '.join(ENDPOINTS)}",
        )
    try:
        result = HANDLERS[endpoint](params)
    except ProtocolError as exc:
        return exc.http_status, error_response(endpoint, exc.code, exc.message)
    except Exception as exc:  # pragma: no cover - defensive boundary
        return 500, error_response(
            endpoint, "internal", f"{type(exc).__name__}: {exc}"
        )
    return 200, ok_response(endpoint, result)
