"""Planning-as-a-service: the ``repro serve`` daemon and its plumbing.

The ROADMAP's "planning-as-a-service" item turns the deterministic,
content-addressable Algorithm 1 pipeline into a long-running serving
layer.  The package splits into five modules:

* :mod:`~repro.serve.protocol` — the ``repro-serve/1`` JSON request/
  response envelope (schema-validated in
  :mod:`repro.report.diagnostics`, same style as ``repro-diagnostics/1``).
* :mod:`~repro.serve.handlers` — pure endpoint handlers
  (``handle_plan``, ``handle_explain``, …) mapping validated request
  parameters to response payloads; they are determinism roots for the
  R05x reachability lint and the unit of work fanned out to the
  process pool.
* :mod:`~repro.serve.cache_index` — the shared plan cache's LRU index:
  an append-only journal that survives concurrent writers, plus size-cap
  eviction.
* :mod:`~repro.serve.server` — the ``repro serve`` HTTP daemon
  (stdlib ``ThreadingHTTPServer``) with graceful SIGINT/SIGTERM
  drain-and-flush shutdown.
* :mod:`~repro.serve.loadgen` — the deterministic load generator behind
  ``repro bench serve`` (seeded traffic mix, p50/p99 latency,
  throughput, cache hit-rate → ``BENCH_serve.json``).

This ``__init__`` deliberately imports only the dependency-free modules
(:mod:`~repro.serve.protocol`, :mod:`~repro.serve.cache_index`) so that
:mod:`repro.experiments.cache` can import the index without creating an
import cycle through the server/handler layers.
"""

from __future__ import annotations

from .cache_index import CacheIndex, IndexEntry, PruneResult
from .protocol import (
    ENDPOINTS,
    SERVE_SCHEMA_ID,
    ProtocolError,
    canonical_json,
    error_response,
    ok_response,
)

__all__ = [
    "ENDPOINTS",
    "CacheIndex",
    "IndexEntry",
    "ProtocolError",
    "PruneResult",
    "SERVE_SCHEMA_ID",
    "canonical_json",
    "error_response",
    "ok_response",
]
