"""Step-level, numerical and address-level validation simulators."""

from .engine import (
    LayerSimResult,
    PlanSimResult,
    Step,
    TraceEvent,
    expand_schedule,
    simulate_assignment,
    simulate_plan,
)
from .functional import (
    DramCounter,
    pad_ifmap,
    random_tensors,
    run_layer_direct,
    run_layer_with_plan,
)
from .glb import (
    AllocationError,
    LayerLayout,
    Region,
    Side,
    layout_assignment,
    layout_plan,
)
from .validate import CrossCheck, crosscheck_plan

__all__ = [
    "Step",
    "TraceEvent",
    "LayerSimResult",
    "PlanSimResult",
    "expand_schedule",
    "simulate_assignment",
    "simulate_plan",
    "CrossCheck",
    "crosscheck_plan",
    "DramCounter",
    "run_layer_direct",
    "run_layer_with_plan",
    "random_tensors",
    "pad_ifmap",
    "Region",
    "Side",
    "LayerLayout",
    "AllocationError",
    "layout_assignment",
    "layout_plan",
]
