"""Cross-validation of the closed-form estimators against the simulator.

The paper states its results "have been validated against [Siu et al.,
IISWC'18]"; our equivalent is internal consistency: the step-level
simulator must reproduce the estimators' traffic *exactly* and their
latency within a small relative tolerance (the closed form collapses
per-group maxima that the event model resolves step by step).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer.plan import ExecutionPlan
from .engine import PlanSimResult, simulate_plan


@dataclass(frozen=True)
class CrossCheck:
    """Comparison of estimated vs simulated plan metrics."""

    estimated_accesses_bytes: int
    simulated_accesses_bytes: int
    estimated_latency_cycles: float
    simulated_latency_cycles: float

    @property
    def traffic_matches(self) -> bool:
        return self.estimated_accesses_bytes == self.simulated_accesses_bytes

    @property
    def latency_rel_error(self) -> float:
        if self.simulated_latency_cycles == 0:
            return 0.0
        return (
            abs(self.estimated_latency_cycles - self.simulated_latency_cycles)
            / self.simulated_latency_cycles
        )


def crosscheck_plan(
    plan: ExecutionPlan, *, max_steps_per_layer: int | None = None
) -> tuple[CrossCheck, PlanSimResult]:
    """Simulate a plan and compare against its estimator-derived metrics."""
    sim = simulate_plan(plan, max_steps_per_layer=max_steps_per_layer)
    b = plan.spec.bytes_per_elem
    check = CrossCheck(
        estimated_accesses_bytes=plan.total_accesses_bytes,
        simulated_accesses_bytes=sim.dram_total_elems * b,
        estimated_latency_cycles=plan.total_latency_cycles,
        simulated_latency_cycles=sim.total_cycles,
    )
    return check, sim
