"""Functional (numerical) execution of policy tile schedules.

The estimators count what a policy *would* transfer; this module actually
**executes** each policy's tiling on real tensors with NumPy and checks
two things at once:

1. **functional correctness** — streaming the layer through the policy's
   windows/blocks/channels produces exactly the ofmap a direct
   convolution produces, so the schedules are real algorithms, not just
   bookkeeping;
2. **traffic fidelity** — every off-chip fetch/write performed during
   execution is counted through a :class:`DramCounter`, and the counts
   must equal the plan's declared :class:`~repro.policies.base.Traffic`
   element by element.

Tensor layout: ifmap ``(H, W, C)``; dense filters ``(F#, F_H, F_W, C)``;
depth-wise filters ``(F_H, F_W, C)`` (one 2-D filter per channel);
ofmap ``(O_H, O_W, C_O)``.  All math is float64.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..nn.layer import LayerSpec
from ..policies.base import CandidatePlan
from ..policies.p4 import split_blocks


@dataclass
class DramCounter:
    """Counts off-chip elements moved during functional execution."""

    ifmap_reads: int = 0
    filter_reads: int = 0
    ofmap_writes: int = 0
    ofmap_spills: int = 0

    def matches(self, plan: CandidatePlan) -> bool:
        """Whether the counted traffic equals the plan's declaration."""
        t = plan.traffic
        return (
            self.ifmap_reads == t.ifmap_reads
            and self.filter_reads == t.filter_reads
            and self.ofmap_writes == t.ofmap_writes
            and self.ofmap_spills == t.ofmap_spills
        )

    def mismatch_report(self, plan: CandidatePlan) -> str:
        """Human-readable counted-vs-declared comparison."""
        t = plan.traffic
        return (
            f"ifmap {self.ifmap_reads} vs {t.ifmap_reads}, "
            f"filters {self.filter_reads} vs {t.filter_reads}, "
            f"ofmap {self.ofmap_writes} vs {t.ofmap_writes}, "
            f"spills {self.ofmap_spills} vs {t.ofmap_spills}"
        )


@dataclass
class _Dram:
    """Off-chip memory holding the padded ifmap and the filters."""

    layer: LayerSpec
    padded_ifmap: np.ndarray  #: (padded_h, padded_w, C)
    filters: np.ndarray
    counter: DramCounter = field(default_factory=DramCounter)

    def __post_init__(self) -> None:
        # Touched columns of a full-width sliding-window pass: strided
        # layers with S > F_W skip columns, which fetches must not count
        # (matches Policy.covered_cols).
        layer = self.layer
        self.tcols = _touched(0, layer.out_w, layer.f_w, layer.stride)

    def fetch_rows(self, row0: int, row1: int, channels: slice | None = None) -> np.ndarray:
        """Fetch the touched columns of padded rows [row0, row1)."""
        block = self.padded_ifmap[row0:row1]
        if channels is not None:
            block = block[:, :, channels]
        nchans = block.shape[2] if block.ndim == 3 else 1
        self.counter.ifmap_reads += block.shape[0] * len(self.tcols) * nchans
        return block

    def fetch_grid(
        self,
        rows: Sequence[int],
        cols: Sequence[int],
        channels: slice | None = None,
    ) -> None:
        """Fetch (count) the submatrix at the given row/col index lists."""
        block = self.padded_ifmap[np.ix_(rows, cols)]
        if channels is not None:
            block = block[:, :, channels]
        self.counter.ifmap_reads += block.size

    def fetch_filters(self, selector: Any) -> np.ndarray:
        """Fetch a filter sub-tensor (numpy index into the filter array)."""
        block = self.filters[selector]
        self.counter.filter_reads += block.size
        return block

    def write_ofmap(self, values: np.ndarray) -> None:
        self.counter.ofmap_writes += values.size

    def spill(self, values: np.ndarray) -> None:
        self.counter.ofmap_spills += values.size


def pad_ifmap(layer: LayerSpec, ifmap: np.ndarray) -> np.ndarray:
    """Zero-pad an (H, W, C) ifmap per the layer's padding."""
    p = layer.padding
    return np.pad(ifmap, ((p, p), (p, p), (0, 0)))


def random_tensors(
    layer: LayerSpec, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Random ifmap/filters with the layer's shapes."""
    ifmap = rng.standard_normal((layer.in_h, layer.in_w, layer.in_c))
    if layer.kind.is_depthwise:
        filters = rng.standard_normal((layer.f_h, layer.f_w, layer.in_c))
    else:
        filters = rng.standard_normal(
            (layer.num_filters, layer.f_h, layer.f_w, layer.in_c)
        )
    return ifmap, filters


def run_layer_direct(
    layer: LayerSpec, ifmap: np.ndarray, filters: np.ndarray
) -> np.ndarray:
    """Reference convolution (no tiling)."""
    padded = pad_ifmap(layer, ifmap)
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    s = layer.stride
    for oy in range(layer.out_h):
        for ox in range(layer.out_w):
            window = padded[oy * s : oy * s + layer.f_h, ox * s : ox * s + layer.f_w]
            if layer.kind.is_depthwise:
                out[oy, ox] = np.einsum("hwc,hwc->c", window, filters)
            else:
                out[oy, ox] = np.einsum("hwc,nhwc->n", window, filters)
    return out


# ----------------------------------------------------------------------
# Row-window helpers
# ----------------------------------------------------------------------


def _row_window_plan(layer: LayerSpec) -> list[tuple[int, int, int]]:
    """Per output row: (fetch_start, fetch_end, window_start).

    The sliding window holds ``F_H`` padded rows; step ``i`` fetches the
    rows not already resident from step ``i-1`` (``min(S, F_H)`` of them,
    matching :meth:`Policy.row_step`).
    """
    plan = []
    held_end = 0  # exclusive end of rows currently held
    for oy in range(layer.out_h):
        need0 = oy * layer.stride
        need1 = need0 + layer.f_h
        fetch0 = max(need0, held_end)
        plan.append((fetch0, need1, need0))
        held_end = need1
    return plan


def _fetch_pass(dram: _Dram, layer: LayerSpec, channels: slice | None = None) -> None:
    """Fetch (count) one height-wise pass over the touched ifmap rows.

    Walks the row-window plan so strided layers with ``S > F_H`` fetch only
    the rows the windows actually touch.
    """
    for f0, f1, _ in _row_window_plan(layer):
        dram.fetch_rows(f0, f1, channels=channels)


def _conv_row(
    window: np.ndarray, filters: np.ndarray, layer: LayerSpec
) -> np.ndarray:
    """One ofmap row from an (F_H, padded_w, C?) window.

    ``filters`` is (n, F_H, F_W, C) for dense, (F_H, F_W, C') for DW.
    """
    s = layer.stride
    cols = []
    for ox in range(layer.out_w):
        patch = window[:, ox * s : ox * s + layer.f_w]
        if filters.ndim == 4:
            cols.append(np.einsum("hwc,nhwc->n", patch, filters))
        else:
            cols.append(np.einsum("hwc,hwc->c", patch, filters))
    return np.stack(cols)  # (O_W, n or C')


# ----------------------------------------------------------------------
# Policy executors
# ----------------------------------------------------------------------


def _run_intra(layer: LayerSpec, dram: _Dram) -> np.ndarray:
    _fetch_pass(dram, layer)  # whole (touched) ifmap becomes resident
    resident_filters = dram.fetch_filters(slice(None))
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    s = layer.stride
    for oy in range(layer.out_h):
        window = dram.padded_ifmap[oy * s : oy * s + layer.f_h]
        out[oy] = _conv_row(window, resident_filters, layer)
    dram.write_ofmap(out)
    return out


def _run_p1(layer: LayerSpec, dram: _Dram) -> np.ndarray:
    resident_filters = dram.fetch_filters(slice(None))
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    for oy, (f0, f1, w0) in enumerate(_row_window_plan(layer)):
        dram.fetch_rows(f0, f1)  # rows not already held by the window
        window = dram.padded_ifmap[w0 : w0 + layer.f_h]
        row = _conv_row(window, resident_filters, layer)
        out[oy] = row
        dram.write_ofmap(row)
    return out


def _run_p2(layer: LayerSpec, dram: _Dram) -> np.ndarray:
    _fetch_pass(dram, layer)  # whole (touched) ifmap becomes resident
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    s = layer.stride
    if layer.kind.is_depthwise:
        for c in range(layer.in_c):
            filt = dram.fetch_filters((slice(None), slice(None), slice(c, c + 1)))
            for oy in range(layer.out_h):
                window = dram.padded_ifmap[oy * s : oy * s + layer.f_h, :, c : c + 1]
                out[oy, :, c] = _conv_row(window, filt, layer)[:, 0]
            dram.write_ofmap(out[:, :, c])
    else:
        for n in range(layer.num_filters):
            filt = dram.fetch_filters(slice(n, n + 1))
            for oy in range(layer.out_h):
                window = dram.padded_ifmap[oy * s : oy * s + layer.f_h]
                out[oy, :, n] = _conv_row(window, filt, layer)[:, 0]
            dram.write_ofmap(out[:, :, n])
    return out


def _run_p3(layer: LayerSpec, dram: _Dram) -> np.ndarray:
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    depthwise = layer.kind.is_depthwise
    for c in range(layer.in_c):
        if depthwise:
            filt_channel = dram.fetch_filters(
                (slice(None), slice(None), slice(c, c + 1))
            )  # (F_H, F_W, 1)
        else:
            filt_channel = dram.fetch_filters(
                (slice(None), slice(None), slice(None), slice(c, c + 1))
            )  # (F#, F_H, F_W, 1)
        for oy, (f0, f1, w0) in enumerate(_row_window_plan(layer)):
            dram.fetch_rows(f0, f1, channels=slice(c, c + 1))
            window = dram.padded_ifmap[w0 : w0 + layer.f_h, :, c : c + 1]
            contribution = _conv_row(window, filt_channel, layer)
            if depthwise:
                out[oy, :, c] = contribution[:, 0]
            else:
                out[oy, :, :] += contribution
        if depthwise:
            dram.write_ofmap(out[:, :, c])
    if not depthwise:
        dram.write_ofmap(out)
    return out


def _run_p4(layer: LayerSpec, dram: _Dram, block: int) -> np.ndarray:
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    if layer.kind.is_depthwise:
        start = 0
        for _, size in _expand_blocks(layer.in_c, block):
            chans = slice(start, start + size)
            filt = dram.fetch_filters((slice(None), slice(None), chans))
            for oy, (f0, f1, w0) in enumerate(_row_window_plan(layer)):
                dram.fetch_rows(f0, f1, channels=chans)
                window = dram.padded_ifmap[w0 : w0 + layer.f_h, :, chans]
                out[oy, :, chans] = _conv_row(window, filt, layer)
                dram.write_ofmap(out[oy, :, chans])
            start += size
        return out
    start = 0
    for _, size in _expand_blocks(layer.num_filters, block):
        filt = dram.fetch_filters(slice(start, start + size))
        for oy, (f0, f1, w0) in enumerate(_row_window_plan(layer)):
            dram.fetch_rows(f0, f1)
            window = dram.padded_ifmap[w0 : w0 + layer.f_h]
            out[oy, :, start : start + size] = _conv_row(window, filt, layer)
            dram.write_ofmap(out[oy, :, start : start + size])
        start += size
    return out


def _run_p5(layer: LayerSpec, dram: _Dram, block: int) -> np.ndarray:
    if layer.kind.is_depthwise:
        return _run_p4(layer, dram, block)
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    start = 0
    for _, size in _expand_blocks(layer.num_filters, block):
        filters_slice = slice(start, start + size)
        for c in range(layer.in_c):
            filt_channel = dram.fetch_filters(
                (filters_slice, slice(None), slice(None), slice(c, c + 1))
            )
            for oy, (f0, f1, w0) in enumerate(_row_window_plan(layer)):
                dram.fetch_rows(f0, f1, channels=slice(c, c + 1))
                window = dram.padded_ifmap[w0 : w0 + layer.f_h, :, c : c + 1]
                out[oy, :, filters_slice] += _conv_row(window, filt_channel, layer)
        dram.write_ofmap(out[:, :, filters_slice])
        start += size
    return out


def _touched(start: int, count: int, filt: int, stride: int) -> list[int]:
    """Padded indices one ofmap band of ``count`` outputs touches (1-D)."""
    indices: list[int] = []
    held_end = start * stride
    for r in range(count):
        need0 = (start + r) * stride
        need1 = need0 + filt
        indices.extend(range(max(need0, held_end), need1))
        held_end = need1
    return indices


def _conv_band(
    dram: _Dram,
    layer: LayerSpec,
    filt: np.ndarray,
    band0: int,
    rows: int,
    col0: int,
    cols: int,
    channels: slice,
) -> np.ndarray:
    """Compute one ofmap band (rows × cols) from the padded ifmap."""
    s = layer.stride
    out = np.zeros((rows, cols, filt.shape[0] if filt.ndim == 4 else filt.shape[2]))
    for r in range(rows):
        for c in range(cols):
            oy, ox = band0 + r, col0 + c
            patch = dram.padded_ifmap[
                oy * s : oy * s + layer.f_h, ox * s : ox * s + layer.f_w, channels
            ]
            if filt.ndim == 4:
                out[r, c] = np.einsum("hwc,nhwc->n", patch, filt)
            else:
                out[r, c] = np.einsum("hwc,hwc->c", patch, filt)
    return out


def _run_tiled(layer: LayerSpec, dram: _Dram, plan: CandidatePlan) -> np.ndarray:
    """Band-tiled fallback: row bands × column bands × blocks (Fig. 2a)."""
    out = np.zeros((layer.out_h, layer.out_w, layer.out_c))
    o_t, w_t = plan.tile_shape or (layer.out_h, layer.out_w)
    n_f = plan.block_size or 1
    depthwise = layer.kind.is_depthwise
    blocks = _expand_blocks(layer.in_c if depthwise else layer.num_filters, n_f)
    for band0 in range(0, layer.out_h, o_t):
        rows = min(o_t, layer.out_h - band0)
        trows = _touched(band0, rows, layer.f_h, layer.stride)
        for col0 in range(0, layer.out_w, w_t):
            cols = min(w_t, layer.out_w - col0)
            tcols = _touched(col0, cols, layer.f_w, layer.stride)
            start = 0
            for _, size in blocks:
                if depthwise:
                    chans = slice(start, start + size)
                    dram.fetch_grid(trows, tcols, channels=chans)
                    filt = dram.fetch_filters((slice(None), slice(None), chans))
                    band = _conv_band(
                        dram, layer, filt, band0, rows, col0, cols, chans
                    )
                    out[band0 : band0 + rows, col0 : col0 + cols, chans] = band
                    dram.write_ofmap(band)
                else:
                    filters_slice = slice(start, start + size)
                    for ch in range(layer.in_c):
                        chans = slice(ch, ch + 1)
                        dram.fetch_grid(trows, tcols, channels=chans)
                        filt = dram.fetch_filters(
                            (filters_slice, slice(None), slice(None), chans)
                        )
                        out[
                            band0 : band0 + rows, col0 : col0 + cols, filters_slice
                        ] += _conv_band(
                            dram, layer, filt, band0, rows, col0, cols, chans
                        )
                    dram.write_ofmap(
                        out[band0 : band0 + rows, col0 : col0 + cols, filters_slice]
                    )
                start += size
    return out


def _expand_blocks(total: int, block: int) -> list[tuple[int, int]]:
    """split_blocks flattened to one (count=1, size) entry per block."""
    out = []
    for count, size in split_blocks(total, block):
        out.extend([(1, size)] * count)
    return out


_EXECUTORS = {
    "intra": lambda layer, dram, plan: _run_intra(layer, dram),
    "p1": lambda layer, dram, plan: _run_p1(layer, dram),
    "p2": lambda layer, dram, plan: _run_p2(layer, dram),
    "p3": lambda layer, dram, plan: _run_p3(layer, dram),
    "p4": lambda layer, dram, plan: _run_p4(layer, dram, plan.block_size),
    "p5": lambda layer, dram, plan: _run_p5(layer, dram, plan.block_size),
    "tiled": _run_tiled,
}


def run_layer_with_plan(
    plan: CandidatePlan, ifmap: np.ndarray, filters: np.ndarray
) -> tuple[np.ndarray, DramCounter]:
    """Execute a layer numerically following the plan's policy tiling.

    Returns the computed ofmap and the off-chip traffic counter; callers
    assert the ofmap matches :func:`run_layer_direct` and the counter
    matches ``plan.traffic``.
    """
    layer = plan.layer
    if ifmap.shape != (layer.in_h, layer.in_w, layer.in_c):
        raise ValueError(f"ifmap shape {ifmap.shape} does not match {layer.name}")
    try:
        executor = _EXECUTORS[plan.policy_name]
    except KeyError:
        raise ValueError(f"no functional executor for policy {plan.policy_name!r}")
    dram = _Dram(layer=layer, padded_ifmap=pad_ifmap(layer, ifmap), filters=filters)
    out = executor(layer, dram, plan)
    return out, dram.counter
