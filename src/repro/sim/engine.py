"""Step-level functional simulator for execution plans.

The closed-form estimators (``repro.estimators``) predict traffic and
latency from step-group algebra.  This simulator *executes* a plan: it
expands every step group into individual steps and plays them through a
two-resource discrete-event model —

* a **DMA engine** that owns the off-chip interface (loads and stores are
  serialized on it at the configured bandwidth), and
* a **PE array** computing at the peak MAC rate,

with double buffering (prefetch) deciding whether the DMA may run ahead of
the PE.  Every DRAM transfer is counted (and optionally recorded as a
trace), so the test suite can assert that the estimators' traffic numbers
are *exact* and their latency closed forms agree with the executed
timeline.

Without prefetch the engine enforces strict serialization: a step's load,
compute and store do not overlap.  With prefetch the engine models a
work-conserving off-chip port with an (unbounded) write-back buffer:

* loads chain back to back and have priority, so step *i*'s data is ready
  at the end of the load chain;
* each compute starts once its data is ready and the PE is free;
* each store chains behind its compute and the previous store;
* the port can never finish before its total work
  ``(Σloads + Σstores) / bandwidth`` — write-backs deferred behind loads
  still consume bandwidth, which this conservation bound enforces.

The layer finishes when the PE chain, the store chain and the port-work
bound have all been met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..arch.spec import AcceleratorSpec
from ..analyzer.plan import ExecutionPlan, LayerAssignment, transformed_schedule
from ..estimators.latency import effective_dram_bandwidth
from ..obs import get_tracer, metrics_registry
from ..policies.base import LayerSchedule


@dataclass(frozen=True)
class Step:
    """One expanded streaming step."""

    ifmap: int
    filters: int
    macs: int
    store: int

    @property
    def load(self) -> int:
        return self.ifmap + self.filters


def expand_schedule(schedule: LayerSchedule, max_steps: int | None = None) -> Iterator[Step]:
    """Expand step groups into individual steps (optionally capped)."""
    emitted = 0
    for group in schedule.groups:
        for _ in range(group.count):
            if max_steps is not None and emitted >= max_steps:
                raise ValueError(
                    f"schedule exceeds max_steps={max_steps}; "
                    f"use a smaller layer or raise the cap"
                )
            yield Step(group.ifmap, group.filters, group.macs, group.store)
            emitted += 1


@dataclass
class TraceEvent:
    """One DRAM transaction in the simulated timeline."""

    time: float  #: completion time in cycles
    kind: str  #: "load_ifmap", "load_filters", "load_resident", "store"
    elems: int


@dataclass
class LayerSimResult:
    """Executed timeline of one layer."""

    name: str
    cycles: float
    dram_load_elems: int
    dram_store_elems: int
    compute_busy_cycles: float
    dma_busy_cycles: float
    steps: int

    @property
    def dram_total_elems(self) -> int:
        return self.dram_load_elems + self.dram_store_elems


def simulate_assignment(
    assignment: LayerAssignment,
    spec: AcceleratorSpec,
    *,
    record_trace: list[TraceEvent] | None = None,
    max_steps: int | None = None,
) -> LayerSimResult:
    """Execute one layer's schedule through the two-resource model."""
    plan = assignment.evaluation.plan
    schedule = transformed_schedule(
        plan.schedule, assignment.receives, assignment.donates
    )
    # Flat bandwidth by default; trace-simulated delivered rate when the
    # spec carries a banked DramSpec (mirrors the closed-form estimator).
    bw = effective_dram_bandwidth(schedule, spec, plan.layer)
    rate = spec.macs_per_cycle
    prefetch = plan.prefetch

    load_t = 0.0  # end of the load chain
    pe_t = 0.0  # time the PE array frees up
    store_t = 0.0  # end of the store chain
    loads = 0
    stores = 0
    compute_busy = 0.0
    n_steps = 0

    def trace(kind: str, elems: int, when: float) -> None:
        if record_trace is not None and elems:
            record_trace.append(TraceEvent(when, kind, elems))

    if schedule.resident_load:
        load_t += schedule.resident_load / bw
        trace("load_resident", schedule.resident_load, load_t)
        pe_t = max(pe_t, load_t)

    for step in expand_schedule(schedule, max_steps):
        n_steps += 1
        loads += step.load
        stores += step.store
        if prefetch:
            if step.ifmap:
                load_t += step.ifmap / bw
                trace("load_ifmap", step.ifmap, load_t)
            if step.filters:
                load_t += step.filters / bw
                trace("load_filters", step.filters, load_t)
            pe_t = max(pe_t, load_t) + step.macs / rate
            compute_busy += step.macs / rate
            if step.store:
                store_t = max(store_t, pe_t) + step.store / bw
                trace("store", step.store, store_t)
        else:
            # Strict serialization: load -> compute -> store on one timeline.
            t = max(load_t, pe_t, store_t)
            if step.ifmap:
                t += step.ifmap / bw
                trace("load_ifmap", step.ifmap, t)
            if step.filters:
                t += step.filters / bw
                trace("load_filters", step.filters, t)
            load_t = t
            t += step.macs / rate
            compute_busy += step.macs / rate
            pe_t = t
            if step.store:
                t += step.store / bw
                trace("store", step.store, t)
            store_t = t

    port_work = (loads + stores + schedule.resident_load) / bw
    total = max(load_t, pe_t, store_t, port_work if prefetch else 0.0)
    result = LayerSimResult(
        name=plan.layer.name,
        cycles=total,
        dram_load_elems=loads + schedule.resident_load,
        dram_store_elems=stores,
        compute_busy_cycles=compute_busy,
        dma_busy_cycles=port_work,
        steps=n_steps,
    )
    registry = metrics_registry()
    registry.counter("sim_layers_count").add(1)
    registry.counter("sim_steps_count").add(n_steps)
    registry.counter("sim_dram_load_elems").add(result.dram_load_elems)
    registry.counter("sim_dram_store_elems").add(stores)
    return result


@dataclass
class PlanSimResult:
    """Executed timeline of a whole plan (layers run back to back)."""

    layers: list[LayerSimResult] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(layer.cycles for layer in self.layers)

    @property
    def dram_load_elems(self) -> int:
        return sum(layer.dram_load_elems for layer in self.layers)

    @property
    def dram_store_elems(self) -> int:
        return sum(layer.dram_store_elems for layer in self.layers)

    @property
    def dram_total_elems(self) -> int:
        return self.dram_load_elems + self.dram_store_elems


def simulate_plan(
    plan: ExecutionPlan,
    *,
    record_trace: list[TraceEvent] | None = None,
    max_steps_per_layer: int | None = None,
) -> PlanSimResult:
    """Execute every layer of a plan in order."""
    tracer = get_tracer()
    result = PlanSimResult()
    with tracer.start(
        "simulate_plan", model=plan.model.name, scheme=plan.scheme
    ) as plan_span:
        for assignment in plan.assignments:
            with tracer.start(
                "sim_layer", layer=assignment.layer.name, policy=assignment.label
            ) as layer_span:
                layer_result = simulate_assignment(
                    assignment,
                    plan.spec,
                    record_trace=record_trace,
                    max_steps=max_steps_per_layer,
                )
                layer_span.set_attr("steps_count", layer_result.steps)
                layer_span.set_attr("cycles", layer_result.cycles)
            result.layers.append(layer_result)
        plan_span.set_attr("total_cycles", result.total_cycles)
    return result
