"""Address-level layout of execution plans in the global buffer.

The planner reasons in aggregate byte counts; this module proves those
plans are *realizable* by assigning every tile an actual address range in
the GLB, layer by layer, and checking the constraints aggregate counting
cannot see:

* double-buffered (prefetch) tiles need two disjoint slots;
* a donated ofmap must survive the layer transition, so the receiver's
  resident-ifmap region is **the same address range** the producer wrote;
* a layer that both receives and donates needs the incoming region, the
  outgoing region and its streaming tiles to coexist without overlap.

Persistent (donated) regions ping-pong between the two ends of the
buffer: a layer whose incoming region sits at the top places its outgoing
region at the bottom and vice versa, leaving one contiguous middle gap of
exactly ``GLB − incoming − outgoing`` bytes for the streaming tiles —
the same bound the analyzer's feasibility check uses, so every plan the
analyzer accepts lays out without fragmentation (asserted by the tests).

The resulting :class:`LayerLayout` is the kind of address map a code
generator (the paper's TVM future work) would emit alongside the policy
schedule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analyzer.plan import ExecutionPlan, LayerAssignment


class Side(enum.Enum):
    """Which end of the GLB a persistent region occupies."""

    BOTTOM = "bottom"
    TOP = "top"

    @property
    def opposite(self) -> "Side":
        return Side.TOP if self is Side.BOTTOM else Side.BOTTOM


@dataclass(frozen=True)
class Region:
    """A named address range in the GLB (half-open, bytes)."""

    name: str
    offset: int
    size: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.size < 0:
            raise ValueError(f"region {self.name}: negative offset/size")

    @property
    def end(self) -> int:
        return self.offset + self.size

    def overlaps(self, other: "Region") -> bool:
        """Whether two non-empty regions share any byte."""
        return (
            self.size > 0
            and other.size > 0
            and self.offset < other.end
            and other.offset < self.end
        )


@dataclass(frozen=True)
class LayerLayout:
    """The address map of one layer's execution."""

    layer_name: str
    policy: str
    regions: tuple[Region, ...]
    #: Address/side of the ofmap region handed to the next layer
    #: (None if the layer does not donate).
    donated_offset: int | None
    donated_side: Side | None

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        for region in self.regions:
            if region.name == name:
                return region
        raise KeyError(f"{self.layer_name}: no region {name!r}")

    @property
    def used_bytes(self) -> int:
        return sum(r.size for r in self.regions)


class AllocationError(RuntimeError):
    """A plan could not be laid out in the GLB."""


def _tile_regions(assignment: LayerAssignment, bytes_per_elem: int) -> list[tuple[str, int]]:
    """(name, size) pairs for the streaming tiles, double-buffered if +p."""
    plan = assignment.evaluation.plan
    copies = 2 if plan.prefetch else 1
    pairs: list[tuple[str, int]] = []
    for tensor, elems in (
        ("ifmap", plan.tiles.ifmap),
        ("filters", plan.tiles.filters),
        ("ofmap", plan.tiles.ofmap),
    ):
        if tensor == "ifmap" and assignment.receives:
            continue  # served by the donated (incoming) region
        if tensor == "ofmap" and assignment.donates:
            continue  # served by the outgoing region
        if elems == 0:
            continue
        for copy in range(copies):
            suffix = f"[{copy}]" if copies > 1 else ""
            pairs.append((f"{tensor}{suffix}", elems * bytes_per_elem))
    return pairs


def layout_assignment(
    assignment: LayerAssignment,
    glb_bytes: int,
    bytes_per_elem: int,
    incoming_offset: int | None = None,
    incoming_side: Side | None = None,
) -> LayerLayout:
    """Assign addresses for one layer.

    ``incoming_offset``/``incoming_side`` locate the previous layer's
    donated ofmap (this layer's resident ifmap); required iff the
    assignment ``receives``.
    """
    layer = assignment.layer
    regions: list[Region] = []

    low = 0  # first free byte above the bottom persistent region
    high = glb_bytes  # first used byte of the top persistent region

    if assignment.receives:
        if incoming_offset is None or incoming_side is None:
            raise AllocationError(
                f"{layer.name}: receives a donated ifmap but no incoming region"
            )
        size = layer.ifmap_elems * bytes_per_elem
        regions.append(Region("ifmap(donated)", incoming_offset, size))
        if incoming_side is Side.BOTTOM:
            low = max(low, incoming_offset + size)
        else:
            high = min(high, incoming_offset)

    donated_offset: int | None = None
    donated_side: Side | None = None
    if assignment.donates:
        size = layer.ofmap_elems * bytes_per_elem
        donated_side = (
            incoming_side.opposite if assignment.receives else Side.TOP
        )
        if donated_side is Side.TOP:
            donated_offset = high - size
            high = donated_offset
        else:
            donated_offset = low
            low += size
        if low > high:
            raise AllocationError(
                f"{layer.name}: persistent regions exceed the GLB "
                f"({glb_bytes} B)"
            )
        regions.append(Region("ofmap(donated)", donated_offset, size))

    cursor = low
    for name, size in _tile_regions(assignment, bytes_per_elem):
        if cursor + size > high:
            raise AllocationError(
                f"{layer.name}: tile {name} ({size} B at {cursor}) overflows "
                f"the free gap [{low}, {high})"
            )
        regions.append(Region(name, cursor, size))
        cursor += size

    # Defensive overlap check (the construction should already be disjoint).
    for i, a in enumerate(regions):
        for b in regions[i + 1 :]:
            if a.overlaps(b):
                raise AllocationError(
                    f"{layer.name}: regions {a.name} and {b.name} overlap"
                )

    return LayerLayout(
        layer_name=layer.name,
        policy=assignment.label,
        regions=tuple(regions),
        donated_offset=donated_offset,
        donated_side=donated_side,
    )


def layout_plan(plan: ExecutionPlan) -> list[LayerLayout]:
    """Assign addresses for a whole plan, threading donated regions.

    Raises :class:`AllocationError` if any layer cannot be laid out —
    which would indicate the aggregate feasibility checks missed a
    packing constraint (the test suite asserts this never happens for
    analyzer-produced plans).
    """
    layouts: list[LayerLayout] = []
    incoming_offset: int | None = None
    incoming_side: Side | None = None
    b = plan.spec.bytes_per_elem
    for assignment in plan.assignments:
        layout = layout_assignment(
            assignment, plan.spec.glb_bytes, b, incoming_offset, incoming_side
        )
        layouts.append(layout)
        incoming_offset = layout.donated_offset
        incoming_side = layout.donated_side
    return layouts
