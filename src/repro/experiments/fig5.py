"""Figure 5: off-chip memory access volume per scheme.

For every model and GLB size, the five bars of the paper: the three
fixed-partition baselines (``sa_25_75``, ``sa_50_50``, ``sa_75_25``) and
the proposed ``Hom`` and ``Het`` schemes (accesses objective), in MB.

Headline paper numbers for the 64 kB configuration: ``Hom`` reduces
accesses by 32.2 % (MnasNet) to 74.5 % (ResNet18) and ``Het`` by 43.2 %
(MobileNetV2) to 79.8 % (ResNet18); ``Het`` stays nearly flat across
buffer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analyzer import Objective
from ..arch.units import to_mib
from ..report.table import Table
from .common import GLB_SIZES_KB, all_model_names, baseline_results, het_plan, hom_plan

if TYPE_CHECKING:
    from ..report.chart import BarChart

SCHEMES = ("sa_25_75", "sa_50_50", "sa_75_25", "hom", "het")

#: Paper-reported Het reduction extremes at 64 kB (model -> percent).
PAPER_HET_REDUCTION_64K = {"ResNet18": 79.8, "MobileNetV2": 43.2}
#: Paper-reported Hom reduction extremes at 64 kB.
PAPER_HOM_REDUCTION_64K = {"ResNet18": 74.5, "MnasNet": 32.2}


@dataclass(frozen=True)
class Fig5Cell:
    model: str
    glb_kb: int
    accesses_mib: dict[str, float]  #: scheme -> MB

    @property
    def best_baseline(self) -> str:
        return min(
            (s for s in SCHEMES if s.startswith("sa_")),
            key=lambda s: self.accesses_mib[s],
        )

    def reduction_vs_best_baseline(self, scheme: str) -> float:
        """Percent reduction of ``scheme`` vs the best baseline partition."""
        base = self.accesses_mib[self.best_baseline]
        return 100.0 * (1.0 - self.accesses_mib[scheme] / base)


def run(
    models: tuple[str, ...] | None = None,
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
    data_width_bits: int = 8,
) -> list[Fig5Cell]:
    """Regenerate the Figure 5 data grid."""
    cells = []
    for name in models or all_model_names():
        for glb_kb in glb_sizes_kb:
            values: dict[str, float] = {}
            for label, result in baseline_results(name, glb_kb, data_width_bits).items():
                values[label] = to_mib(result.total_traffic_bytes)
            values["hom"] = to_mib(
                hom_plan(name, glb_kb, Objective.ACCESSES, data_width_bits).total_accesses_bytes
            )
            values["het"] = to_mib(
                het_plan(name, glb_kb, Objective.ACCESSES, data_width_bits).total_accesses_bytes
            )
            cells.append(Fig5Cell(model=name, glb_kb=glb_kb, accesses_mib=values))
    return cells


def to_table(cells: list[Fig5Cell]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 5: off-chip access volume (MB)",
        headers=["Model", "GLB kB", *SCHEMES, "Het red. vs best sa_*"],
    )
    for c in cells:
        table.add_row(
            c.model,
            c.glb_kb,
            *(round(c.accesses_mib[s], 2) for s in SCHEMES),
            f"{c.reduction_vs_best_baseline('het'):.1f}%",
        )
    return table


def to_chart(cells: list[Fig5Cell], glb_kb: int = 64) -> "BarChart":
    """Grouped bar chart of one GLB column (terminal rendering of Fig. 5)."""
    from ..report.chart import bar_chart

    subset = [c for c in cells if c.glb_kb == glb_kb]
    groups = [c.model for c in subset]
    series = {
        scheme: [c.accesses_mib[scheme] for c in subset] for scheme in SCHEMES
    }
    return bar_chart(
        f"Figure 5 @ {glb_kb} kB: off-chip accesses (MB)", groups, series
    )
