"""Table 3: maximum memory requirements of the single-transfer policies.

For every network, the worst-case (over layers) residency of the policies
that transfer every element exactly once: intra-layer reuse and Policies
1–3, in kB at 8-bit elements.

Reproduction note (recorded in EXPERIMENTS.md): reverse-engineering the
published numbers shows the paper's *Policy 1* and *Policy 3* columns are
swapped relative to its §3.2 definitions — e.g. the published "P1" value
of 788.6 kB for ResNet18/GoogLeNet equals the §3.2 *Policy 3* residency of
their 7×7 stem convolutions (window ``F_H·I_W`` + one filter channel
``F_H·F_W·F#`` + full ofmap), while the published "P3" values match the
§3.2 Policy 1 residency.  We implement the §3.2 text and compare against
the paper with the swap applied.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.units import to_kib
from ..nn.zoo import get_model
from ..policies.registry import NAMED_POLICIES
from ..report.table import Table
from .common import all_model_names

#: Published Table 3 values in kB, keyed by the paper's column labels.
PAPER_TABLE3 = {
    "EfficientNetB0": {"intra": 1491.9, "p1": 1176.2, "p2": 1201.0, "p3": 1252.3},
    "GoogLeNet": {"intra": 2051.0, "p1": 788.6, "p2": 199.7, "p3": 2051.0},
    "MnasNet": {"intra": 1252.3, "p1": 588.2, "p2": 591.5, "p3": 1252.3},
    "MobileNet": {"intra": 1178.0, "p1": 784.2, "p2": 801.7, "p3": 1038.0},
    "MobileNetV2": {"intra": 1491.9, "p1": 1176.2, "p2": 1201.0, "p3": 1252.3},
    "ResNet18": {"intra": 2353.0, "p1": 788.6, "p2": 199.7, "p3": 2318.0},
}

#: Our policy name -> the paper's Table 3 column it corresponds to.
COLUMN_MAP = {"intra": "intra", "p1": "p3", "p2": "p2", "p3": "p1"}

SINGLE_TRANSFER = ("intra", "p1", "p2", "p3")


@dataclass(frozen=True)
class Table3Row:
    network: str
    policy: str  #: §3.2 policy name as implemented
    max_kib: float  #: measured worst-case residency
    argmax_layer: str  #: which layer needs it
    paper_kib: float | None  #: published value (swap-corrected column)


def run() -> list[Table3Row]:
    """Regenerate Table 3 with an unconstrained budget."""
    unconstrained = 1 << 62
    policies = {p.name: p for p in NAMED_POLICIES}
    rows: list[Table3Row] = []
    for name in all_model_names():
        model = get_model(name)
        for policy_name in SINGLE_TRANSFER:
            policy = policies[policy_name]
            best = 0
            arg = ""
            for layer in model.layers:
                plan = policy.plan(layer, unconstrained, prefetch=False)
                if plan is not None and plan.tiles.total > best:
                    best, arg = plan.tiles.total, layer.name
            paper = PAPER_TABLE3[name].get(COLUMN_MAP[policy_name])
            rows.append(
                Table3Row(
                    network=name,
                    policy=policy_name,
                    max_kib=to_kib(best),
                    argmax_layer=arg,
                    paper_kib=paper,
                )
            )
    return rows


def to_table(rows: list[Table3Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Table 3: max memory (kB) of single-transfer policies "
        "(paper column-swap corrected)",
        headers=["Network", "Policy", "Measured kB", "Paper kB", "Worst layer"],
    )
    for r in rows:
        table.add_row(
            r.network,
            r.policy,
            round(r.max_kib, 1),
            r.paper_kib if r.paper_kib is not None else "-",
            r.argmax_layer,
        )
    return table
