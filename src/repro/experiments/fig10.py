"""Figure 10: effect of enabling prefetching (MobileNet).

For each buffer size, the accesses and latency change of the
latency-objective heterogeneous scheme with prefetching enabled versus the
same scheme with prefetching disabled, plus the prefetch coverage (share
of layers running a ``+p`` policy).

Paper headlines: ~15 % latency benefit for most configurations; at 64 kB
the benefit costs ~35 % more accesses; coverage is 93 % at 64 kB and 100 %
from 256 kB up.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.units import reduction_pct
from ..report.table import Table
from .common import GLB_SIZES_KB, het_plan


@dataclass(frozen=True)
class Fig10Row:
    model: str
    glb_kb: int
    accesses_benefit_pct: float  #: negative = penalty
    latency_benefit_pct: float
    prefetch_coverage: float


def run(
    model_name: str = "MobileNet",
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
    objective: Objective = Objective.LATENCY,
) -> list[Fig10Row]:
    """Regenerate the Figure 10 comparison."""
    rows = []
    for glb_kb in glb_sizes_kb:
        with_pf = het_plan(model_name, glb_kb, objective, allow_prefetch=True)
        without_pf = het_plan(model_name, glb_kb, objective, allow_prefetch=False)
        rows.append(
            Fig10Row(
                model=model_name,
                glb_kb=glb_kb,
                accesses_benefit_pct=reduction_pct(
                    with_pf.total_accesses_bytes, without_pf.total_accesses_bytes
                ),
                latency_benefit_pct=reduction_pct(
                    with_pf.total_latency_cycles, without_pf.total_latency_cycles
                ),
                prefetch_coverage=with_pf.prefetch_coverage,
            )
        )
    return rows


def to_table(rows: list[Fig10Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 10: prefetching on vs off (MobileNet, Het_l)",
        headers=["GLB kB", "Accesses benefit", "Latency benefit", "Coverage"],
    )
    for r in rows:
        table.add_row(
            r.glb_kb,
            f"{r.accesses_benefit_pct:+.1f}%",
            f"{r.latency_benefit_pct:+.1f}%",
            f"{r.prefetch_coverage:.0%}",
        )
    return table
