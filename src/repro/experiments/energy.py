"""Energy extension experiment: what the access reductions buy in joules.

Not a paper artifact — the paper stops at access counts but motivates
them entirely through energy ("off-chip transfers cost 10–100× a local
computation", §2.3).  This experiment converts the Fig. 5 comparison into
energy using the default cost model and reports the proposed scheme's
energy reduction per model and buffer size.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..energy import DEFAULT_ENERGY_MODEL, EnergyModel, baseline_energy, plan_energy
from ..report.table import Table
from .common import GLB_SIZES_KB, all_model_names, baseline_results, het_plan


@dataclass(frozen=True)
class EnergyCell:
    model: str
    glb_kb: int
    baseline_uj: float  #: best (lowest-energy) baseline partition
    het_uj: float
    het_dram_share: float

    @property
    def reduction_pct(self) -> float:
        return 100.0 * (1.0 - self.het_uj / self.baseline_uj)


def run(
    models: tuple[str, ...] | None = None,
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
    energy_model: EnergyModel = DEFAULT_ENERGY_MODEL,
) -> list[EnergyCell]:
    """Energy comparison grid (Het accesses-objective vs best baseline)."""
    cells = []
    for name in models or all_model_names():
        for glb_kb in glb_sizes_kb:
            base = min(
                baseline_energy(result, energy_model).total_uj
                for result in baseline_results(name, glb_kb).values()
            )
            breakdown = plan_energy(
                het_plan(name, glb_kb, Objective.ACCESSES), energy_model
            )
            cells.append(
                EnergyCell(
                    model=name,
                    glb_kb=glb_kb,
                    baseline_uj=base,
                    het_uj=breakdown.total_uj,
                    het_dram_share=breakdown.dram_share,
                )
            )
    return cells


def to_table(cells: list[EnergyCell]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Energy extension: inference energy (µJ), Het vs best baseline",
        headers=["Model", "GLB kB", "baseline µJ", "Het µJ", "reduction", "DRAM share"],
    )
    for c in cells:
        table.add_row(
            c.model,
            c.glb_kb,
            round(c.baseline_uj, 1),
            round(c.het_uj, 1),
            f"{c.reduction_pct:.1f}%",
            f"{c.het_dram_share:.0%}",
        )
    return table
