"""Figure 7: Het-over-Hom benefit across data widths (MobileNetV2).

The paper shows the heterogeneous scheme pulls further ahead of the best
homogeneous scheme as the data width grows (more pressure on the GLB):
69 % fewer accesses at 32-bit/64 kB and 52 % at 32-bit/128 kB, fading for
larger buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.spec import PAPER_DATA_WIDTHS
from ..arch.units import reduction_pct
from ..report.table import Table
from .common import GLB_SIZES_KB, het_plan, hom_plan

#: Paper-reported Het-vs-Hom reductions at 32-bit.
PAPER_32BIT_REDUCTION = {64: 69.0, 128: 52.0}


@dataclass(frozen=True)
class Fig7Cell:
    model: str
    data_width_bits: int
    glb_kb: int
    hom_accesses_bytes: int
    het_accesses_bytes: int

    @property
    def het_benefit_pct(self) -> float:
        """Percent access reduction of Het relative to Hom."""
        return reduction_pct(self.het_accesses_bytes, self.hom_accesses_bytes)


def run(
    model_name: str = "MobileNetV2",
    data_widths: tuple[int, ...] = PAPER_DATA_WIDTHS,
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
) -> list[Fig7Cell]:
    """Regenerate the Figure 7 sweep."""
    cells = []
    for bits in data_widths:
        for glb_kb in glb_sizes_kb:
            hom = hom_plan(model_name, glb_kb, Objective.ACCESSES, bits)
            het = het_plan(model_name, glb_kb, Objective.ACCESSES, bits)
            cells.append(
                Fig7Cell(
                    model=model_name,
                    data_width_bits=bits,
                    glb_kb=glb_kb,
                    hom_accesses_bytes=hom.total_accesses_bytes,
                    het_accesses_bytes=het.total_accesses_bytes,
                )
            )
    return cells


def to_table(cells: list[Fig7Cell]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 7: Het benefit over Hom vs data width (MobileNetV2)",
        headers=["Width", "GLB kB", "Hom MB", "Het MB", "Het benefit"],
    )
    for c in cells:
        table.add_row(
            f"{c.data_width_bits}-bit",
            c.glb_kb,
            round(c.hom_accesses_bytes / 2**20, 2),
            round(c.het_accesses_bytes / 2**20, 2),
            f"{c.het_benefit_pct:.1f}%",
        )
    return table
