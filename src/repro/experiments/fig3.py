"""Figure 3: per-layer memory breakdown of ResNet18.

The stacked bars of the paper: for each of the 21 layers, the kB needed by
the ifmap, filters and ofmap.  The trend the paper highlights — early
layers dominated by feature maps, late layers by filters — is asserted by
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.units import to_kib
from ..nn.stats import model_breakdown
from ..nn.zoo import get_model
from ..report.table import Table
from .common import spec_for


@dataclass(frozen=True)
class Fig3Row:
    index: int
    layer: str
    kind: str
    ifmap_kib: float
    filter_kib: float
    ofmap_kib: float

    @property
    def total_kib(self) -> float:
        return self.ifmap_kib + self.filter_kib + self.ofmap_kib


def run(model_name: str = "ResNet18", glb_kb: int = 64) -> list[Fig3Row]:
    """Regenerate the Figure 3 breakdown (any zoo model)."""
    model = get_model(model_name)
    spec = spec_for(glb_kb)
    rows = []
    for i, b in enumerate(model_breakdown(model, spec), start=1):
        rows.append(
            Fig3Row(
                index=i,
                layer=b.name,
                kind=b.kind.value,
                ifmap_kib=to_kib(b.ifmap_bytes),
                filter_kib=to_kib(b.filter_bytes),
                ofmap_kib=to_kib(b.ofmap_bytes),
            )
        )
    return rows


def to_table(rows: list[Fig3Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 3: ResNet18 per-layer memory breakdown (kB)",
        headers=["L", "Layer", "Kind", "ifmap", "filter", "ofmap", "total"],
    )
    for r in rows:
        table.add_row(
            r.index,
            r.layer,
            r.kind,
            round(r.ifmap_kib, 1),
            round(r.filter_kib, 1),
            round(r.ofmap_kib, 1),
            round(r.total_kib, 1),
        )
    return table
