"""Input-resolution sweep (extension).

The paper fixes 224×224 inputs; edge deployments commonly trade input
resolution for cost.  This experiment sweeps the input size for one
model at a fixed GLB and reports how the heterogeneous scheme's traffic,
latency and policy mix respond — feature-map footprints scale with
resolution while filters do not, so the policy mix shifts toward the
filter-resident policies (P1/P4) at low resolutions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..nn.zoo import get_model
from ..report.table import Table
from .common import cached_het_plan, spec_for

#: Typical edge deployment resolutions.
DEFAULT_RESOLUTIONS = (128, 160, 192, 224, 256)


@dataclass(frozen=True)
class ResolutionRow:
    model: str
    input_size: int
    glb_kb: int
    total_macs: int
    accesses_bytes: int
    latency_cycles: float
    policies: tuple[str, ...]


def run(
    model_name: str = "MobileNetV2",
    resolutions: tuple[int, ...] = DEFAULT_RESOLUTIONS,
    glb_kb: int = 64,
    objective: Objective = Objective.ACCESSES,
) -> list[ResolutionRow]:
    """Sweep the input resolution at a fixed GLB size."""
    rows = []
    for size in resolutions:
        model = get_model(model_name, input_size=size)
        plan = cached_het_plan(model, spec_for(glb_kb), objective)
        rows.append(
            ResolutionRow(
                model=model_name,
                input_size=size,
                glb_kb=glb_kb,
                total_macs=model.total_macs,
                accesses_bytes=plan.total_accesses_bytes,
                latency_cycles=plan.total_latency_cycles,
                policies=plan.policy_families_used,
            )
        )
    return rows


def to_table(rows: list[ResolutionRow]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title=f"Resolution sweep: {rows[0].model} @ {rows[0].glb_kb} kB (Het)",
        headers=["Input", "GMACs", "Accesses MB", "Latency (cyc)", "Policies"],
    )
    for r in rows:
        table.add_row(
            f"{r.input_size}x{r.input_size}",
            round(r.total_macs / 1e9, 3),
            round(r.accesses_bytes / 2**20, 2),
            int(r.latency_cycles),
            ", ".join(r.policies),
        )
    return table
