"""Figure 6: heterogeneous-scheme memory breakdown for ResNet18 at 64 kB.

For every layer of ResNet18, the GLB bytes the chosen policy allocates to
each data type, the policy label (``p1``..``p5``, ``+p`` when prefetching)
and the comparison against a 50-50 static partition — the figure the paper
uses to show that fixed partitions cannot track per-layer demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.units import to_kib
from ..report.table import Table
from .common import het_plan


@dataclass(frozen=True)
class Fig6Row:
    index: int
    layer: str
    label: str  #: policy label, e.g. "p2+p"
    ifmap_kib: float
    filter_kib: float
    ofmap_kib: float
    #: Factor applied for double buffering (2 with prefetch else 1).
    prefetch_factor: int

    @property
    def total_kib(self) -> float:
        return self.prefetch_factor * (self.ifmap_kib + self.filter_kib + self.ofmap_kib)

    def exceeds_static_half(self, glb_kb: int, share: float = 0.5) -> dict[str, bool]:
        """Which data types overflow a static ``share`` partition."""
        half = glb_kb * share
        return {
            "ifmap": self.ifmap_kib > half,
            "filter": self.filter_kib > half,
            "ofmap": self.ofmap_kib > half,
        }


def run(model_name: str = "ResNet18", glb_kb: int = 64) -> list[Fig6Row]:
    """Regenerate the Figure 6 per-layer allocation."""
    plan = het_plan(model_name, glb_kb, Objective.ACCESSES)
    rows = []
    for i, a in enumerate(plan.assignments, start=1):
        tiles = a.evaluation.plan.tiles
        rows.append(
            Fig6Row(
                index=i,
                layer=a.layer.name,
                label=a.label,
                ifmap_kib=to_kib(tiles.ifmap * plan.spec.bytes_per_elem),
                filter_kib=to_kib(tiles.filters * plan.spec.bytes_per_elem),
                ofmap_kib=to_kib(tiles.ofmap * plan.spec.bytes_per_elem),
                prefetch_factor=2 if a.prefetch else 1,
            )
        )
    return rows


def to_table(rows: list[Fig6Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 6: Het memory breakdown, ResNet18 @ 64 kB",
        headers=["L", "Layer", "Policy", "ifmap kB", "filter kB", "ofmap kB", "total kB"],
    )
    for r in rows:
        table.add_row(
            r.index,
            r.layer,
            r.label,
            round(r.ifmap_kib, 1),
            round(r.filter_kib, 1),
            round(r.ofmap_kib, 1),
            round(r.total_kib, 1),
        )
    return table
