"""Optimality-gap experiment (extension): Het vs communication lower bounds.

For every model and GLB size, compare the heterogeneous plan's off-chip
traffic against the layer-by-layer communication lower bound.  The
headline finding: at 8-bit the heterogeneous scheme sits within a few
percent of the bound at *every* buffer size — the flexibility argument of
the paper, made quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..estimators.bounds import model_bound, model_bound_interlayer, optimality_gap
from ..nn.zoo import get_model
from ..report.table import Table
from .common import all_model_names, het_plan, spec_for


@dataclass(frozen=True)
class BoundsRow:
    model: str
    glb_kb: int
    het_mib: float
    bound_mib: float
    gap_pct: float
    il_het_mib: float
    il_bound_mib: float
    il_gap_pct: float


def run(
    models: tuple[str, ...] | None = None,
    glb_sizes_kb: tuple[int, ...] = (64, 256, 1024),
) -> list[BoundsRow]:
    """Measure the optimality gaps."""
    rows = []
    for name in models or all_model_names():
        for glb_kb in glb_sizes_kb:
            spec = spec_for(glb_kb)
            plan = het_plan(name, glb_kb, Objective.ACCESSES)
            gap = optimality_gap(plan)
            il_plan = het_plan(name, glb_kb, Objective.ACCESSES, interlayer=True)
            il_gap = optimality_gap(il_plan, interlayer=True)
            rows.append(
                BoundsRow(
                    model=name,
                    glb_kb=glb_kb,
                    het_mib=plan.total_accesses_bytes / 2**20,
                    bound_mib=model_bound(get_model(name), spec) / 2**20,
                    gap_pct=gap.gap_pct,
                    il_het_mib=il_plan.total_accesses_bytes / 2**20,
                    il_bound_mib=model_bound_interlayer(get_model(name), spec) / 2**20,
                    il_gap_pct=il_gap.gap_pct,
                )
            )
    return rows


def to_table(rows: list[BoundsRow]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Optimality gap: Het traffic vs communication lower bound",
        headers=[
            "Model",
            "GLB kB",
            "Het MB",
            "bound MB",
            "gap",
            "Het+IL MB",
            "IL bound MB",
            "IL gap",
        ],
    )
    for r in rows:
        table.add_row(
            r.model,
            r.glb_kb,
            round(r.het_mib, 2),
            round(r.bound_mib, 2),
            f"{r.gap_pct:+.1f}%",
            round(r.il_het_mib, 2),
            round(r.il_bound_mib, 2),
            f"{r.il_gap_pct:+.1f}%",
        )
    return table
