"""Design-space sweep utilities.

The paper evaluates five GLB sizes at fixed bandwidth and PE count; these
helpers generalize that into arbitrary one-dimensional sweeps so users
can answer sizing questions ("smallest GLB within x % of the 1 MB
accesses", "when does bandwidth stop mattering for latency").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from ..analyzer import (
    ExecutionPlan,
    Objective,
    SweepPlanner,
    plan_heterogeneous,
)
from ..arch.spec import AcceleratorSpec
from ..arch.units import to_kib, to_mib
from ..nn.model import Model
from ..report.table import Table, series_table

#: ``plan_heterogeneous`` kwargs :class:`~repro.analyzer.SweepPlanner` can
#: reproduce exactly; any other kwarg keeps a sweep on the per-point path.
_DELTA_KWARGS = frozenset({"allow_prefetch", "verify"})


@dataclass(frozen=True)
class SweepPoint:
    """One point of a 1-D design-space sweep."""

    value: float  #: the swept parameter's value
    accesses_bytes: int
    latency_cycles: float
    max_memory_bytes: int
    policies: tuple[str, ...]


def _point(value: float, plan: ExecutionPlan) -> SweepPoint:
    return SweepPoint(
        value=value,
        accesses_bytes=plan.total_accesses_bytes,
        latency_cycles=plan.total_latency_cycles,
        max_memory_bytes=plan.max_memory_bytes,
        policies=plan.policy_families_used,
    )


def glb_sweep(
    model: Model,
    sizes_bytes: Sequence[int],
    objective: Objective = Objective.ACCESSES,
    base_spec: AcceleratorSpec | None = None,
    **plan_kwargs,
) -> list[SweepPoint]:
    """Sweep the GLB capacity.

    Successive sizes re-plan only the layers whose capacity-check outcome
    can flip (see :class:`~repro.analyzer.SweepPlanner`); plans are
    byte-identical to calling :func:`~repro.analyzer.plan_heterogeneous`
    per size.  Kwargs the delta planner cannot reproduce (``interlayer``)
    keep the per-point path.
    """
    spec = base_spec or AcceleratorSpec()
    if not set(plan_kwargs) <= _DELTA_KWARGS:
        return [
            _point(
                size,
                plan_heterogeneous(
                    model, spec.with_glb(size), objective, **plan_kwargs
                ),
            )
            for size in sizes_bytes
        ]
    planner = SweepPlanner(model, objective, **plan_kwargs)
    return [_point(size, planner.plan(spec.with_glb(size))) for size in sizes_bytes]


def bandwidth_sweep(
    model: Model,
    bandwidths_elems_per_cycle: Sequence[float],
    objective: Objective = Objective.LATENCY,
    base_spec: AcceleratorSpec | None = None,
    **plan_kwargs,
) -> list[SweepPoint]:
    """Sweep the off-chip bandwidth (latency objective by default).

    Bandwidth is *not* a GLB move, so the delta planner invalidates every
    layer at every point — this sweep exercises (and the sweep-parity test
    asserts) the full-invalidation side of the delta invariant.
    """
    spec = base_spec or AcceleratorSpec()
    if not set(plan_kwargs) <= _DELTA_KWARGS:
        return [
            _point(
                bandwidth,
                plan_heterogeneous(
                    model,
                    replace(spec, dram_bandwidth_elems_per_cycle=bandwidth),
                    objective,
                    **plan_kwargs,
                ),
            )
            for bandwidth in bandwidths_elems_per_cycle
        ]
    planner = SweepPlanner(model, objective, **plan_kwargs)
    return [
        _point(
            bandwidth,
            planner.plan(replace(spec, dram_bandwidth_elems_per_cycle=bandwidth)),
        )
        for bandwidth in bandwidths_elems_per_cycle
    ]


def smallest_glb_within(
    model: Model,
    target_pct: float,
    sizes_bytes: Sequence[int],
    objective: Objective = Objective.ACCESSES,
    **kwargs,
) -> tuple[int, list[SweepPoint]]:
    """Smallest GLB whose accesses are within ``target_pct`` % of the
    largest swept size's accesses.  Returns (size, full sweep)."""
    if not sizes_bytes:
        raise ValueError("need at least one GLB size")
    points = glb_sweep(model, sorted(sizes_bytes), objective, **kwargs)
    reference = points[-1].accesses_bytes
    threshold = reference * (1.0 + target_pct / 100.0)
    for point in points:
        if point.accesses_bytes <= threshold:
            return int(point.value), points
    return int(points[-1].value), points


def sweep_table(title: str, parameter: str, points: list[SweepPoint]) -> Table:
    """Render a sweep as a table."""
    return series_table(
        title,
        parameter,
        [p.value for p in points],
        {
            "accesses (MB)": [round(to_mib(p.accesses_bytes), 2) for p in points],
            "latency (cycles)": [int(p.latency_cycles) for p in points],
            "peak mem (kB)": [round(to_kib(p.max_memory_bytes), 1) for p in points],
        },
    )
