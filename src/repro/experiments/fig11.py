"""Figure 11: effect of enabling inter-layer reuse (MnasNet).

For each buffer size, the accesses and latency change of the heterogeneous
scheme with inter-layer reuse enabled versus disabled, plus the coverage
(applied donations / possible producer→consumer pairs).

Paper headlines for MnasNet: coverage 0 % at 64 kB, 4 % at 128 kB, 88 % at
512 kB, 98 % at 1 MB; at 1 MB the accesses benefit is 70 % and the latency
benefit 18 %.  Across all models at 1 MB the geometric-mean benefits are
47 % (accesses) and 8 % (latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.units import reduction_pct
from ..report.table import Table
from .common import GLB_SIZES_KB, all_model_names, het_plan

#: Paper-reported coverage per buffer size for MnasNet.
PAPER_COVERAGE = {64: 0.00, 128: 0.04, 512: 0.88, 1024: 0.98}


@dataclass(frozen=True)
class Fig11Row:
    model: str
    glb_kb: int
    accesses_benefit_pct: float
    latency_benefit_pct: float
    coverage: float
    pairs_possible: int
    pairs_applied: int


def _row(model_name: str, glb_kb: int, mode: str) -> Fig11Row:
    enabled = het_plan(
        model_name,
        glb_kb,
        Objective.ACCESSES,
        interlayer=True,
        interlayer_mode=mode,
    )
    disabled = het_plan(model_name, glb_kb, Objective.ACCESSES)
    return Fig11Row(
        model=model_name,
        glb_kb=glb_kb,
        accesses_benefit_pct=reduction_pct(
            enabled.total_accesses_bytes, disabled.total_accesses_bytes
        ),
        latency_benefit_pct=reduction_pct(
            enabled.total_latency_cycles, disabled.total_latency_cycles
        ),
        coverage=enabled.interlayer_coverage,
        pairs_possible=enabled.interlayer_pairs_possible,
        pairs_applied=enabled.interlayer_pairs_applied,
    )


def run(
    model_name: str = "MnasNet",
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
    mode: str = "opportunistic",
) -> list[Fig11Row]:
    """Regenerate the Figure 11 comparison."""
    return [_row(model_name, glb_kb, mode) for glb_kb in glb_sizes_kb]


def geomean_benefits(glb_kb: int = 1024, mode: str = "opportunistic") -> tuple[float, float]:
    """Geometric-mean (accesses, latency) benefit across all models.

    Mirrors the paper's all-model summary at 1 MB (47 % / 8 %).  The
    geometric mean is taken over the retained fractions (1 − benefit) and
    converted back to a benefit, which is well-defined for mixed signs of
    small latency deltas as long as fractions stay positive.
    """
    acc_fracs = []
    lat_fracs = []
    for name in all_model_names():
        row = _row(name, glb_kb, mode)
        acc_fracs.append(max(1e-9, 1.0 - row.accesses_benefit_pct / 100.0))
        lat_fracs.append(max(1e-9, 1.0 - row.latency_benefit_pct / 100.0))
    geo = lambda xs: math.exp(sum(math.log(x) for x in xs) / len(xs))
    return (100.0 * (1.0 - geo(acc_fracs)), 100.0 * (1.0 - geo(lat_fracs)))


def to_table(rows: list[Fig11Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 11: inter-layer reuse on vs off (MnasNet, Het_a)",
        headers=[
            "GLB kB",
            "Accesses benefit",
            "Latency benefit",
            "Coverage",
            "Coverage (paper)",
        ],
    )
    for r in rows:
        paper = PAPER_COVERAGE.get(r.glb_kb)
        table.add_row(
            r.glb_kb,
            f"{r.accesses_benefit_pct:+.1f}%",
            f"{r.latency_benefit_pct:+.1f}%",
            f"{r.coverage:.0%} ({r.pairs_applied}/{r.pairs_possible})",
            f"{paper:.0%}" if paper is not None else "-",
        )
    return table
