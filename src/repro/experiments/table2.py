"""Table 2: characteristics of the DL models studied."""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.stats import characteristics
from ..nn.zoo import PAPER_LAYER_COUNTS, get_model
from ..report.table import Table
from .common import all_model_names

#: Layer-type strings exactly as printed in the paper's Table 2.
PAPER_LAYER_TYPES = {
    "EfficientNetB0": "CV, DW, PW, FC",
    "GoogLeNet": "CV, PW, FC",
    "MnasNet": "CV, DW, PW, FC",
    "MobileNet": "CV, DW, PW, FC",
    "MobileNetV2": "CV, DW, PW, FC",
    "ResNet18": "CV, PW, FC, PL",
}


@dataclass(frozen=True)
class Table2Row:
    network: str
    num_layers: int
    paper_num_layers: int
    layer_types: str
    paper_layer_types: str
    total_macs: int
    total_weight_elems: int


def run() -> list[Table2Row]:
    """Regenerate Table 2 from the model zoo."""
    rows = []
    for name in all_model_names():
        model = get_model(name)
        info = characteristics(model)
        rows.append(
            Table2Row(
                network=name,
                num_layers=info.num_layers,
                paper_num_layers=PAPER_LAYER_COUNTS[name],
                layer_types=", ".join(k.value for k in info.layer_kinds),
                paper_layer_types=PAPER_LAYER_TYPES[name],
                total_macs=info.total_macs,
                total_weight_elems=info.total_weight_elems,
            )
        )
    return rows


def to_table(rows: list[Table2Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Table 2: model characteristics (measured vs paper)",
        headers=[
            "Network",
            "Layers",
            "Layers (paper)",
            "Types",
            "Types (paper)",
            "MACs",
            "Weights",
        ],
    )
    for r in rows:
        table.add_row(
            r.network,
            r.num_layers,
            r.paper_num_layers,
            r.layer_types,
            r.paper_layer_types,
            r.total_macs,
            r.total_weight_elems,
        )
    return table
