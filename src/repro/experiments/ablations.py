"""Ablation studies for the design choices DESIGN.md calls out.

Three ablations, none of which exist in the paper:

* **Inter-layer planning mode** — the paper applies ofmap donations
  opportunistically after policy selection; our joint chain DP co-selects
  policies and donations.  How much does joint optimization buy?
* **Tile-search participation** — our heterogeneous planner lets the
  generic band-tile search compete with the named policies (guaranteeing
  Het ≤ Hom); Algorithm 1 as written uses it only as a rescue.  What do
  the named policies alone leave on the table?
* **Baseline dataflow** — the paper's baseline is output-stationary; how
  do WS/IS change the zero-stall compute time the proposed design is
  compared against?
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..analyzer import Objective, SweepPlanner
from ..analyzer.plan import ExecutionPlan
from ..arch.spec import AcceleratorSpec
from ..arch.units import kib, reduction_pct
from ..nn.model import Model
from ..nn.zoo import get_model
from ..report.table import Table
from ..scalesim.config import Dataflow
from ..scalesim.presets import baseline_config
from ..scalesim.simulator import simulate
from . import cache
from .common import GLB_SIZES_KB, het_plan, het_plan_ladder, spec_for

# ----------------------------------------------------------------------
# Ablation 1: opportunistic vs joint inter-layer planning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class InterlayerAblationRow:
    model: str
    glb_kb: int
    opportunistic_coverage: float
    joint_coverage: float
    opportunistic_benefit_pct: float  #: access reduction vs no inter-layer
    joint_benefit_pct: float

    @property
    def joint_extra_benefit_pct(self) -> float:
        return self.joint_benefit_pct - self.opportunistic_benefit_pct


def interlayer_modes(
    model_name: str = "MnasNet", glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB
) -> list[InterlayerAblationRow]:
    """Compare the two inter-layer planning modes per buffer size."""
    rows = []
    # The no-interlayer references share policy selections across the
    # ladder, so plan them with delta re-planning (byte-identical plans
    # and cache keys; the interlayer variants stay per-point).
    bases = het_plan_ladder(get_model(model_name), glb_sizes_kb)
    for glb_kb, base in zip(glb_sizes_kb, bases):
        opp = het_plan(model_name, glb_kb, interlayer=True)
        joint = het_plan(model_name, glb_kb, interlayer=True, interlayer_mode="joint")
        rows.append(
            InterlayerAblationRow(
                model=model_name,
                glb_kb=glb_kb,
                opportunistic_coverage=opp.interlayer_coverage,
                joint_coverage=joint.interlayer_coverage,
                opportunistic_benefit_pct=reduction_pct(
                    opp.total_accesses_bytes, base.total_accesses_bytes
                ),
                joint_benefit_pct=reduction_pct(
                    joint.total_accesses_bytes, base.total_accesses_bytes
                ),
            )
        )
    return rows


def interlayer_modes_table(rows: list[InterlayerAblationRow]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title=f"Ablation: inter-layer planning mode ({rows[0].model})",
        headers=["GLB kB", "opp. cov", "joint cov", "opp. benefit", "joint benefit", "joint extra"],
    )
    for r in rows:
        table.add_row(
            r.glb_kb,
            f"{r.opportunistic_coverage:.0%}",
            f"{r.joint_coverage:.0%}",
            f"{r.opportunistic_benefit_pct:+.1f}%",
            f"{r.joint_benefit_pct:+.1f}%",
            f"{r.joint_extra_benefit_pct:+.1f}%",
        )
    return table


# ----------------------------------------------------------------------
# Ablation 2: tile search competing vs rescue-only
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FallbackAblationRow:
    model: str
    glb_kb: int
    named_only_mib: float  #: Het restricted to Algorithm 1's rescue-only search
    with_search_mib: float  #: Het with the search competing (our default)

    @property
    def search_benefit_pct(self) -> float:
        return 100.0 * (1.0 - self.with_search_mib / self.named_only_mib)


def _named_only_planner(
    model: Model, objective: Objective = Objective.ACCESSES
) -> SweepPlanner:
    """Delta planner for the rescue-only variant, shared across a ladder."""
    return SweepPlanner(
        model,
        objective,
        scheme="het(named-only)",
        always_fallback=False,
        record_audit=False,
    )


def _het_named_only(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    planner: SweepPlanner | None = None,
) -> ExecutionPlan:
    """Heterogeneous plan where the tile search only rescues layers no
    named policy can fit (Algorithm 1 as literally written)."""
    if planner is None:
        planner = _named_only_planner(model, objective)
    key = cache.plan_cache_key("het(named-only)", model, spec, objective)
    return cache.fetch(key, lambda: planner.plan(spec))


def fallback_participation(
    model_names: tuple[str, ...] = ("ResNet18", "EfficientNetB0"),
    glb_sizes_kb: tuple[int, ...] = (64, 128, 256),
) -> list[FallbackAblationRow]:
    """Quantify what letting the tile search compete buys Het."""
    rows = []
    for name in model_names:
        model = get_model(name)
        planner = _named_only_planner(model)
        for glb_kb in glb_sizes_kb:
            spec = spec_for(glb_kb)
            named = _het_named_only(model, spec, planner=planner)
            full = het_plan(name, glb_kb)
            rows.append(
                FallbackAblationRow(
                    model=name,
                    glb_kb=glb_kb,
                    named_only_mib=named.total_accesses_bytes / 2**20,
                    with_search_mib=full.total_accesses_bytes / 2**20,
                )
            )
    return rows


def fallback_participation_table(rows: list[FallbackAblationRow]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Ablation: tile search competing vs rescue-only (Het accesses)",
        headers=["Model", "GLB kB", "named-only MB", "with search MB", "benefit"],
    )
    for r in rows:
        table.add_row(
            r.model,
            r.glb_kb,
            round(r.named_only_mib, 2),
            round(r.with_search_mib, 2),
            f"{r.search_benefit_pct:+.1f}%",
        )
    return table


# ----------------------------------------------------------------------
# Ablation 3: baseline dataflow
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DataflowAblationRow:
    model: str
    os_cycles: int
    ws_cycles: int
    is_cycles: int


def baseline_dataflows(
    model_names: tuple[str, ...] = ("ResNet18", "MobileNet", "GoogLeNet"),
    glb_kb: int = 256,
) -> list[DataflowAblationRow]:
    """Zero-stall compute time of the baseline under OS/WS/IS dataflows."""
    rows = []
    for name in model_names:
        model = get_model(name)
        cycles = {}
        for dataflow in Dataflow:
            config = replace(baseline_config(kib(glb_kb), 0.5), dataflow=dataflow)
            key = cache.make_key(
                "baseline-dataflow",
                model=cache.model_digest(model),
                glb_kb=glb_kb,
                dataflow=dataflow.value,
            )
            cycles[dataflow] = cache.fetch(
                key, lambda: simulate(model, config).total_cycles
            )
        rows.append(
            DataflowAblationRow(
                model=name,
                os_cycles=cycles[Dataflow.OS],
                ws_cycles=cycles[Dataflow.WS],
                is_cycles=cycles[Dataflow.IS],
            )
        )
    return rows


def baseline_dataflows_table(rows: list[DataflowAblationRow]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Ablation: baseline systolic dataflow (zero-stall cycles)",
        headers=["Model", "OS", "WS", "IS"],
    )
    for r in rows:
        table.add_row(r.model, r.os_cycles, r.ws_cycles, r.is_cycles)
    return table
