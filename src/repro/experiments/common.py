"""Shared configuration and plan caching for the experiment generators.

All experiments use the paper's reference accelerator (§4): 16×16 PEs,
512 OPs/cycle, 8-bit data, 16 elements/cycle off-chip bandwidth, GLB ∈
{64, 128, 256, 512, 1024} kB, batch 1, layer-by-layer execution.

Plans are memoized per (model, GLB, data width, objective, prefetch,
inter-layer) so that the full experiment suite and the benchmarks do not
recompute identical analyses.
"""

from __future__ import annotations

from functools import lru_cache

from ..analyzer import ExecutionPlan, Objective, best_homogeneous, plan_heterogeneous
from ..arch.spec import PAPER_GLB_SIZES, AcceleratorSpec
from ..arch.units import kib
from ..nn.model import Model
from ..nn.zoo import PAPER_MODEL_NAMES, get_model
from ..scalesim import SimulationResult, baseline_configs, simulate

#: GLB sizes in kB, as labeled on the paper's x-axes.
GLB_SIZES_KB = tuple(size // kib(1) for size in PAPER_GLB_SIZES)


def spec_for(glb_kb: int, data_width_bits: int = 8) -> AcceleratorSpec:
    """The paper's accelerator spec at one GLB size / data width."""
    return AcceleratorSpec(glb_bytes=kib(glb_kb), data_width_bits=data_width_bits)


@lru_cache(maxsize=None)
def het_plan(
    model_name: str,
    glb_kb: int,
    objective: Objective = Objective.ACCESSES,
    data_width_bits: int = 8,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
) -> ExecutionPlan:
    """Cached heterogeneous plan."""
    return plan_heterogeneous(
        get_model(model_name),
        spec_for(glb_kb, data_width_bits),
        objective,
        allow_prefetch=allow_prefetch,
        interlayer=interlayer,
        interlayer_mode=interlayer_mode,
    )


@lru_cache(maxsize=None)
def hom_plan(
    model_name: str,
    glb_kb: int,
    objective: Objective = Objective.ACCESSES,
    data_width_bits: int = 8,
    allow_prefetch: bool = True,
) -> ExecutionPlan:
    """Cached best homogeneous plan."""
    return best_homogeneous(
        get_model(model_name),
        spec_for(glb_kb, data_width_bits),
        objective,
        allow_prefetch=allow_prefetch,
    )


@lru_cache(maxsize=None)
def baseline_results(
    model_name: str, glb_kb: int, data_width_bits: int = 8
) -> dict[str, SimulationResult]:
    """Cached SCALE-Sim baseline runs for the three partitions."""
    model: Model = get_model(model_name)
    configs = baseline_configs(kib(glb_kb), data_width_bits=data_width_bits)
    return {label: simulate(model, config) for label, config in configs.items()}


def all_model_names() -> tuple[str, ...]:
    """The six paper models, in Table 2 order."""
    return PAPER_MODEL_NAMES
