"""Shared configuration and plan caching for the experiment generators.

All experiments use the paper's reference accelerator (§4): 16×16 PEs,
512 OPs/cycle, 8-bit data, 16 elements/cycle off-chip bandwidth, GLB ∈
{64, 128, 256, 512, 1024} kB, batch 1, layer-by-layer execution.

Plans are memoized per (model, GLB, data width, objective, prefetch,
inter-layer) at two levels: an in-process ``lru_cache`` and the
persistent, content-addressed on-disk cache in
:mod:`repro.experiments.cache`, shared across processes — so the full
experiment suite, the engine's worker pool and the benchmarks never
recompute identical analyses.

Every cached value is immutable from the caller's perspective:
:class:`~repro.analyzer.ExecutionPlan` is a frozen dataclass, and
:func:`baseline_results` returns a read-only mapping.  Mutating a cached
result would silently corrupt every later artifact in the same process,
so the types enforce it.
"""

from __future__ import annotations

from functools import lru_cache
from types import MappingProxyType
from typing import Mapping, Sequence

from ..analyzer import (
    ExecutionPlan,
    Objective,
    SweepPlanner,
    best_homogeneous,
    plan_heterogeneous,
)
from ..arch.spec import PAPER_GLB_SIZES, AcceleratorSpec
from ..arch.units import kib
from ..estimators.evaluate import clear_evaluation_memo
from ..nn.model import Model
from ..nn.zoo import PAPER_MODEL_NAMES, get_model
from ..scalesim import SimulationResult, baseline_configs, simulate
from . import cache

#: GLB sizes in kB, as labeled on the paper's x-axes.
GLB_SIZES_KB = tuple(size // kib(1) for size in PAPER_GLB_SIZES)


def spec_for(glb_kb: int, data_width_bits: int = 8) -> AcceleratorSpec:
    """The paper's accelerator spec at one GLB size / data width."""
    return AcceleratorSpec(glb_bytes=kib(glb_kb), data_width_bits=data_width_bits)


def cached_het_plan(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
) -> ExecutionPlan:
    """Heterogeneous plan for an arbitrary model/spec, persistently cached.

    The key covers the model's full layer-dimension digest and every spec
    field, so resolution sweeps and custom specs cache correctly.
    """
    key = cache.plan_cache_key(
        "het",
        model,
        spec,
        objective,
        allow_prefetch=allow_prefetch,
        interlayer=interlayer,
        interlayer_mode=interlayer_mode,
    )
    return cache.fetch(
        key,
        lambda: plan_heterogeneous(
            model,
            spec,
            objective,
            allow_prefetch=allow_prefetch,
            interlayer=interlayer,
            interlayer_mode=interlayer_mode,
        ),
    )


def cached_hom_plan(
    model: Model,
    spec: AcceleratorSpec,
    objective: Objective = Objective.ACCESSES,
    *,
    allow_prefetch: bool = True,
) -> ExecutionPlan:
    """Best homogeneous plan for an arbitrary model/spec, persistently cached."""
    key = cache.plan_cache_key(
        "hom", model, spec, objective, allow_prefetch=allow_prefetch
    )
    return cache.fetch(
        key,
        lambda: best_homogeneous(
            model, spec, objective, allow_prefetch=allow_prefetch
        ),
    )


def het_plan_ladder(
    model: Model,
    glb_sizes_kb: Sequence[int],
    objective: Objective = Objective.ACCESSES,
    data_width_bits: int = 8,
) -> list[ExecutionPlan]:
    """Heterogeneous plans for a whole GLB ladder, delta-replanned.

    Byte-identical to calling :func:`cached_het_plan` per size — including
    the on-disk cache keys, so ladder-planned and point-planned runs share
    cache entries — but sizes missing from the cache re-plan only the
    layers whose capacity-check outcome moved since the previous rung
    (:class:`~repro.analyzer.SweepPlanner`).
    """
    planner = SweepPlanner(model, objective)
    plans = []
    for glb_kb in glb_sizes_kb:
        spec = spec_for(glb_kb, data_width_bits)
        key = cache.plan_cache_key(
            "het",
            model,
            spec,
            objective,
            allow_prefetch=True,
            interlayer=False,
            interlayer_mode="opportunistic",
        )
        plans.append(cache.fetch(key, lambda spec=spec: planner.plan(spec)))
    return plans


@lru_cache(maxsize=None)
def het_plan(
    model_name: str,
    glb_kb: int,
    objective: Objective = Objective.ACCESSES,
    data_width_bits: int = 8,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
) -> ExecutionPlan:
    """Cached heterogeneous plan (in-process + persistent on-disk)."""
    return cached_het_plan(
        get_model(model_name),
        spec_for(glb_kb, data_width_bits),
        objective,
        allow_prefetch=allow_prefetch,
        interlayer=interlayer,
        interlayer_mode=interlayer_mode,
    )


@lru_cache(maxsize=None)
def hom_plan(
    model_name: str,
    glb_kb: int,
    objective: Objective = Objective.ACCESSES,
    data_width_bits: int = 8,
    allow_prefetch: bool = True,
) -> ExecutionPlan:
    """Cached best homogeneous plan (in-process + persistent on-disk)."""
    return cached_hom_plan(
        get_model(model_name),
        spec_for(glb_kb, data_width_bits),
        objective,
        allow_prefetch=allow_prefetch,
    )


@lru_cache(maxsize=None)
def baseline_results(
    model_name: str, glb_kb: int, data_width_bits: int = 8
) -> Mapping[str, SimulationResult]:
    """Cached SCALE-Sim baseline runs for the three partitions.

    Returns a **read-only** mapping: the underlying dict is shared with
    every later caller in the process (and with the on-disk cache), so
    mutation would corrupt subsequent artifacts.
    """
    model: Model = get_model(model_name)
    spec = spec_for(glb_kb, data_width_bits)
    key = cache.make_key(
        "baseline",
        model=cache.model_digest(model),
        spec=cache.spec_payload(spec),
    )

    def compute() -> dict[str, SimulationResult]:
        configs = baseline_configs(kib(glb_kb), data_width_bits=data_width_bits)
        return {label: simulate(model, config) for label, config in configs.items()}

    return MappingProxyType(cache.fetch(key, compute))


def clear_in_process_caches() -> None:
    """Drop the in-process memoization (the on-disk cache is untouched)."""
    het_plan.cache_clear()
    hom_plan.cache_clear()
    baseline_results.cache_clear()
    clear_evaluation_memo()


def all_model_names() -> tuple[str, ...]:
    """The six paper models, in Table 2 order."""
    return PAPER_MODEL_NAMES
