"""Figure 9: accesses-vs-latency trade-off of the latency objective.

For every model at the smallest (64 kB) buffer, the change in accesses and
latency when running the heterogeneous scheme optimized for latency
(``Het_l``) instead of optimized for accesses (``Het_a``).  Positive
values are benefits (reductions); negative values are penalties.

Paper headline: MobileNet gains 23 % latency at the cost of 33 % more
accesses — prefetch space competes with reuse space at small buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.units import reduction_pct
from ..report.table import Table
from .common import all_model_names, het_plan


@dataclass(frozen=True)
class Fig9Row:
    model: str
    glb_kb: int
    accesses_benefit_pct: float  #: negative = penalty
    latency_benefit_pct: float


def run(glb_kb: int = 64, models: tuple[str, ...] | None = None) -> list[Fig9Row]:
    """Regenerate the Figure 9 comparison."""
    rows = []
    for name in models or all_model_names():
        het_a = het_plan(name, glb_kb, Objective.ACCESSES)
        het_l = het_plan(name, glb_kb, Objective.LATENCY)
        rows.append(
            Fig9Row(
                model=name,
                glb_kb=glb_kb,
                accesses_benefit_pct=reduction_pct(
                    het_l.total_accesses_bytes, het_a.total_accesses_bytes
                ),
                latency_benefit_pct=reduction_pct(
                    het_l.total_latency_cycles, het_a.total_latency_cycles
                ),
            )
        )
    return rows


def to_table(rows: list[Fig9Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 9: Het_l vs Het_a at 64 kB (positive = benefit)",
        headers=["Model", "Accesses benefit", "Latency benefit"],
    )
    for r in rows:
        table.add_row(
            r.model,
            f"{r.accesses_benefit_pct:+.1f}%",
            f"{r.latency_benefit_pct:+.1f}%",
        )
    return table
