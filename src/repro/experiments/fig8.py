"""Figure 8: inference latency per scheme.

Per model and GLB size: the zero-stall SCALE-Sim baseline (one bar — its
latency does not depend on the buffer partition) against the proposed
schemes optimized for accesses (``Hom_a``/``Het_a``) and for latency
(``Hom_l``/``Het_l``), in cycles.

Paper headlines: up to 56 % latency reduction (MnasNet, 1 MB);
``Hom_l`` beats ``Hom_a`` by up to 23 % (MobileNet, 256 kB) and ``Het_l``
beats ``Het_a`` by up to 19 % (MobileNet, 64 kB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analyzer import Objective
from ..report.table import Table
from .common import GLB_SIZES_KB, all_model_names, baseline_results, het_plan, hom_plan

if TYPE_CHECKING:
    from ..report.chart import BarChart


@dataclass(frozen=True)
class Fig8Cell:
    model: str
    glb_kb: int
    baseline_cycles: float
    hom_a_cycles: float
    het_a_cycles: float
    hom_l_cycles: float
    het_l_cycles: float

    def reduction_vs_baseline(self, cycles: float) -> float:
        """Percent latency reduction of ``cycles`` vs the baseline."""
        return 100.0 * (1.0 - cycles / self.baseline_cycles)

    @property
    def het_l_benefit_over_het_a(self) -> float:
        return 100.0 * (1.0 - self.het_l_cycles / self.het_a_cycles)

    @property
    def hom_l_benefit_over_hom_a(self) -> float:
        return 100.0 * (1.0 - self.hom_l_cycles / self.hom_a_cycles)


def run(
    models: tuple[str, ...] | None = None,
    glb_sizes_kb: tuple[int, ...] = GLB_SIZES_KB,
) -> list[Fig8Cell]:
    """Regenerate the Figure 8 latency grid."""
    cells = []
    for name in models or all_model_names():
        # Baseline latency is partition-independent (zero-stall compute).
        baseline = next(iter(baseline_results(name, glb_sizes_kb[0]).values()))
        for glb_kb in glb_sizes_kb:
            cells.append(
                Fig8Cell(
                    model=name,
                    glb_kb=glb_kb,
                    baseline_cycles=baseline.total_cycles,
                    hom_a_cycles=hom_plan(name, glb_kb, Objective.ACCESSES).total_latency_cycles,
                    het_a_cycles=het_plan(name, glb_kb, Objective.ACCESSES).total_latency_cycles,
                    hom_l_cycles=hom_plan(name, glb_kb, Objective.LATENCY).total_latency_cycles,
                    het_l_cycles=het_plan(name, glb_kb, Objective.LATENCY).total_latency_cycles,
                )
            )
    return cells


def to_table(cells: list[Fig8Cell]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 8: latency (cycles)",
        headers=[
            "Model",
            "GLB kB",
            "baseline",
            "Hom_a",
            "Het_a",
            "Hom_l",
            "Het_l",
            "Het_l vs base",
        ],
    )
    for c in cells:
        table.add_row(
            c.model,
            c.glb_kb,
            int(c.baseline_cycles),
            int(c.hom_a_cycles),
            int(c.het_a_cycles),
            int(c.hom_l_cycles),
            int(c.het_l_cycles),
            f"{c.reduction_vs_baseline(c.het_l_cycles):.1f}%",
        )
    return table


def to_chart(cells: list[Fig8Cell], glb_kb: int = 64) -> "BarChart":
    """Grouped bar chart of one GLB column (terminal rendering of Fig. 8)."""
    from ..report.chart import bar_chart

    subset = [c for c in cells if c.glb_kb == glb_kb]
    groups = [c.model for c in subset]
    series = {
        "baseline": [c.baseline_cycles for c in subset],
        "Hom_a": [c.hom_a_cycles for c in subset],
        "Het_a": [c.het_a_cycles for c in subset],
        "Hom_l": [c.hom_l_cycles for c in subset],
        "Het_l": [c.het_l_cycles for c in subset],
    }
    return bar_chart(f"Figure 8 @ {glb_kb} kB: latency (cycles)", groups, series)
