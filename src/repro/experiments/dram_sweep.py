"""DRAM mapping-policy sweep (extension, not a paper artifact).

For every zoo network: plan heterogeneously with the flat model, then
replay the plan's off-chip traffic through the banked-DRAM backend under
each data-mapping policy (``row_major`` baseline, ``bank_interleaved``,
DRMap-style ``reuse_aware``).  The table reports transfer cycles, row-hit
rate, activations and off-chip energy per mapping, plus the cycle overhead
versus the idealized flat-bandwidth bound — making visible what the
paper's flat 16-elements/cycle constant abstracts away and how much of it
address mapping recovers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..dram.backend import DramStats
from ..dram.mapping import MAPPING_NAMES
from ..dram.planstats import simulate_plan_dram
from ..dram.spec import DEFAULT_DDR4_SPEC, DramSpec
from ..nn.zoo import get_model
from ..report.table import Table
from .common import all_model_names, het_plan_ladder

#: GLB size used for the sweep (the paper's reference 256 kB point).
SWEEP_GLB_KB = 256


@dataclass(frozen=True)
class DramSweepCell:
    """One (model, mapping) point of the sweep."""

    model: str
    mapping: str
    stats: DramStats
    glb_kb: int = SWEEP_GLB_KB

    @property
    def overhead_pct(self) -> float:
        """Transfer-cycle overhead vs the idealized flat-bandwidth bound."""
        if self.stats.ideal_cycles == 0:
            return 0.0
        return 100.0 * (self.stats.cycles / self.stats.ideal_cycles - 1.0)


def run(
    models: tuple[str, ...] | None = None,
    glb_kb: int | Sequence[int] = SWEEP_GLB_KB,
    dram: DramSpec = DEFAULT_DDR4_SPEC,
    mappings: tuple[str, ...] = MAPPING_NAMES,
) -> list[DramSweepCell]:
    """Sweep every mapping policy over every model's heterogeneous plan.

    ``glb_kb`` may be a ladder of sizes; each model's plans are then
    delta-replanned across the ladder (:func:`het_plan_ladder`), with
    single-size output byte-identical to the historical behaviour.
    """
    ladder = (glb_kb,) if isinstance(glb_kb, int) else tuple(glb_kb)
    cells = []
    for name in models or all_model_names():
        plans = het_plan_ladder(get_model(name), ladder)
        for size, plan in zip(ladder, plans):
            for mapping in mappings:
                result = simulate_plan_dram(plan, dram, mapping)
                cells.append(
                    DramSweepCell(
                        model=name, mapping=mapping, stats=result.total, glb_kb=size
                    )
                )
    return cells


def to_table(cells: list[DramSweepCell]) -> Table:
    """Render the sweep's rows as a report table."""
    table = Table(
        title=f"DRAM mapping sweep (Het_a @ {SWEEP_GLB_KB} kB, DDR4-like)",
        headers=[
            "Model",
            "Mapping",
            "cycles",
            "ideal",
            "overhead",
            "hit rate",
            "activations",
            "energy uJ",
        ],
    )
    for c in cells:
        table.add_row(
            c.model,
            c.mapping,
            int(c.stats.cycles),
            int(c.stats.ideal_cycles),
            f"{c.overhead_pct:.1f}%",
            f"{c.stats.row_hit_rate:.4f}",
            c.stats.activations,
            f"{c.stats.energy_pj / 1e6:.1f}",
        )
    return table


def best_mapping_per_model(cells: list[DramSweepCell]) -> dict[str, str]:
    """The lowest-cycle mapping of each model (ties to the earlier policy)."""
    best: dict[str, DramSweepCell] = {}
    for cell in cells:
        current = best.get(cell.model)
        if current is None or cell.stats.cycles < current.stats.cycles:
            best[cell.model] = cell
    return {model: cell.mapping for model, cell in best.items()}
