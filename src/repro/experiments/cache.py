"""Persistent, content-addressed plan/evaluation cache.

The experiment suite replays the same (model × GLB size × objective)
analyses for every figure and table.  The in-process ``lru_cache`` in
:mod:`repro.experiments.common` deduplicates them within one run, but is
lost between processes — every CI run and every benchmark session used to
pay the full re-planning cost.  This module adds the missing layer: a
content-addressed on-disk cache shared by all processes (including the
engine's worker pool).

Keys
----
A cache key is the SHA-256 of a canonical JSON payload containing

* the cache schema version (:data:`CACHE_SCHEMA_VERSION` — bump it when a
  change anywhere in the planning pipeline may alter results),
* the entry kind (``"het"``, ``"hom"``, ``"baseline"``, …),
* the model digest — name **and** every layer's full hyperparameter tuple,
  so two models that merely share a name never collide,
* every :class:`~repro.arch.AcceleratorSpec` field (``data_width_bits``
  included) and, when present, every :class:`~repro.dram.DramSpec` field,
* the planning flags (objective, prefetch, inter-layer mode, …).

Values are stored with :mod:`pickle`, which round-trips the frozen plan
dataclasses bit-identically (floats included), so cached results render
exactly like freshly computed ones.

Environment
-----------
``REPRO_CACHE_DIR``
    Overrides the cache directory (default
    ``$XDG_CACHE_HOME/repro/plans-v<schema>`` or
    ``~/.cache/repro/plans-v<schema>``).
``REPRO_NO_CACHE``
    Any non-empty value disables the on-disk cache entirely (every lookup
    is a miss and nothing is written).  Both variables are inherited by
    the engine's worker processes.
``REPRO_CACHE_MAX_MB``
    Size cap in MiB.  When set, every store checks the total on-disk
    size and evicts least-recently-used entries past the cap through the
    journal-backed index in :mod:`repro.serve.cache_index` (the entry
    just written is never evicted by its own store).  Unset means
    unbounded, the historical behavior.

Eviction / recency
------------------
Recency is tracked by an append-only journal (one ``O_APPEND`` line per
store or hit) that survives concurrent writers; see
:mod:`repro.serve.cache_index` for the index design and its crash /
race semantics.  ``repro cache stats|clear|prune`` is the CLI surface.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable, TypeVar

from ..arch.spec import AcceleratorSpec
from ..arch.units import mib
from ..nn.model import Model
from ..obs import metrics_registry
from ..serve.cache_index import CacheIndex, PruneResult

T = TypeVar("T")

#: Bump when planner/estimator changes may alter cached results.
#: v2: ExecutionPlan gained the ``audit`` decision-trail field (pickle
#: shape change), so v1 entries must never be loaded into v2 code.
CACHE_SCHEMA_VERSION = 2

#: Environment variable overriding the cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable disabling the persistent cache when non-empty.
ENV_NO_CACHE = "REPRO_NO_CACHE"

#: Environment variable capping the cache size in MiB (LRU eviction).
ENV_CACHE_MAX_MB = "REPRO_CACHE_MAX_MB"

_SENTINEL = object()


@dataclass
class CacheStats:
    """Hit/miss/store/eviction counters for the current process.

    Thread-safe: the serve daemon's handler threads all bump the
    module-level instance, so every increment goes through the lock.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    _lock: Any = field(default_factory=threading.Lock, repr=False, compare=False)

    def count_hit(self) -> None:
        """Record one cache hit under the stats lock."""
        with self._lock:
            self.hits += 1

    def count_miss(self) -> None:
        """Record one cache miss under the stats lock."""
        with self._lock:
            self.misses += 1

    def count_store(self) -> None:
        """Record one store under the stats lock."""
        with self._lock:
            self.stores += 1

    def count_evictions(self, amount: int) -> None:
        """Record evicted entries under the stats lock."""
        with self._lock:
            self.evictions += amount

    def reset(self) -> None:
        """Zero all counters."""
        with self._lock:
            self.hits = self.misses = self.stores = self.evictions = 0

    def snapshot(self) -> dict[str, int]:
        """Return the counters as a plain (picklable) dict."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }

    def add(self, other: "CacheStats | dict[str, int]") -> None:
        """Accumulate another counter set (e.g. a worker's snapshot)."""
        if isinstance(other, CacheStats):
            other = other.snapshot()
        with self._lock:
            self.hits += other.get("hits", 0)
            self.misses += other.get("misses", 0)
            self.stores += other.get("stores", 0)
            self.evictions += other.get("evictions", 0)


#: Process-wide counters; worker processes each get their own copy and the
#: engine aggregates the snapshots they return.
stats = CacheStats()  # repro: noqa[R015] -- per-process counters by design; workers return snapshots and the engine aggregates


def cache_enabled() -> bool:
    """Whether the persistent cache is active (``REPRO_NO_CACHE`` unset)."""
    return not os.environ.get(ENV_NO_CACHE)  # repro: noqa[R011,R051] -- documented cache kill-switch, affects speed only; reachable from plan_cached but never enters keys or results


def cache_dir() -> Path:
    """The active cache directory (not necessarily existing yet)."""
    override = os.environ.get(ENV_CACHE_DIR)  # repro: noqa[R011,R051] -- documented cache location knob, affects placement only; reachable from plan_cached but never enters keys or results
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")  # repro: noqa[R011,R051] -- XDG convention for cache placement, never results; reachable from plan_cached but never enters keys or results
    return Path(base) / "repro" / f"plans-v{CACHE_SCHEMA_VERSION}"


def cache_max_bytes() -> int | None:
    """The configured size cap in bytes, or ``None`` for unbounded.

    Read from ``REPRO_CACHE_MAX_MB``; non-numeric or non-positive values
    are treated as unset.  Affects only retention (what gets recomputed),
    never the bytes of any result.
    """
    raw = os.environ.get(ENV_CACHE_MAX_MB)  # repro: noqa[R011,R051] -- documented retention knob, affects eviction only; reachable from plan_cached but never enters keys or results
    if not raw:
        return None
    try:
        max_mb = int(raw)
    except ValueError:
        return None
    return mib(max_mb) if max_mb > 0 else None


def index() -> CacheIndex:
    """The LRU journal index for the active cache directory."""
    return CacheIndex(cache_dir())


# ----------------------------------------------------------------------
# Key construction
# ----------------------------------------------------------------------


def model_digest(model: Model) -> str:
    """Digest of a model's identity: name + every layer's hyperparameters."""
    payload = [model.name]
    for layer in model.layers:
        payload.append(
            [
                layer.name,
                layer.kind.value,
                layer.in_h,
                layer.in_w,
                layer.in_c,
                layer.f_h,
                layer.f_w,
                layer.num_filters,
                layer.stride,
                layer.padding,
            ]
        )
    payload.append(sorted(model.sequential_pairs))
    payload.append(model.explicit_pairs)
    return hashlib.sha256(_canonical(payload).encode()).hexdigest()


def spec_payload(spec: AcceleratorSpec) -> dict[str, Any]:
    """Every AcceleratorSpec field (DramSpec expanded field by field).

    ``data_width_bits`` is always part of the payload — two specs differing
    only in data width must never share a cache entry.
    """
    payload: dict[str, Any] = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if f.name == "dram":
            value = (
                None
                if value is None
                else {df.name: getattr(value, df.name) for df in fields(value)}
            )
        payload[f.name] = value
    return payload


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def make_key(kind: str, **parts: Any) -> str:
    """Content-addressed key for one cache entry."""
    body = {"schema": CACHE_SCHEMA_VERSION, "kind": kind, **parts}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


def plan_cache_key(
    scheme: str,
    model: Model,
    spec: AcceleratorSpec,
    objective: Any,
    *,
    allow_prefetch: bool = True,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
) -> str:
    """Shared key layout for execution plans.

    Used both by :mod:`repro.experiments.common` and by
    :meth:`repro.manager.MemoryManager.plan_cached`, so the two entry
    points hit the same entries for identical requests.
    """
    objective_value = getattr(objective, "value", objective)
    return make_key(
        scheme,
        model=model_digest(model),
        spec=spec_payload(spec),
        objective=objective_value,
        allow_prefetch=allow_prefetch,
        interlayer=interlayer,
        interlayer_mode=interlayer_mode if interlayer else "-",
    )


# ----------------------------------------------------------------------
# Storage
# ----------------------------------------------------------------------


def _entry_path(key: str) -> Path:
    return cache_dir() / key[:2] / f"{key}.pkl"


def load(key: str) -> Any:
    """Return the cached value for ``key`` or ``_SENTINEL`` on a miss.

    Corrupt or unreadable entries are deleted and counted as misses, so a
    crashed writer can never poison later runs.
    """
    if not cache_enabled():
        return _SENTINEL
    path = _entry_path(key)
    try:
        with path.open("rb") as handle:
            return pickle.load(handle)
    except FileNotFoundError:
        return _SENTINEL
    except Exception:
        try:
            path.unlink()
        except OSError:
            pass
        return _SENTINEL


def store(key: str, value: Any) -> None:
    """Atomically persist ``value`` under ``key`` (no-op when disabled).

    The write lands via ``mkstemp`` + ``os.replace`` so readers only ever
    see complete entries; the LRU journal records the store, and when
    ``REPRO_CACHE_MAX_MB`` caps the cache, least-recently-used entries
    beyond the cap are evicted (never the entry just written).
    """
    if not cache_enabled():
        return
    path = _entry_path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        stats.count_store()
        metrics_registry().counter("plan_cache_stores_count").add(1)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        return
    idx = index()
    try:
        size_bytes = path.stat().st_size
    except OSError:
        size_bytes = 0
    idx.record(key, size_bytes)
    cap_bytes = cache_max_bytes()
    if cap_bytes is not None and idx.total_bytes() > cap_bytes:
        _count_eviction(idx.prune(cap_bytes, keep=frozenset((key,))))


def _count_eviction(result: PruneResult) -> PruneResult:
    """Fold one prune outcome into the process counters/metrics."""
    if result.evicted_count:
        stats.count_evictions(result.evicted_count)
        metrics_registry().counter("plan_cache_evictions_count").add(
            result.evicted_count
        )
    return result


def lookup(key: str) -> tuple[bool, Any]:
    """Cache probe with counters: ``(hit, value)`` (value=None on miss).

    A hit touches the LRU journal so recency survives across processes.
    This is the primitive :func:`fetch`,
    :meth:`repro.manager.MemoryManager.plan_cached` and the serve
    handlers share, so all of them agree on what counts as a hit.
    """
    cached = load(key)
    if cached is not _SENTINEL:
        stats.count_hit()
        metrics_registry().counter("plan_cache_hits_count").add(1)
        index().record(key, 0)  # size backfilled from disk at reconcile
        return True, cached
    stats.count_miss()
    metrics_registry().counter("plan_cache_misses_count").add(1)
    return False, None


def fetch(key: str, compute: Callable[[], T]) -> T:
    """Return the cached value for ``key``, computing and storing on miss."""
    hit, cached = lookup(key)
    if hit:
        return cached  # type: ignore[no-any-return]
    value = compute()
    store(key, value)
    return value


def prune(max_bytes: int) -> PruneResult:
    """Evict LRU entries until the cache fits ``max_bytes``."""
    return _count_eviction(index().prune(max_bytes))


def clear() -> int:
    """Delete every cache entry (and the LRU journal); returns the count."""
    root = cache_dir()
    removed = 0
    if not root.is_dir():
        return removed
    for path in root.rglob("*.pkl"):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    index().clear()
    return removed


def entry_count() -> int:
    """Number of entries currently on disk."""
    root = cache_dir()
    return sum(1 for _ in root.rglob("*.pkl")) if root.is_dir() else 0


def total_bytes() -> int:
    """Total size of all cache entries on disk."""
    return index().total_bytes()
