"""Figure 1: motivation — separate buffers vs a managed global buffer.

The paper's opening figure contrasts two layer shapes inspired by
ResNet18: case A needs most of its space for *filters*, case B for
*feature maps*.  A fixed separate-buffer split strands capacity in the
wrong buffer, while a managed global buffer serves either shape and can
spend leftover space on reuse (accesses goal) or prefetching (latency
goal).

We quantify that with two real ResNet18 layers: for each data type, the
fraction of its whole-layer footprint that fits (a) in a 50-50
double-buffered separate-buffer setup and (b) in the global buffer under
the policy Algorithm 1 picks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..arch.units import kib, to_kib
from ..estimators import evaluate_layer
from ..analyzer.algorithm1 import select_policy
from ..nn.zoo import get_model
from ..report.table import Table
from .common import spec_for

#: The two illustrative layers: filter-heavy (A) and feature-map-heavy (B).
CASE_LAYERS = {"A": "conv5_1b", "B": "conv2_1a"}


@dataclass(frozen=True)
class Fig1Case:
    case: str
    layer: str
    need_kib: dict[str, float]  #: whole-layer footprint per data type
    separate_fit: dict[str, float]  #: fraction fitting the separate buffers
    glb_policy: str  #: policy the global-buffer manager picks
    glb_feasible: bool  #: the policy fits the same total capacity
    glb_prefetch: bool  #: and still has room for prefetching


def run(glb_kb: int = 64) -> list[Fig1Case]:
    """Quantify the motivation figure on real ResNet18 layers."""
    model = get_model("ResNet18")
    spec = spec_for(glb_kb)
    b = spec.bytes_per_elem
    # Separate-buffer capacities: 4 kB ofmap + 50/50 split, halved for
    # double buffering (the baseline setup of §4).
    ofmap_cap = kib(4) / 2
    rest = (kib(glb_kb) - kib(4)) / 2
    caps = {"ifmap": rest / 2, "filter": rest / 2, "ofmap": ofmap_cap}

    cases = []
    for case, layer_name in CASE_LAYERS.items():
        layer = model.find(layer_name)
        need = {
            "ifmap": layer.ifmap_elems * b,
            "filter": layer.filter_elems * b,
            "ofmap": layer.ofmap_elems * b,
        }
        evs = evaluate_layer(layer, spec)
        best = select_policy(evs, Objective.ACCESSES)
        cases.append(
            Fig1Case(
                case=case,
                layer=layer_name,
                need_kib={k: to_kib(v) for k, v in need.items()},
                separate_fit={k: min(1.0, caps[k] / need[k]) for k in need},
                glb_policy=best.label,
                glb_feasible=best.memory_bytes <= spec.glb_bytes,
                glb_prefetch=any(ev.prefetch for ev in evs),
            )
        )
    return cases


def to_table(cases: list[Fig1Case]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Figure 1: separate buffers vs managed global buffer (64 kB)",
        headers=[
            "Case",
            "Layer",
            "ifmap kB",
            "filter kB",
            "ofmap kB",
            "sep. fit i/f/o",
            "GLB policy",
            "GLB fits",
        ],
    )
    for c in cases:
        fit = "/".join(f"{c.separate_fit[k]:.0%}" for k in ("ifmap", "filter", "ofmap"))
        table.add_row(
            c.case,
            c.layer,
            round(c.need_kib["ifmap"], 1),
            round(c.need_kib["filter"], 1),
            round(c.need_kib["ofmap"], 1),
            fit,
            c.glb_policy,
            "yes" if c.glb_feasible else "no",
        )
    return table
