"""Parallel + persistently cached experiment execution engine.

The paper-artifact suite is embarrassingly parallel at two levels:

* **across artifacts** — each entry of the ``ARTIFACTS`` registry is an
  independent table generator;
* **within the heavy artifacts** — Figs. 5/7/8 etc. iterate a
  (model × GLB-size) grid whose cells are independent planning problems.

The engine exploits both.  With ``jobs > 1`` it first *prewarms* the
persistent on-disk cache (:mod:`repro.experiments.cache`): the union of
the selected artifacts' plan grids is fanned across a process pool, each
worker writing its plans/baselines into the shared content-addressed
store.  The artifacts themselves then run (also across the pool) against
a warm cache, so even a single heavy artifact like ``fig8`` parallelizes.

Results are **bit-identical** to the serial path: workers return the
same frozen dataclasses (pickle round-trips floats exactly), tables are
assembled in the requested artifact order, and the parity suite asserts
serial == parallel == warm-cache output.

Every run is instrumented: per-artifact wall time and cache hit/miss
counts surface in the runner summary and can be exported as
``BENCH_experiments.json`` (see :meth:`EngineReport.write_bench`).
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..analyzer import Objective
from ..arch.spec import PAPER_DATA_WIDTHS
from ..obs import (
    SpanRecord,
    Snapshot,
    clock,
    configure_worker,
    diff_snapshots,
    export,
    get_tracer,
    metrics_registry,
)
from ..report.table import Table
from . import cache

#: One planning task of the (model × GLB × flags) grid:
#: (kind, model, glb_kb, objective, data_width_bits, prefetch, interlayer, mode).
PlanTask = tuple[str, str, int, str, int, bool, bool, str]


def _het(
    model: str,
    glb_kb: int,
    objective: str = "accesses",
    width: int = 8,
    prefetch: bool = True,
    interlayer: bool = False,
    mode: str = "opportunistic",
) -> PlanTask:
    return ("het", model, glb_kb, objective, width, prefetch, interlayer, mode)


def _hom(model: str, glb_kb: int, objective: str = "accesses", width: int = 8) -> PlanTask:
    return ("hom", model, glb_kb, objective, width, True, False, "-")


def _baseline(model: str, glb_kb: int, width: int = 8) -> PlanTask:
    return ("baseline", model, glb_kb, "-", width, True, False, "-")


def _grid_models() -> tuple[str, ...]:
    from .common import all_model_names

    return all_model_names()


def _grid_sizes() -> tuple[int, ...]:
    from .common import GLB_SIZES_KB

    return GLB_SIZES_KB


def plan_tasks(names: Sequence[str]) -> list[PlanTask]:
    """The union of the selected artifacts' planning grids, deduplicated.

    Only the heavy artifacts are enumerated; cheap ones (``table2``,
    ``fig1``, ``fig3``, …) plan so little that prewarming them would cost
    more in process traffic than it saves.
    """
    models, sizes = _grid_models(), _grid_sizes()
    grids: dict[str, Callable[[], list[PlanTask]]] = {
        "fig5": lambda: [
            task
            for m in models
            for s in sizes
            for task in (_baseline(m, s), _hom(m, s), _het(m, s))
        ],
        "fig7": lambda: [
            task
            for w in PAPER_DATA_WIDTHS
            for s in sizes
            for task in (_hom("MobileNetV2", s, width=w), _het("MobileNetV2", s, width=w))
        ],
        "fig8": lambda: [_baseline(m, sizes[0]) for m in models]
        + [
            task
            for m in models
            for s in sizes
            for o in ("accesses", "latency")
            for task in (_hom(m, s, o), _het(m, s, o))
        ],
        "fig9": lambda: [
            _het(m, 64, o) for m in models for o in ("accesses", "latency")
        ],
        "fig10": lambda: [
            _het("MobileNet", s, "latency", prefetch=p) for s in sizes for p in (True, False)
        ],
        "fig11": lambda: [
            task for s in sizes for task in (_het("MnasNet", s), _het("MnasNet", s, interlayer=True))
        ],
        "fig6": lambda: [_het("ResNet18", 64)],
        "table4": lambda: [_het(m, 64) for m in models],
        "energy": lambda: [
            task for m in models for s in sizes for task in (_baseline(m, s), _het(m, s))
        ],
        "dram-sweep": lambda: [_het(m, 256) for m in models],
        "bounds": lambda: [
            task
            for m in models
            for s in (64, 256, 1024)
            for task in (_het(m, s), _het(m, s, interlayer=True))
        ],
        "ablation-interlayer": lambda: [
            task
            for s in sizes
            for task in (
                _het("MnasNet", s),
                _het("MnasNet", s, interlayer=True),
                _het("MnasNet", s, interlayer=True, mode="joint"),
            )
        ],
        "ablation-fallback": lambda: [
            _het(m, s) for m in ("ResNet18", "EfficientNetB0") for s in (64, 128, 256)
        ],
    }
    seen: dict[PlanTask, None] = {}
    for name in names:
        enumerate_grid = grids.get(name)
        if enumerate_grid is None:
            continue
        for task in enumerate_grid():
            seen.setdefault(task, None)
    return list(seen)


# ----------------------------------------------------------------------
# Worker functions (top-level so the process pool can pickle them)
# ----------------------------------------------------------------------


def _telemetry_delta(metrics_before: Snapshot) -> dict[str, Any]:
    """Spans recorded and metrics accumulated since ``metrics_before``.

    Draining the tracer moves the spans into the return value (the engine
    re-ingests them into its report), so repeated calls never duplicate.
    """
    return {
        "spans": get_tracer().drain(),
        "metrics": diff_snapshots(metrics_before, metrics_registry().snapshot()),
    }


def _warm_worker(task: PlanTask) -> dict[str, Any]:
    """Compute one grid cell into the shared on-disk cache."""
    from . import common

    before = cache.stats.snapshot()
    metrics_before = metrics_registry().snapshot()
    kind, model, glb_kb, objective, width, prefetch, interlayer, mode = task
    metrics_registry().counter("cache_prewarm_tasks_count").add(1)
    with get_tracer().start("prewarm_task", kind=kind, model=model, glb_kb=glb_kb):
        if kind == "baseline":
            common.baseline_results(model, glb_kb, width)
        elif kind == "hom":
            common.hom_plan(model, glb_kb, Objective(objective), width, prefetch)
        else:
            common.het_plan(
                model, glb_kb, Objective(objective), width, prefetch, interlayer, mode
            )
    after = cache.stats.snapshot()
    return {
        "cache": {k: after[k] - before[k] for k in after},
        **_telemetry_delta(metrics_before),
    }


def _artifact_worker(
    name: str,
) -> tuple[Table, float, dict[str, int], dict[str, Any]]:
    """Run one artifact: its table, wall time, cache deltas and telemetry."""
    from .runner import ARTIFACTS

    before = cache.stats.snapshot()
    metrics_before = metrics_registry().snapshot()
    start_ns = clock.monotonic_ns()
    with get_tracer().start("artifact", name=name):
        table = ARTIFACTS[name]()
    seconds = clock.elapsed_seconds(start_ns)
    after = cache.stats.snapshot()
    return (
        table,
        seconds,
        {k: after[k] - before[k] for k in after},
        _telemetry_delta(metrics_before),
    )


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class ArtifactResult:
    """Timing + cache instrumentation for one generated artifact."""

    name: str
    table: Table
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0


@dataclass
class EngineReport:
    """Everything one engine run produced and measured."""

    results: list[ArtifactResult]
    jobs: int
    total_seconds: float
    prewarm_tasks: int = 0
    prewarm_seconds: float = 0.0
    prewarm_stats: dict[str, int] = field(
        default_factory=lambda: {"hits": 0, "misses": 0, "stores": 0}
    )
    #: Spans collected across the run (workers' merged with the parent's).
    spans: tuple[SpanRecord, ...] = ()
    #: Merged metrics delta of the run (counters add across workers).
    metrics: Snapshot = field(default_factory=dict)

    @property
    def tables(self) -> list[Table]:
        return [r.table for r in self.results]

    @property
    def cache_hits(self) -> int:
        return self.prewarm_stats["hits"] + sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        return self.prewarm_stats["misses"] + sum(r.cache_misses for r in self.results)

    def summary_table(self) -> Table:
        """Per-artifact wall time and cache traffic (the runner summary)."""
        table = Table(
            title=f"Experiment engine summary (jobs={self.jobs})",
            headers=["Artifact", "Seconds", "Cache hits", "Cache misses"],
        )
        for r in self.results:
            table.add_row(r.name, round(r.seconds, 2), r.cache_hits, r.cache_misses)
        if self.prewarm_tasks:
            table.add_row(
                "(prewarm grid)",
                round(self.prewarm_seconds, 2),
                self.prewarm_stats["hits"],
                self.prewarm_stats["misses"],
            )
        table.add_row("TOTAL (wall)", round(self.total_seconds, 2),
                      self.cache_hits, self.cache_misses)
        return table

    def bench_record(self) -> dict[str, Any]:
        """JSON-serializable perf record (``BENCH_experiments.json``)."""
        return {
            "schema": 1,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "cache": {
                "enabled": cache.cache_enabled(),
                "dir": str(cache.cache_dir()),
                "schema_version": cache.CACHE_SCHEMA_VERSION,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "prewarm": {
                "tasks": self.prewarm_tasks,
                "seconds": self.prewarm_seconds,
                **self.prewarm_stats,
            },
            "artifacts": [
                {
                    "name": r.name,
                    "seconds": r.seconds,
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                    "cache_stores": r.cache_stores,
                }
                for r in self.results
            ],
        }

    def write_bench(self, path: str | Path) -> None:
        """Write the perf record as JSON."""
        Path(path).write_text(json.dumps(self.bench_record(), indent=2) + "\n")

    def telemetry_payload(self) -> dict[str, object]:
        """The run as a ``repro-telemetry/1`` payload (``--trace-out``)."""
        return export.telemetry_payload(
            self.spans,
            self.metrics,
            meta={
                "tool": "repro-experiments",
                "jobs": str(self.jobs),
                "artifacts": ",".join(r.name for r in self.results),
            },
        )

    def write_trace(self, path: str | Path) -> Path:
        """Export the run's telemetry as Perfetto-loadable JSON."""
        return export.write_trace(path, self.telemetry_payload())

    def metrics_table(self) -> Table:
        """The run's merged metric counters/gauges/histograms as a table."""
        table = Table(
            title="Run metrics", headers=["Metric", "Kind", "Value"]
        )
        counters = self.metrics.get("counters", {})
        gauges = self.metrics.get("gauges", {})
        histograms = self.metrics.get("histograms", {})
        for name, value in sorted(counters.items()):
            assert isinstance(value, float)
            table.add_row(name, "counter", int(value) if value.is_integer() else value)
        for name, value in sorted(gauges.items()):
            table.add_row(name, "gauge", value)
        for name, summary in sorted(histograms.items()):
            assert isinstance(summary, dict)
            table.add_row(
                name,
                "histogram",
                f"n={summary['count']:.0f} sum={summary['sum']:.4g} "
                f"min={summary['min']:.4g} max={summary['max']:.4g}",
            )
        return table


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class _TelemetrySink:
    """Accumulates worker span batches and metric deltas during a run."""

    spans: list[SpanRecord] = field(default_factory=list)
    metrics: Any = None  # lazily created MetricsRegistry

    def absorb(self, delta: dict[str, Any]) -> None:
        from ..obs import MetricsRegistry

        self.spans.extend(delta.get("spans", ()))
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        self.metrics.merge(delta.get("metrics", {}))

    def snapshot(self) -> Snapshot:
        if self.metrics is None:
            return {"counters": {}, "gauges": {}, "histograms": {}}
        snapshot: Snapshot = self.metrics.snapshot()
        return snapshot


def _run_serial(
    names: Sequence[str], sink: _TelemetrySink
) -> list[ArtifactResult]:
    results = []
    for name in names:
        table, seconds, delta, telemetry = _artifact_worker(name)
        sink.absorb(telemetry)
        results.append(
            ArtifactResult(
                name=name,
                table=table,
                seconds=seconds,
                cache_hits=delta["hits"],
                cache_misses=delta["misses"],
                cache_stores=delta["stores"],
            )
        )
    return results


def _run_parallel(
    names: Sequence[str], jobs: int, prewarm: bool, sink: _TelemetrySink
) -> tuple[list[ArtifactResult], int, float, dict[str, int]]:
    warm_stats = {"hits": 0, "misses": 0, "stores": 0}
    tasks = plan_tasks(names) if prewarm and cache.cache_enabled() else []
    warm_seconds = 0.0
    # configure_worker gives every pool worker a fresh tracer/metrics state
    # (forked workers would otherwise inherit — and re-report — the
    # parent's spans and counter values).
    with ProcessPoolExecutor(max_workers=jobs, initializer=configure_worker) as pool:
        if tasks:
            start_ns = clock.monotonic_ns()
            with get_tracer().start("prewarm_grid", tasks_count=len(tasks)):
                for delta in pool.map(_warm_worker, tasks):
                    for k in warm_stats:
                        warm_stats[k] += delta["cache"][k]
                    sink.absorb(delta)
            warm_seconds = clock.elapsed_seconds(start_ns)
        futures = [(name, pool.submit(_artifact_worker, name)) for name in names]
        results = []
        for name, future in futures:
            table, seconds, delta, telemetry = future.result()
            sink.absorb(telemetry)
            results.append(
                ArtifactResult(
                    name=name,
                    table=table,
                    seconds=seconds,
                    cache_hits=delta["hits"],
                    cache_misses=delta["misses"],
                    cache_stores=delta["stores"],
                )
            )
    return results, len(tasks), warm_seconds, warm_stats


def run_experiments(
    names: Sequence[str], jobs: int = 1, prewarm: bool = True
) -> EngineReport:
    """Generate the named artifacts, serially or across a process pool.

    ``jobs <= 1`` runs in-process (the exact historical serial path);
    ``jobs > 1`` fans the plan grid and the artifact list across
    ``jobs`` workers sharing the persistent cache.  Output tables are
    identical either way and are returned in the requested order.

    The returned report carries the run's telemetry — merged worker
    spans and metric deltas — whether or not tracing is enabled (spans
    are simply empty under the no-op tracer).
    """
    from .runner import ARTIFACTS

    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        from .runner import UnknownArtifactError

        raise UnknownArtifactError(unknown, list(ARTIFACTS))
    sink = _TelemetrySink()
    start_ns = clock.monotonic_ns()
    if jobs <= 1:
        results = _run_serial(names, sink)
        report = EngineReport(
            results=results, jobs=1, total_seconds=clock.elapsed_seconds(start_ns)
        )
    else:
        results, n_tasks, warm_seconds, warm_stats = _run_parallel(
            names, jobs, prewarm, sink
        )
        report = EngineReport(
            results=results,
            jobs=jobs,
            total_seconds=clock.elapsed_seconds(start_ns),
            prewarm_tasks=n_tasks,
            prewarm_seconds=warm_seconds,
            prewarm_stats=warm_stats,
        )
    # Parent-side spans (e.g. the prewarm_grid phase) join the worker spans.
    sink.spans.extend(get_tracer().drain())
    report.spans = tuple(sink.spans)
    report.metrics = sink.snapshot()
    return report
