"""Parallel + persistently cached experiment execution engine.

The paper-artifact suite is embarrassingly parallel at two levels:

* **across artifacts** — each entry of the ``ARTIFACTS`` registry is an
  independent table generator;
* **within the heavy artifacts** — Figs. 5/7/8 etc. iterate a
  (model × GLB-size) grid whose cells are independent planning problems.

The engine exploits both.  With ``jobs > 1`` it first *prewarms* the
persistent on-disk cache (:mod:`repro.experiments.cache`): the union of
the selected artifacts' plan grids is fanned across a process pool, each
worker writing its plans/baselines into the shared content-addressed
store.  The artifacts themselves then run (also across the pool) against
a warm cache, so even a single heavy artifact like ``fig8`` parallelizes.

Results are **bit-identical** to the serial path: workers return the
same frozen dataclasses (pickle round-trips floats exactly), tables are
assembled in the requested artifact order, and the parity suite asserts
serial == parallel == warm-cache output.

Every run is instrumented: per-artifact wall time and cache hit/miss
counts surface in the runner summary and can be exported as
``BENCH_experiments.json`` (see :meth:`EngineReport.write_bench`).
"""

from __future__ import annotations

import json
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from ..analyzer import Objective
from ..arch.spec import PAPER_DATA_WIDTHS
from ..report.table import Table
from . import cache

#: One planning task of the (model × GLB × flags) grid:
#: (kind, model, glb_kb, objective, data_width_bits, prefetch, interlayer, mode).
PlanTask = tuple[str, str, int, str, int, bool, bool, str]


def _het(
    model: str,
    glb_kb: int,
    objective: str = "accesses",
    width: int = 8,
    prefetch: bool = True,
    interlayer: bool = False,
    mode: str = "opportunistic",
) -> PlanTask:
    return ("het", model, glb_kb, objective, width, prefetch, interlayer, mode)


def _hom(model: str, glb_kb: int, objective: str = "accesses", width: int = 8) -> PlanTask:
    return ("hom", model, glb_kb, objective, width, True, False, "-")


def _baseline(model: str, glb_kb: int, width: int = 8) -> PlanTask:
    return ("baseline", model, glb_kb, "-", width, True, False, "-")


def _grid_models() -> tuple[str, ...]:
    from .common import all_model_names

    return all_model_names()


def _grid_sizes() -> tuple[int, ...]:
    from .common import GLB_SIZES_KB

    return GLB_SIZES_KB


def plan_tasks(names: Sequence[str]) -> list[PlanTask]:
    """The union of the selected artifacts' planning grids, deduplicated.

    Only the heavy artifacts are enumerated; cheap ones (``table2``,
    ``fig1``, ``fig3``, …) plan so little that prewarming them would cost
    more in process traffic than it saves.
    """
    models, sizes = _grid_models(), _grid_sizes()
    grids: dict[str, Callable[[], list[PlanTask]]] = {
        "fig5": lambda: [
            task
            for m in models
            for s in sizes
            for task in (_baseline(m, s), _hom(m, s), _het(m, s))
        ],
        "fig7": lambda: [
            task
            for w in PAPER_DATA_WIDTHS
            for s in sizes
            for task in (_hom("MobileNetV2", s, width=w), _het("MobileNetV2", s, width=w))
        ],
        "fig8": lambda: [_baseline(m, sizes[0]) for m in models]
        + [
            task
            for m in models
            for s in sizes
            for o in ("accesses", "latency")
            for task in (_hom(m, s, o), _het(m, s, o))
        ],
        "fig9": lambda: [
            _het(m, 64, o) for m in models for o in ("accesses", "latency")
        ],
        "fig10": lambda: [
            _het("MobileNet", s, "latency", prefetch=p) for s in sizes for p in (True, False)
        ],
        "fig11": lambda: [
            task for s in sizes for task in (_het("MnasNet", s), _het("MnasNet", s, interlayer=True))
        ],
        "fig6": lambda: [_het("ResNet18", 64)],
        "table4": lambda: [_het(m, 64) for m in models],
        "energy": lambda: [
            task for m in models for s in sizes for task in (_baseline(m, s), _het(m, s))
        ],
        "dram-sweep": lambda: [_het(m, 256) for m in models],
        "bounds": lambda: [
            task
            for m in models
            for s in (64, 256, 1024)
            for task in (_het(m, s), _het(m, s, interlayer=True))
        ],
        "ablation-interlayer": lambda: [
            task
            for s in sizes
            for task in (
                _het("MnasNet", s),
                _het("MnasNet", s, interlayer=True),
                _het("MnasNet", s, interlayer=True, mode="joint"),
            )
        ],
        "ablation-fallback": lambda: [
            _het(m, s) for m in ("ResNet18", "EfficientNetB0") for s in (64, 128, 256)
        ],
    }
    seen: dict[PlanTask, None] = {}
    for name in names:
        enumerate_grid = grids.get(name)
        if enumerate_grid is None:
            continue
        for task in enumerate_grid():
            seen.setdefault(task, None)
    return list(seen)


# ----------------------------------------------------------------------
# Worker functions (top-level so the process pool can pickle them)
# ----------------------------------------------------------------------


def _warm_worker(task: PlanTask) -> dict[str, int]:
    """Compute one grid cell into the shared on-disk cache."""
    from . import common

    before = cache.stats.snapshot()
    kind, model, glb_kb, objective, width, prefetch, interlayer, mode = task
    if kind == "baseline":
        common.baseline_results(model, glb_kb, width)
    elif kind == "hom":
        common.hom_plan(model, glb_kb, Objective(objective), width, prefetch)
    else:
        common.het_plan(
            model, glb_kb, Objective(objective), width, prefetch, interlayer, mode
        )
    after = cache.stats.snapshot()
    return {k: after[k] - before[k] for k in after}


def _artifact_worker(name: str) -> tuple[Table, float, dict[str, int]]:
    """Run one artifact, returning its table, wall time and cache deltas."""
    from .runner import ARTIFACTS

    before = cache.stats.snapshot()
    start = time.perf_counter()
    table = ARTIFACTS[name]()
    seconds = time.perf_counter() - start
    after = cache.stats.snapshot()
    return table, seconds, {k: after[k] - before[k] for k in after}


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------


@dataclass
class ArtifactResult:
    """Timing + cache instrumentation for one generated artifact."""

    name: str
    table: Table
    seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0


@dataclass
class EngineReport:
    """Everything one engine run produced and measured."""

    results: list[ArtifactResult]
    jobs: int
    total_seconds: float
    prewarm_tasks: int = 0
    prewarm_seconds: float = 0.0
    prewarm_stats: dict[str, int] = field(
        default_factory=lambda: {"hits": 0, "misses": 0, "stores": 0}
    )

    @property
    def tables(self) -> list[Table]:
        return [r.table for r in self.results]

    @property
    def cache_hits(self) -> int:
        return self.prewarm_stats["hits"] + sum(r.cache_hits for r in self.results)

    @property
    def cache_misses(self) -> int:
        return self.prewarm_stats["misses"] + sum(r.cache_misses for r in self.results)

    def summary_table(self) -> Table:
        """Per-artifact wall time and cache traffic (the runner summary)."""
        table = Table(
            title=f"Experiment engine summary (jobs={self.jobs})",
            headers=["Artifact", "Seconds", "Cache hits", "Cache misses"],
        )
        for r in self.results:
            table.add_row(r.name, round(r.seconds, 2), r.cache_hits, r.cache_misses)
        if self.prewarm_tasks:
            table.add_row(
                "(prewarm grid)",
                round(self.prewarm_seconds, 2),
                self.prewarm_stats["hits"],
                self.prewarm_stats["misses"],
            )
        table.add_row("TOTAL (wall)", round(self.total_seconds, 2),
                      self.cache_hits, self.cache_misses)
        return table

    def bench_record(self) -> dict[str, Any]:
        """JSON-serializable perf record (``BENCH_experiments.json``)."""
        return {
            "schema": 1,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "cache": {
                "enabled": cache.cache_enabled(),
                "dir": str(cache.cache_dir()),
                "schema_version": cache.CACHE_SCHEMA_VERSION,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
            },
            "prewarm": {
                "tasks": self.prewarm_tasks,
                "seconds": self.prewarm_seconds,
                **self.prewarm_stats,
            },
            "artifacts": [
                {
                    "name": r.name,
                    "seconds": r.seconds,
                    "cache_hits": r.cache_hits,
                    "cache_misses": r.cache_misses,
                    "cache_stores": r.cache_stores,
                }
                for r in self.results
            ],
        }

    def write_bench(self, path: str | Path) -> None:
        """Write the perf record as JSON."""
        Path(path).write_text(json.dumps(self.bench_record(), indent=2) + "\n")


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _run_serial(names: Sequence[str]) -> list[ArtifactResult]:
    results = []
    for name in names:
        table, seconds, delta = _artifact_worker(name)
        results.append(
            ArtifactResult(
                name=name,
                table=table,
                seconds=seconds,
                cache_hits=delta["hits"],
                cache_misses=delta["misses"],
                cache_stores=delta["stores"],
            )
        )
    return results


def _run_parallel(
    names: Sequence[str], jobs: int, prewarm: bool
) -> tuple[list[ArtifactResult], int, float, dict[str, int]]:
    warm_stats = {"hits": 0, "misses": 0, "stores": 0}
    tasks = plan_tasks(names) if prewarm and cache.cache_enabled() else []
    warm_seconds = 0.0
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        if tasks:
            start = time.perf_counter()
            for delta in pool.map(_warm_worker, tasks):
                for k in warm_stats:
                    warm_stats[k] += delta[k]
            warm_seconds = time.perf_counter() - start
        futures = [(name, pool.submit(_artifact_worker, name)) for name in names]
        results = []
        for name, future in futures:
            table, seconds, delta = future.result()
            results.append(
                ArtifactResult(
                    name=name,
                    table=table,
                    seconds=seconds,
                    cache_hits=delta["hits"],
                    cache_misses=delta["misses"],
                    cache_stores=delta["stores"],
                )
            )
    return results, len(tasks), warm_seconds, warm_stats


def run_experiments(
    names: Sequence[str], jobs: int = 1, prewarm: bool = True
) -> EngineReport:
    """Generate the named artifacts, serially or across a process pool.

    ``jobs <= 1`` runs in-process (the exact historical serial path);
    ``jobs > 1`` fans the plan grid and the artifact list across
    ``jobs`` workers sharing the persistent cache.  Output tables are
    identical either way and are returned in the requested order.
    """
    from .runner import ARTIFACTS

    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        from .runner import UnknownArtifactError

        raise UnknownArtifactError(unknown, list(ARTIFACTS))
    start = time.perf_counter()
    if jobs <= 1:
        results = _run_serial(names)
        report = EngineReport(
            results=results, jobs=1, total_seconds=time.perf_counter() - start
        )
    else:
        results, n_tasks, warm_seconds, warm_stats = _run_parallel(
            names, jobs, prewarm
        )
        report = EngineReport(
            results=results,
            jobs=jobs,
            total_seconds=time.perf_counter() - start,
            prewarm_tasks=n_tasks,
            prewarm_seconds=warm_seconds,
            prewarm_stats=warm_stats,
        )
    return report
