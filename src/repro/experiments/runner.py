"""Run every experiment and print/export the paper artifacts.

Usage::

    python -m repro.experiments                 # print all tables
    python -m repro.experiments --csv DIR       # also write one CSV per artifact
    python -m repro.experiments --jobs 4        # fan across a process pool
    python -m repro.experiments --bench B.json  # export timing/cache record
    python -m repro.experiments --clear-cache   # drop the persistent cache

Execution is delegated to :mod:`repro.experiments.engine`: artifacts (and,
within the heavy ones, their model × GLB planning grids) fan across
``--jobs`` workers, backed by the persistent plan cache in
:mod:`repro.experiments.cache`.  Output is bit-identical at any job count
and cache temperature; a summary reports per-artifact wall time and cache
hits/misses.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:
    from .engine import EngineReport

from ..report.table import Table
from . import ablations, bounds, cache, dram_sweep, energy, fig1, fig3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, resolution
from . import table2, table3, table4

#: artifact id -> callable producing its Table.
ARTIFACTS: dict[str, Callable[[], Table]] = {
    "table2": lambda: table2.to_table(table2.run()),
    "table3": lambda: table3.to_table(table3.run()),
    "table4": lambda: table4.to_table(table4.run()),
    "fig1": lambda: fig1.to_table(fig1.run()),
    "fig3": lambda: fig3.to_table(fig3.run()),
    "fig5": lambda: fig5.to_table(fig5.run()),
    "fig6": lambda: fig6.to_table(fig6.run()),
    "fig7": lambda: fig7.to_table(fig7.run()),
    "fig8": lambda: fig8.to_table(fig8.run()),
    "fig9": lambda: fig9.to_table(fig9.run()),
    "fig10": lambda: fig10.to_table(fig10.run()),
    "fig11": lambda: fig11.to_table(fig11.run()),
    # Extensions (not paper artifacts):
    "energy": lambda: energy.to_table(energy.run()),
    "ablation-interlayer": lambda: ablations.interlayer_modes_table(
        ablations.interlayer_modes()
    ),
    "ablation-fallback": lambda: ablations.fallback_participation_table(
        ablations.fallback_participation()
    ),
    "ablation-dataflow": lambda: ablations.baseline_dataflows_table(
        ablations.baseline_dataflows()
    ),
    "resolution": lambda: resolution.to_table(resolution.run()),
    "bounds": lambda: bounds.to_table(bounds.run()),
    "dram-sweep": lambda: dram_sweep.to_table(dram_sweep.run()),
}


class UnknownArtifactError(KeyError):
    """Raised when a requested artifact id is not in the registry.

    Subclasses :class:`KeyError` for backward compatibility; the CLIs
    convert it to an argparse-style error (exit code 2) instead of a raw
    traceback.
    """

    def __init__(self, unknown: Sequence[str], available: Sequence[str]) -> None:
        self.unknown = list(unknown)
        self.available = list(available)
        super().__init__(
            f"unknown artifact(s) {', '.join(self.unknown)}; "
            f"available: {', '.join(self.available)}"
        )

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message; keep it readable.
        return self.args[0] if self.args else ""


def run_all(
    csv_dir: str | None = None,
    only: list[str] | None = None,
    jobs: int = 1,
) -> list[Table]:
    """Generate (and optionally export) the selected artifacts.

    Raises :class:`UnknownArtifactError` for ids not in :data:`ARTIFACTS`.
    """
    return run_report(csv_dir=csv_dir, only=only, jobs=jobs).tables


def run_report(
    csv_dir: str | None = None,
    only: list[str] | None = None,
    jobs: int = 1,
) -> "EngineReport":
    """Like :func:`run_all` but returns the instrumented engine report."""
    from .engine import run_experiments

    names = only or list(ARTIFACTS)
    report = run_experiments(names, jobs=jobs)
    if csv_dir is not None:
        out = Path(csv_dir)
        out.mkdir(parents=True, exist_ok=True)
        for result in report.results:
            result.table.save_csv(out / f"{result.name}.csv")
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print (and optionally export) artifacts."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", metavar="DIR", help="export CSVs to this directory")
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    parser.add_argument(
        "--bench",
        metavar="FILE",
        help="write the timing/cache record as JSON (BENCH_experiments.json)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the persistent on-disk plan cache for this run",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="enable tracing and write a Perfetto-loadable Chrome trace "
        "(repro-telemetry/1 JSON) for the run",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the run's merged metric counters/gauges/histograms",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="delete the persistent plan cache and exit",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help=f"subset to run (default: all of {', '.join(ARTIFACTS)})",
    )
    args = parser.parse_args(argv)

    if args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} cache entries from {cache.cache_dir()}")
        return 0
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.no_cache:
        # Exported so the engine's worker processes inherit it too.
        os.environ[cache.ENV_NO_CACHE] = "1"

    unknown = [n for n in args.artifacts if n not in ARTIFACTS]
    if unknown:
        parser.error(
            f"unknown artifact(s): {', '.join(unknown)}\n"
            f"available artifacts: {', '.join(ARTIFACTS)}"
        )

    if args.trace_out:
        # Exported so the engine's worker processes trace too; telemetry
        # only — results are bit-identical with tracing on or off.
        from .. import obs

        obs.enable_tracing()

    report = run_report(
        csv_dir=args.csv, only=args.artifacts or None, jobs=args.jobs
    )
    for table in report.tables:
        print(table.render())
        print()
    print(report.summary_table().render())
    if args.metrics:
        print()
        print(report.metrics_table().render())
    if args.bench:
        report.write_bench(args.bench)
        print(f"\nperf record written to {args.bench}")
    if args.trace_out:
        from .. import obs

        path = report.write_trace(args.trace_out)
        obs.disable_tracing()
        print(f"\ntrace written to {path} (load in Perfetto or chrome://tracing)")
    return 0
