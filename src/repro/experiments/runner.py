"""Run every experiment and print/export the paper artifacts.

Usage::

    python -m repro.experiments            # print all tables
    python -m repro.experiments --csv DIR  # also write one CSV per artifact
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Callable

from ..report.table import Table
from . import ablations, bounds, dram_sweep, energy, fig1, fig3, fig5, fig6, fig7, fig8, fig9, fig10, fig11, resolution
from . import table2, table3, table4

#: artifact id -> callable producing its Table.
ARTIFACTS: dict[str, Callable[[], Table]] = {
    "table2": lambda: table2.to_table(table2.run()),
    "table3": lambda: table3.to_table(table3.run()),
    "table4": lambda: table4.to_table(table4.run()),
    "fig1": lambda: fig1.to_table(fig1.run()),
    "fig3": lambda: fig3.to_table(fig3.run()),
    "fig5": lambda: fig5.to_table(fig5.run()),
    "fig6": lambda: fig6.to_table(fig6.run()),
    "fig7": lambda: fig7.to_table(fig7.run()),
    "fig8": lambda: fig8.to_table(fig8.run()),
    "fig9": lambda: fig9.to_table(fig9.run()),
    "fig10": lambda: fig10.to_table(fig10.run()),
    "fig11": lambda: fig11.to_table(fig11.run()),
    # Extensions (not paper artifacts):
    "energy": lambda: energy.to_table(energy.run()),
    "ablation-interlayer": lambda: ablations.interlayer_modes_table(
        ablations.interlayer_modes()
    ),
    "ablation-fallback": lambda: ablations.fallback_participation_table(
        ablations.fallback_participation()
    ),
    "ablation-dataflow": lambda: ablations.baseline_dataflows_table(
        ablations.baseline_dataflows()
    ),
    "resolution": lambda: resolution.to_table(resolution.run()),
    "bounds": lambda: bounds.to_table(bounds.run()),
    "dram-sweep": lambda: dram_sweep.to_table(dram_sweep.run()),
}


def run_all(csv_dir: str | None = None, only: list[str] | None = None) -> list[Table]:
    """Generate (and optionally export) the selected artifacts."""
    names = only or list(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        raise KeyError(f"unknown artifacts {unknown}; available: {list(ARTIFACTS)}")
    tables = []
    for name in names:
        table = ARTIFACTS[name]()
        tables.append(table)
        if csv_dir is not None:
            out = Path(csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            table.save_csv(out / f"{name}.csv")
    return tables


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: print (and optionally export) artifacts."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--csv", metavar="DIR", help="export CSVs to this directory")
    parser.add_argument(
        "artifacts",
        nargs="*",
        help=f"subset to run (default: all of {', '.join(ARTIFACTS)})",
    )
    args = parser.parse_args(argv)
    for table in run_all(csv_dir=args.csv, only=args.artifacts or None):
        print(table.render())
        print()
    return 0
