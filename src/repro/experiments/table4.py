"""Table 4: memory policies used at a 64 kB GLB.

For each network, the set of policies the heterogeneous (accesses
objective) plan assigns across its layers, in the paper's notation:
``policy N`` used without prefetching, ``policy N +p`` with, and
``policy N (+p)`` when both occur.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer import Objective
from ..report.table import Table
from .common import all_model_names, het_plan

#: Published Table 4 contents.
PAPER_TABLE4 = {
    "EfficientNetB0": "intra-layer reuse (+p), policy 1 (+p), policy 2 +p, "
    "policy 3 (+p), policy 5 +p",
    "GoogLeNet": "intra-layer reuse (+p), policy 1 (+p), policy 2 +p, "
    "policy 3 (+p), policy 4, policy 5",
    "MnasNet": "policy 1 (+p), policy 2 +p, policy 3 (+p)",
    "MobileNet": "policy 1, policy 2, policy 3, policy 4, policy 5",
    "MobileNetV2": "intra-layer reuse, policy 1, policy 2, policy 3",
    "ResNet18": "policy 1, policy 2, policy 3, policy 5",
}

_DISPLAY = {
    "intra": "intra-layer reuse",
    "p1": "policy 1",
    "p2": "policy 2",
    "p3": "policy 3",
    "p4": "policy 4",
    "p5": "policy 5",
    "tiled": "tile search",
}


@dataclass(frozen=True)
class Table4Row:
    network: str
    policies: str  #: measured, paper notation
    paper_policies: str


def _paper_notation(labels: set[str]) -> str:
    """Collapse {"p1", "p1+p", ...} into "policy 1 (+p)" style strings."""
    families = sorted({label.removesuffix("+p") for label in labels})
    parts = []
    for family in families:
        plain = family in labels
        pf = f"{family}+p" in labels
        name = _DISPLAY.get(family, family)
        if plain and pf:
            parts.append(f"{name} (+p)")
        elif pf:
            parts.append(f"{name} +p")
        else:
            parts.append(name)
    return ", ".join(parts)


def run(glb_kb: int = 64) -> list[Table4Row]:
    """Regenerate Table 4 from the heterogeneous plans."""
    rows = []
    for name in all_model_names():
        plan = het_plan(name, glb_kb, Objective.ACCESSES)
        labels = {a.label for a in plan.assignments}
        rows.append(
            Table4Row(
                network=name,
                policies=_paper_notation(labels),
                paper_policies=PAPER_TABLE4.get(name, "-"),
            )
        )
    return rows


def to_table(rows: list[Table4Row]) -> Table:
    """Render the experiment's rows as a report table."""
    table = Table(
        title="Table 4: memory policies used (Het, accesses objective, 64 kB)",
        headers=["Network", "Measured", "Paper"],
    )
    for r in rows:
        table.add_row(r.network, r.policies, r.paper_policies)
    return table
