"""Top-level memory-manager facade (the paper's Fig. 4 operational flow).

The paper's RAINBOW-based tool takes a CNN model description and the
accelerator specification, estimates every policy per layer, and emits an
execution plan for the chosen objective.  :class:`MemoryManager` packages
that flow behind one object so applications do not need to assemble the
analyzer pipeline by hand::

    from repro import AcceleratorSpec
    from repro.manager import MemoryManager
    from repro.nn.zoo import get_model

    manager = MemoryManager(AcceleratorSpec(glb_bytes=64 * 1024))
    plan = manager.plan(get_model("ResNet18"))          # Het, min accesses
    report = manager.compare_with_baseline(get_model("ResNet18"))
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .analyzer import (
    ExecutionPlan,
    Objective,
    best_homogeneous,
    plan_heterogeneous,
    plan_homogeneous,
)
from .arch.spec import AcceleratorSpec
from .dram.mapping import MappingPolicy
from .dram.planstats import PlanDramResult, simulate_plan_dram
from .dram.spec import DramSpec
from .estimators.evaluate import PolicyEvaluation, evaluate_layer
from .nn.io import load_model
from .nn.layer import LayerSpec
from .nn.model import Model
from .obs import clock, get_tracer, metrics_registry
from .scalesim.presets import baseline_configs
from .scalesim.simulator import SimulationResult, simulate
from .verify import VerificationReport, verify_plan


@dataclass(frozen=True)
class BaselineComparison:
    """Proposed plan vs the three fixed-partition baselines."""

    plan: ExecutionPlan
    baselines: dict[str, SimulationResult]

    @property
    def best_baseline_label(self) -> str:
        return min(self.baselines, key=lambda k: self.baselines[k].total_traffic_bytes)

    @property
    def accesses_reduction_pct(self) -> float:
        """Reduction of off-chip accesses vs the best baseline partition."""
        best = self.baselines[self.best_baseline_label].total_traffic_bytes
        return 100.0 * (1.0 - self.plan.total_accesses_bytes / best)

    @property
    def latency_reduction_pct(self) -> float:
        """Latency reduction vs the zero-stall baseline compute time."""
        base = next(iter(self.baselines.values())).total_cycles
        return 100.0 * (1.0 - self.plan.total_latency_cycles / base)


class MemoryManager:
    """Scratchpad memory manager for a fixed accelerator specification."""

    def __init__(self, spec: AcceleratorSpec) -> None:
        self.spec = spec

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(
        self,
        model: Model,
        objective: Objective = Objective.ACCESSES,
        *,
        scheme: str = "het",
        prefetch: bool = True,
        interlayer: bool = False,
        interlayer_mode: str = "opportunistic",
        verify: bool = False,
    ) -> ExecutionPlan:
        """Produce an execution plan.

        ``scheme`` is ``"het"`` (Algorithm 1 per layer), ``"hom"`` (best
        single policy family) or ``"hom(<family>)"`` for a specific family.
        ``verify=True`` statically checks the emitted plan against the
        :mod:`repro.verify` invariant catalog and raises
        :class:`~repro.verify.PlanVerificationError` on any violation.
        """
        if scheme == "het":
            return plan_heterogeneous(
                model,
                self.spec,
                objective,
                allow_prefetch=prefetch,
                interlayer=interlayer,
                interlayer_mode=interlayer_mode,
                verify=verify,
            )
        if interlayer:
            raise ValueError("inter-layer reuse is only supported for the het scheme")
        if scheme == "hom":
            return best_homogeneous(
                model, self.spec, objective, allow_prefetch=prefetch, verify=verify
            )
        if scheme.startswith("hom(") and scheme.endswith(")"):
            plan = plan_homogeneous(
                model,
                self.spec,
                scheme[4:-1],
                objective,
                allow_prefetch=prefetch,
                verify=verify,
            )
            if plan is None:
                raise ValueError(f"{scheme} cannot fit {model.name} in this GLB")
            return plan
        raise ValueError(f"unknown scheme {scheme!r}")

    def plan_cached(
        self,
        model: Model,
        objective: Objective = Objective.ACCESSES,
        *,
        scheme: str = "het",
        prefetch: bool = True,
        interlayer: bool = False,
        interlayer_mode: str = "opportunistic",
    ) -> ExecutionPlan:
        """Like :meth:`plan`, backed by the persistent on-disk plan cache.

        The key covers the model's full layer-dimension digest, every
        spec field (``data_width_bits`` and DRAM configuration included)
        and all planning flags, so any change to the inputs is a cache
        miss.  Keys are shared with :mod:`repro.experiments.common` and
        with the ``repro serve`` daemon — serving a plan anywhere warms
        every other entry point.  Set ``REPRO_NO_CACHE=1`` to force
        recomputation.
        """
        plan, _hit, _key = self.plan_cached_detail(
            model,
            objective,
            scheme=scheme,
            prefetch=prefetch,
            interlayer=interlayer,
            interlayer_mode=interlayer_mode,
        )
        return plan

    def plan_cached_detail(
        self,
        model: Model,
        objective: Objective = Objective.ACCESSES,
        *,
        scheme: str = "het",
        prefetch: bool = True,
        interlayer: bool = False,
        interlayer_mode: str = "opportunistic",
    ) -> tuple[ExecutionPlan, bool, str]:
        """:meth:`plan_cached` plus cache observability.

        Returns ``(plan, cache_hit, cache_key)``.  The serve layer uses
        the extra fields to report per-request hit flags (the load
        generator's hit-rate metric) and content-addressed keys without
        racing the process-wide counters under concurrent requests.
        """
        from .experiments import cache

        key = cache.plan_cache_key(
            scheme,
            model,
            self.spec,
            objective,
            allow_prefetch=prefetch,
            interlayer=interlayer,
            interlayer_mode=interlayer_mode,
        )
        start_ns = clock.monotonic_ns()
        with get_tracer().start(
            "plan_cached", model=model.name, scheme=scheme
        ) as span:
            hit, cached = cache.lookup(key)
            if hit:
                plan: ExecutionPlan = cached
            else:
                plan = self.plan(
                    model,
                    objective,
                    scheme=scheme,
                    prefetch=prefetch,
                    interlayer=interlayer,
                    interlayer_mode=interlayer_mode,
                )
                cache.store(key, plan)
            span.set_attr("cache_hit", hit)
        metrics_registry().histogram("plan_cached_seconds").observe(
            clock.elapsed_seconds(start_ns)
        )
        return plan, hit, key

    def verify(self, plan: ExecutionPlan) -> VerificationReport:
        """Statically verify a plan against the invariant catalog.

        Returns the :class:`~repro.verify.VerificationReport`; inspect
        ``report.ok`` / ``report.diagnostics`` or call
        ``report.raise_if_failed()``.
        """
        return verify_plan(plan)

    def simulate_dram(
        self,
        plan: ExecutionPlan,
        dram: DramSpec | None = None,
        mapping: MappingPolicy | str | None = None,
    ) -> PlanDramResult:
        """Price a plan's off-chip traffic through the banked-DRAM backend.

        ``dram`` defaults to this manager's spec (which must then carry a
        :class:`~repro.dram.DramSpec`); ``mapping`` overrides the device's
        configured data-mapping policy, e.g. to sweep alternatives over
        one plan.
        """
        return simulate_plan_dram(
            plan, dram if dram is not None else self.spec.dram, mapping
        )

    def plan_from_file(self, path: str | Path, **kwargs: Any) -> ExecutionPlan:
        """Plan a model loaded from a JSON description (Fig. 4 input)."""
        return self.plan(load_model(path), **kwargs)

    def evaluate(self, layer: LayerSpec) -> list[PolicyEvaluation]:
        """Per-policy estimates for one layer (Algorithm 1 lines 7–9)."""
        return evaluate_layer(layer, self.spec)

    # ------------------------------------------------------------------
    # Baseline comparison
    # ------------------------------------------------------------------

    def compare_with_baseline(
        self,
        model: Model,
        objective: Objective = Objective.ACCESSES,
        **plan_kwargs: Any,
    ) -> BaselineComparison:
        """Plan the model and simulate the three §4 baseline partitions."""
        plan = self.plan(model, objective, **plan_kwargs)
        configs = baseline_configs(
            self.spec.glb_bytes, data_width_bits=self.spec.data_width_bits
        )
        baselines = {label: simulate(model, cfg) for label, cfg in configs.items()}
        return BaselineComparison(plan=plan, baselines=baselines)
