"""Candidate-level invariants: one policy instantiation on one layer.

These checks prove a :class:`~repro.policies.base.CandidatePlan` internally
consistent *without running the simulator*: the declared traffic must be
exactly what the streaming schedule implies, the schedule must perform the
layer's analytic MAC count, the ifmap load multiplicity must match the
paper's policy table, and the Eq. (1)/(2) footprint must fit the budget
the plan was produced for.

Every check appends into a :class:`~repro.verify.diagnostics
.DiagnosticCollector`; the public entry point is
:func:`repro.verify.verifier.verify_candidate`.
"""

from __future__ import annotations

from ..arch.units import ceil_div
from ..policies.base import CandidatePlan, Policy
from .diagnostics import DiagnosticCollector

#: Policy families whose dense-layer plans transfer the ifmap exactly once.
SINGLE_PASS_FAMILIES = frozenset({"intra", "p1", "p2", "p3"})

#: Families whose dense-layer plans re-stream the ifmap ⌈F#/n⌉ times.
BLOCKED_FAMILIES = frozenset({"p4", "p5"})


def expected_ifmap_multiplicity(plan: CandidatePlan) -> int | None:
    """Paper-table ifmap load multiplicity of a plan, if exactly known.

    Returns ``None`` for the tiled fallback, whose multiplicity depends on
    the searched tile shape (only a ≥1-pass lower bound applies there).
    """
    if plan.policy_name in SINGLE_PASS_FAMILIES:
        return 1
    if plan.policy_name in BLOCKED_FAMILIES:
        if plan.layer.kind.is_depthwise:
            return 1  # channel blocking never re-streams (paper §3.2)
        if plan.block_size is None or plan.block_size <= 0:
            return None  # V008 reports the missing block size instead
        return ceil_div(plan.layer.num_filters, plan.block_size)
    return None


def check_candidate(
    out: DiagnosticCollector,
    plan: CandidatePlan,
    budget_elems: int,
    *,
    layer_index: int | None = None,
) -> None:
    """Run every candidate-level invariant on ``plan`` against ``budget_elems``."""
    layer = plan.layer
    schedule = plan.schedule
    traffic = plan.traffic
    where = {
        "layer_index": layer_index,
        "layer_name": layer.name,
        "policy": plan.label,
    }

    # V003 — Eq. (1)/(2): the (possibly doubled) tile footprint fits.
    out.check(
        plan.memory_elems <= budget_elems,
        "V003",
        "tile footprint exceeds the GLB element budget",
        expected=budget_elems,
        actual=plan.memory_elems,
        **where,
    )

    # V004/V005/V006 — traffic conservation: declared totals equal the
    # schedule-implied sums.  Spilled partial ofmaps are stored and later
    # re-loaded, so spills appear on the store side; no current policy
    # represents spill refills as schedule loads (ofmap_spills is zero for
    # every shipped policy), so the load side compares without them.
    out.check(
        traffic.ifmap_reads == schedule.total_ifmap_load,
        "V004",
        "declared ifmap reads differ from the schedule's ifmap loads",
        expected=schedule.total_ifmap_load,
        actual=traffic.ifmap_reads,
        **where,
    )
    out.check(
        traffic.filter_reads == schedule.total_filter_load,
        "V005",
        "declared filter reads differ from the schedule's filter loads",
        expected=schedule.total_filter_load,
        actual=traffic.filter_reads,
        **where,
    )
    out.check(
        traffic.ofmap_writes + traffic.ofmap_spills == schedule.total_store,
        "V006",
        "declared ofmap writes (+spills) differ from the schedule's stores",
        expected=schedule.total_store,
        actual=traffic.ofmap_writes + traffic.ofmap_spills,
        **where,
    )

    # V007 — MAC conservation across the step groups.
    out.check(
        schedule.total_macs == layer.macs,
        "V007",
        "schedule MACs differ from the layer's analytic MAC count",
        expected=layer.macs,
        actual=schedule.total_macs,
        **where,
    )

    # V008 — ifmap load multiplicity per the paper's policy table.
    one_pass = Policy.ifmap_pass_elems(layer)
    multiplicity = expected_ifmap_multiplicity(plan)
    if plan.policy_name in BLOCKED_FAMILIES and not layer.kind.is_depthwise:
        out.check(
            plan.block_size is not None and plan.block_size > 0,
            "V008",
            "memory-dependent policy without a positive filter-block size",
            expected=">= 1",
            actual=str(plan.block_size),
            **where,
        )
    if multiplicity is not None:
        out.check(
            traffic.ifmap_reads == multiplicity * one_pass,
            "V008",
            f"ifmap load multiplicity is not the policy-table {multiplicity}x",
            expected=multiplicity * one_pass,
            actual=traffic.ifmap_reads,
            **where,
        )
    elif plan.policy_name == "tiled":
        # Tile-shape dependent, but never below one full pass over the
        # touched ifmap (halos only ever add traffic).
        out.check(
            traffic.ifmap_reads >= one_pass,
            "V008",
            "tiled plan transfers less than one full ifmap pass",
            expected=f">= {one_pass}",
            actual=traffic.ifmap_reads,
            **where,
        )

    # V010 — negative quantities (defends against hand-built plans that
    # bypassed the dataclass validators).
    for label, value in (
        ("tiles.ifmap", plan.tiles.ifmap),
        ("tiles.filters", plan.tiles.filters),
        ("tiles.ofmap", plan.tiles.ofmap),
        ("traffic.ifmap_reads", traffic.ifmap_reads),
        ("traffic.filter_reads", traffic.filter_reads),
        ("traffic.ofmap_writes", traffic.ofmap_writes),
        ("traffic.ofmap_spills", traffic.ofmap_spills),
        ("schedule.resident_ifmap", schedule.resident_ifmap),
        ("schedule.resident_filters", schedule.resident_filters),
    ):
        out.check(
            value >= 0,
            "V010",
            f"{label} is negative",
            expected=">= 0",
            actual=value,
            **where,
        )

    # V011 — no step stores more than the declared ofmap tile holds.
    for i, group in enumerate(schedule.groups):
        out.check(
            group.store <= plan.tiles.ofmap,
            "V011",
            f"step group {i} stores more than the ofmap tile",
            expected=plan.tiles.ofmap,
            actual=group.store,
            **where,
        )
