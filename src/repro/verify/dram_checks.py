"""DRAM-backend invariants: V018/V019, run for every DRAM-backed plan.

When a plan's accelerator carries a banked :class:`~repro.dram.DramSpec`,
its latency and energy flow through the trace-driven backend, so the
verifier re-simulates every assignment's (donation-transformed) schedule
and cross-checks the backend's output:

* **V018** — physics: simulated cycles may never beat the idealized
  flat-bandwidth bound ``total_bytes / peak_bytes_per_cycle`` (row-buffer
  conflicts only slow transfers down), equivalently delivered bandwidth
  never exceeds the device peak;
* **V019** — bookkeeping: bursts = hits + misses, one activation per row
  miss, and the byte totals match the schedule's load/store traffic.
"""

from __future__ import annotations

import math

from ..analyzer.plan import ExecutionPlan, transformed_schedule
from ..dram.trace import simulate_schedule
from .diagnostics import DiagnosticCollector

#: Relative tolerance for the V018 cycle bound (pure float arithmetic on
#: both sides, so only accumulation order can make them differ).
DRAM_REL_TOL = 1e-9


def check_dram(out: DiagnosticCollector, plan: ExecutionPlan) -> None:
    """V018/V019: re-simulate each layer's DRAM traffic and cross-check it."""
    dram = plan.spec.dram
    if dram is None:
        return
    b = plan.spec.bytes_per_elem
    for assignment in plan.assignments:
        candidate = assignment.evaluation.plan
        schedule = transformed_schedule(
            candidate.schedule, assignment.receives, assignment.donates
        )
        stats = simulate_schedule(schedule, assignment.layer, b, dram)
        where = {
            "layer_index": assignment.index,
            "layer_name": assignment.layer.name,
            "policy": assignment.label,
        }

        ideal = stats.total_bytes / dram.peak_bytes_per_cycle
        out.check(
            stats.cycles >= ideal * (1.0 - DRAM_REL_TOL),
            "V018",
            "simulated DRAM cycles beat the flat peak-bandwidth bound",
            expected=f">= {ideal}",
            actual=stats.cycles,
            **where,
        )
        out.check(
            math.isclose(
                stats.ideal_cycles, ideal, rel_tol=DRAM_REL_TOL, abs_tol=1e-9
            ),
            "V018",
            "reported ideal_cycles differs from bytes / peak bandwidth",
            expected=ideal,
            actual=stats.ideal_cycles,
            **where,
        )
        if stats.total_bytes:
            out.check(
                stats.effective_bytes_per_cycle
                <= dram.peak_bytes_per_cycle * (1.0 + DRAM_REL_TOL),
                "V018",
                "effective bandwidth exceeds the device peak",
                expected=f"<= {dram.peak_bytes_per_cycle}",
                actual=stats.effective_bytes_per_cycle,
                **where,
            )

        out.check(
            stats.bursts == stats.row_hits + stats.row_misses,
            "V019",
            "bursts differ from row hits plus row misses",
            expected=stats.bursts,
            actual=stats.row_hits + stats.row_misses,
            **where,
        )
        out.check(
            stats.activations == stats.row_misses,
            "V019",
            "activation count differs from the row-miss count",
            expected=stats.row_misses,
            actual=stats.activations,
            **where,
        )
        out.check(
            stats.reads_bytes == schedule.total_load * b,
            "V019",
            "simulated read bytes differ from the schedule's load traffic",
            expected=schedule.total_load * b,
            actual=stats.reads_bytes,
            **where,
        )
        out.check(
            stats.writes_bytes == schedule.total_store * b,
            "V019",
            "simulated write bytes differ from the schedule's store traffic",
            expected=schedule.total_store * b,
            actual=stats.writes_bytes,
            **where,
        )
