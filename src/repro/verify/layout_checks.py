"""Layout realizability: every plan must admit a GLB address map.

Aggregate feasibility (Eq. (1)/(2)) proves the byte *counts* fit; it
cannot see packing constraints — double-buffered slots, donated regions
surviving layer transitions, a receive+donate layer hosting both
persistent regions at once.  :func:`repro.sim.glb.layout_plan` constructs
an actual address map; these checks run it (V014) and then independently
re-verify the construction (V015/V016), so a bug in the allocator cannot
silently vouch for itself.
"""

from __future__ import annotations

from ..analyzer.plan import ExecutionPlan
from ..sim.glb import AllocationError, LayerLayout, layout_plan
from .diagnostics import DiagnosticCollector


def check_layout(
    out: DiagnosticCollector,
    plan: ExecutionPlan,
    layouts: list[LayerLayout] | None = None,
) -> None:
    """V014–V016: the plan lays out, and the layout is self-consistent.

    ``layouts`` injects a precomputed address map (tests use this to
    exercise the independent re-checks); by default the map is built with
    :func:`~repro.sim.glb.layout_plan`.
    """
    if layouts is None:
        try:
            layouts = layout_plan(plan)
        except AllocationError as exc:
            out.check(False, "V014", f"no GLB address map exists: {exc}")
            return
        out.check(True, "V014", "layout constructed")

    glb = plan.spec.glb_bytes
    b = plan.spec.bytes_per_elem
    for i, layout in enumerate(layouts):
        where = {"layer_index": i, "layer_name": layout.layer_name, "policy": layout.policy}
        for region in layout.regions:
            out.check(
                0 <= region.offset and region.end <= glb,
                "V015",
                f"region {region.name} lies outside the GLB",
                expected=f"[0, {glb})",
                actual=f"[{region.offset}, {region.end})",
                **where,
            )
        for j, a in enumerate(layout.regions):
            for c in layout.regions[j + 1 :]:
                out.check(
                    not a.overlaps(c),
                    "V015",
                    f"regions {a.name} and {c.name} overlap",
                    actual=f"[{a.offset},{a.end}) vs [{c.offset},{c.end})",
                    **where,
                )

    # V016 — donated regions thread across transitions: the receiver's
    # resident-ifmap range must be exactly the range the producer wrote.
    for i in range(1, min(len(layouts), len(plan.assignments))):
        if not plan.assignments[i].receives:
            continue
        producer, receiver = layouts[i - 1], layouts[i]
        where = {
            "layer_index": i,
            "layer_name": receiver.layer_name,
            "policy": receiver.policy,
        }
        if not out.check(
            producer.donated_offset is not None,
            "V016",
            "receiver has no producer-donated region to inherit",
            **where,
        ):
            continue
        try:
            incoming = receiver.region("ifmap(donated)")
        except KeyError:
            out.check(
                False,
                "V016",
                "receiving layer's layout has no ifmap(donated) region",
                **where,
            )
            continue
        expected_size = plan.assignments[i].layer.ifmap_elems * b
        out.check(
            incoming.offset == producer.donated_offset
            and incoming.size == expected_size,
            "V016",
            "donated region address/size does not match the producer's",
            expected=f"offset {producer.donated_offset}, {expected_size} B",
            actual=f"offset {incoming.offset}, {incoming.size} B",
            **where,
        )
