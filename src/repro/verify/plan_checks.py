"""Plan-level invariants: capacity, metric consistency and donation chains.

These checks operate on a whole :class:`~repro.analyzer.plan.ExecutionPlan`
— the quantities aggregate counting *can* see but nothing re-derives after
planning: per-layer GLB capacity including inter-layer resident regions
(V001/V002), the assignment metrics the reports and experiments consume
(V009/V010), the structural integrity of the plan (V017), and the
legality of the §5.4 donation chain (V012/V013).
"""

from __future__ import annotations

import math

from ..analyzer.plan import (
    ExecutionPlan,
    LayerAssignment,
    required_memory_elems,
    transformed_schedule,
)
from ..estimators.latency import schedule_latency
from .diagnostics import DiagnosticCollector

#: Relative tolerance for recomputed floating-point latencies.  The
#: verifier re-runs the exact estimator code path, so agreement is
#: normally bit-exact; the tolerance only absorbs plans reconstructed
#: from serialized (rounded) exports.
LATENCY_REL_TOL = 1e-9


def check_assignment_capacity(
    out: DiagnosticCollector, assignment: LayerAssignment, plan: ExecutionPlan
) -> None:
    """V001/V002: the layer's residency fits the GLB and is reported truly."""
    spec = plan.spec
    required = required_memory_elems(
        assignment.evaluation, assignment.receives, assignment.donates
    )
    required_bytes = required * spec.bytes_per_elem
    where = {
        "layer_index": assignment.index,
        "layer_name": assignment.layer.name,
        "policy": assignment.label,
    }
    out.check(
        required_bytes <= spec.glb_bytes,
        "V001",
        "residency (tiles + prefetch factor + resident regions) exceeds the GLB",
        expected=spec.glb_bytes,
        actual=required_bytes,
        **where,
    )
    out.check(
        assignment.memory_bytes == required_bytes,
        "V002",
        "stored memory_bytes differs from the recomputed residency",
        expected=required_bytes,
        actual=assignment.memory_bytes,
        **where,
    )


def check_assignment_metrics(
    out: DiagnosticCollector, assignment: LayerAssignment, plan: ExecutionPlan
) -> None:
    """V009/V010: byte and latency metrics equal their traffic-implied values."""
    spec = plan.spec
    b = spec.bytes_per_elem
    candidate = assignment.evaluation.plan
    traffic = candidate.traffic
    where = {
        "layer_index": assignment.index,
        "layer_name": assignment.layer.name,
        "policy": assignment.label,
    }

    reads = (
        (0 if assignment.receives else traffic.ifmap_reads)
        + traffic.filter_reads
        + traffic.ofmap_spills
    )
    writes = (0 if assignment.donates else traffic.ofmap_writes) + traffic.ofmap_spills
    out.check(
        assignment.read_bytes == reads * b,
        "V009",
        "read_bytes differs from the donation-adjusted traffic reads",
        expected=reads * b,
        actual=assignment.read_bytes,
        **where,
    )
    out.check(
        assignment.write_bytes == writes * b,
        "V009",
        "write_bytes differs from the donation-adjusted traffic writes",
        expected=writes * b,
        actual=assignment.write_bytes,
        **where,
    )
    out.check(
        assignment.accesses_bytes == (reads + writes) * b,
        "V009",
        "accesses_bytes is not reads + writes",
        expected=(reads + writes) * b,
        actual=assignment.accesses_bytes,
        **where,
    )

    schedule = transformed_schedule(
        candidate.schedule, assignment.receives, assignment.donates
    )
    latency = schedule_latency(
        schedule, spec, candidate.prefetch, layer=candidate.layer
    ).total_cycles
    out.check(
        math.isclose(
            assignment.latency_cycles, latency, rel_tol=LATENCY_REL_TOL, abs_tol=1e-9
        ),
        "V009",
        "latency_cycles differs from the recomputed schedule latency",
        expected=latency,
        actual=assignment.latency_cycles,
        **where,
    )

    for label, value in (
        ("accesses_bytes", assignment.accesses_bytes),
        ("read_bytes", assignment.read_bytes),
        ("write_bytes", assignment.write_bytes),
        ("latency_cycles", assignment.latency_cycles),
        ("memory_bytes", assignment.memory_bytes),
    ):
        out.check(
            value >= 0,
            "V010",
            f"{label} is negative",
            expected=">= 0",
            actual=value,
            **where,
        )


def check_plan_structure(out: DiagnosticCollector, plan: ExecutionPlan) -> None:
    """V017: one assignment per layer, in order, referencing its own layer."""
    out.check(
        len(plan.assignments) == len(plan.model.layers),
        "V017",
        "assignment count differs from the model's layer count",
        expected=len(plan.model.layers),
        actual=len(plan.assignments),
    )
    for position, assignment in enumerate(plan.assignments):
        ok_index = out.check(
            assignment.index == position,
            "V017",
            "assignment index differs from its position in the plan",
            layer_name=assignment.layer.name,
            policy=assignment.label,
            expected=position,
            actual=assignment.index,
        )
        if ok_index and position < len(plan.model.layers):
            out.check(
                assignment.layer == plan.model.layers[position],
                "V017",
                "assignment references a layer other than the model's",
                layer_index=position,
                layer_name=plan.model.layers[position].name,
                policy=assignment.label,
            )


def check_interlayer_chain(out: DiagnosticCollector, plan: ExecutionPlan) -> None:
    """V012/V013: donation flags form a legal producer→consumer chain."""
    model = plan.model
    assignments = plan.assignments
    n = len(assignments)
    for i, assignment in enumerate(assignments):
        where = {
            "layer_index": i,
            "layer_name": assignment.layer.name,
            "policy": assignment.label,
        }
        if assignment.receives:
            out.check(
                i > 0 and assignments[i - 1].donates,
                "V012",
                "receives a donated ifmap but the previous layer does not donate",
                **where,
            )
        if i > 0 and assignments[i - 1].donates:
            out.check(
                assignment.receives,
                "V012",
                "previous layer donates but this layer does not receive",
                **where,
            )
        if assignment.donates:
            out.check(
                i < n - 1 and model.feeds_next(i),
                "V013",
                "donates on an edge that is not a producer→consumer pair",
                **where,
            )
            out.check(
                assignment.evaluation.plan.traffic.ofmap_spills == 0,
                "V013",
                "donor spills partial ofmaps off-chip, so its ofmap never "
                "completes on-chip",
                expected=0,
                actual=assignment.evaluation.plan.traffic.ofmap_spills,
                **where,
            )
            if i < n - 1:
                consumer = assignments[i + 1].layer
                out.check(
                    assignment.layer.ofmap_elems == consumer.ifmap_elems,
                    "V013",
                    "donated ofmap size differs from the consumer's ifmap",
                    expected=consumer.ifmap_elems,
                    actual=assignment.layer.ofmap_elems,
                    **where,
                )
