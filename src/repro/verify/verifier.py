"""Public entry points of the plan verifier.

* :func:`verify_candidate` — statically check one policy instantiation
  (a :class:`~repro.policies.base.CandidatePlan`) against a GLB budget;
* :func:`verify_plan` — statically check a complete
  :class:`~repro.analyzer.plan.ExecutionPlan` (capacity, traffic and MAC
  conservation, donation chain, address-level realizability);
* :func:`check_plan` — the raising variant the planner's ``verify=True``
  debug mode uses;
* :func:`verify_network` — plan-and-verify one model × spec × scheme
  combination, the unit of work behind ``repro verify``.

The verifier runs no simulation: every check is a closed-form recomputation
cross-checked against the plan's declared values, so a pass is a formal
consistency proof of the plan object itself (and a fail pinpoints the
violated invariant via its ``V0xx`` code).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyzer.objectives import Objective
from ..analyzer.plan import ExecutionPlan
from ..arch.spec import AcceleratorSpec
from ..nn.model import Model
from ..policies.base import CandidatePlan
from .diagnostics import DiagnosticCollector, VerificationReport
from .dram_checks import check_dram
from .invariants import check_candidate
from .layout_checks import check_layout
from .plan_checks import (
    check_assignment_capacity,
    check_assignment_metrics,
    check_interlayer_chain,
    check_plan_structure,
)


def verify_candidate(
    plan: CandidatePlan,
    spec_or_budget: AcceleratorSpec | int,
    *,
    layer_index: int | None = None,
) -> VerificationReport:
    """Statically verify one candidate plan against a GLB budget.

    ``spec_or_budget`` is an :class:`~repro.arch.spec.AcceleratorSpec`
    (whose element budget is used) or a raw element budget.
    """
    budget = (
        spec_or_budget.glb_elems
        if isinstance(spec_or_budget, AcceleratorSpec)
        else spec_or_budget
    )
    out = DiagnosticCollector(subject=f"{plan.layer.name}/{plan.label}")
    check_candidate(out, plan, budget, layer_index=layer_index)
    return out.report()


def verify_plan(
    plan: ExecutionPlan, *, check_layouts: bool = True
) -> VerificationReport:
    """Statically verify a complete execution plan.

    Runs the candidate-level invariants on every assignment's underlying
    plan, then the plan-level capacity/metric/chain checks, then (unless
    ``check_layouts=False``) the address-level realizability checks.
    Plans whose spec carries a banked DRAM model additionally get the
    ``V018``/``V019`` backend cross-checks.
    """
    out = DiagnosticCollector(
        subject=f"{plan.model.name}/{plan.scheme} @ {plan.spec.glb_bytes} B"
    )
    check_plan_structure(out, plan)
    for assignment in plan.assignments:
        check_candidate(
            out,
            assignment.evaluation.plan,
            plan.spec.glb_elems,
            layer_index=assignment.index,
        )
        check_assignment_capacity(out, assignment, plan)
        check_assignment_metrics(out, assignment, plan)
    check_interlayer_chain(out, plan)
    if check_layouts:
        check_layout(out, plan)
    if plan.spec.dram is not None:
        check_dram(out, plan)
    return out.report()


def check_plan(plan: ExecutionPlan) -> VerificationReport:
    """Verify a plan and raise :class:`PlanVerificationError` on failure.

    Returns the (passing) report so callers can still inspect the check
    count.
    """
    report = verify_plan(plan)
    report.raise_if_failed()
    return report


@dataclass(frozen=True)
class NetworkVerification:
    """Outcome of planning-and-verifying one (model, spec, scheme) cell."""

    model_name: str
    glb_bytes: int
    scheme: str
    objective: Objective
    report: VerificationReport

    @property
    def ok(self) -> bool:
        return self.report.ok


def verify_network(
    model: Model,
    spec: AcceleratorSpec,
    *,
    scheme: str = "het",
    objective: Objective = Objective.ACCESSES,
    interlayer: bool = False,
    interlayer_mode: str = "opportunistic",
) -> NetworkVerification:
    """Plan one model on one accelerator and verify the resulting plan."""
    # Imported here: the manager imports the planner, which offers the
    # verify-on-plan debug mode backed by this module.
    from ..manager import MemoryManager

    plan = MemoryManager(spec).plan(
        model,
        objective,
        scheme=scheme,
        interlayer=interlayer,
        interlayer_mode=interlayer_mode,
    )
    return NetworkVerification(
        model_name=model.name,
        glb_bytes=spec.glb_bytes,
        scheme=plan.scheme,
        objective=objective,
        report=verify_plan(plan),
    )
