"""Structured diagnostics for the plan verifier.

Every violated invariant is reported as a :class:`Diagnostic` carrying a
stable code from the :mod:`~repro.verify.codes` catalog, the layer and
policy it concerns, and the expected-vs-actual values that falsified the
invariant.  Diagnostics aggregate into a :class:`VerificationReport`; a
report with zero error-severity diagnostics means every checked invariant
holds (``report.ok``).

The verifier never raises on a violation — callers that want an exception
(the planner's verify-on-plan debug mode, the CLI's exit status) use
:func:`VerificationReport.raise_if_failed` / :class:`PlanVerificationError`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from .codes import CODE_TITLES


class Severity(enum.Enum):
    """How serious a diagnostic is.

    ``ERROR`` diagnostics falsify a formal invariant — the plan is wrong or
    internally inconsistent.  ``WARNING`` diagnostics flag conditions that
    are legal but reduce confidence (none of the current catalog codes emit
    warnings; the level exists for forward compatibility of the report
    format).
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Diagnostic:
    """One violated (or suspicious) invariant, locatable and comparable.

    Attributes
    ----------
    code:
        Stable identifier from the catalog (``"V001"`` … — see
        :data:`repro.verify.codes.CODE_TITLES`).
    message:
        Human-readable, single-line statement of the violation.
    layer_index, layer_name:
        The layer the diagnostic anchors to, if any (plan-level
        diagnostics leave these unset).
    policy:
        Label of the policy instantiation involved (``"p2+p"`` style).
    expected, actual:
        The two sides of the falsified equation, when the invariant is an
        equality/bound; ``None`` for structural violations.
    severity:
        :class:`Severity` of the finding (``ERROR`` unless stated).
    """

    code: str
    message: str
    layer_index: int | None = None
    layer_name: str | None = None
    policy: str | None = None
    expected: int | float | str | None = None
    actual: int | float | str | None = None
    severity: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        if self.code not in CODE_TITLES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        """Catalog title of the code (e.g. ``"capacity exceeded"``)."""
        return CODE_TITLES[self.code]

    def render(self) -> str:
        """One-line rendering: ``V001 [error] layer conv1 (p2+p): …``."""
        where = ""
        if self.layer_name is not None:
            idx = f"#{self.layer_index} " if self.layer_index is not None else ""
            where = f" layer {idx}{self.layer_name}"
            if self.policy is not None:
                where += f" ({self.policy})"
        detail = ""
        if self.expected is not None or self.actual is not None:
            detail = f" [expected {self.expected}, actual {self.actual}]"
        return f"{self.code} [{self.severity.value}]{where}: {self.message}{detail}"


class PlanVerificationError(RuntimeError):
    """A plan failed static verification.

    Raised by :meth:`VerificationReport.raise_if_failed` (and therefore by
    the planner/manager ``verify=True`` debug mode).  Carries the full
    report so callers can inspect individual diagnostics.
    """

    def __init__(self, report: "VerificationReport") -> None:
        super().__init__(report.render())
        self.report = report


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of verifying one subject (a candidate plan or a full plan).

    ``checks`` counts every invariant evaluation performed, so that "zero
    diagnostics" is distinguishable from "nothing was checked".
    """

    subject: str
    diagnostics: tuple[Diagnostic, ...] = ()
    checks: int = 0

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """Whether every checked invariant holds (warnings do not fail)."""
        return not self.errors

    @property
    def codes(self) -> tuple[str, ...]:
        """Distinct diagnostic codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """All diagnostics with the given catalog code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def render(self) -> str:
        """Multi-line human-readable report."""
        status = "OK" if self.ok else "FAILED"
        head = (
            f"{self.subject}: {status} "
            f"({self.checks} checks, {len(self.errors)} errors, "
            f"{len(self.warnings)} warnings)"
        )
        if not self.diagnostics:
            return head
        return "\n".join([head, *(f"  {d.render()}" for d in self.diagnostics)])

    def raise_if_failed(self) -> None:
        """Raise :class:`PlanVerificationError` when any error is present."""
        if not self.ok:
            raise PlanVerificationError(self)


@dataclass
class DiagnosticCollector:
    """Mutable accumulator the invariant checkers append into."""

    subject: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    checks: int = 0

    def check(
        self,
        condition: bool,
        code: str,
        message: str,
        *,
        layer_index: int | None = None,
        layer_name: str | None = None,
        policy: str | None = None,
        expected: int | float | str | None = None,
        actual: int | float | str | None = None,
        severity: Severity = Severity.ERROR,
    ) -> bool:
        """Record one invariant evaluation; emit a diagnostic if it fails."""
        self.checks += 1
        if not condition:
            self.diagnostics.append(
                Diagnostic(
                    code=code,
                    message=message,
                    layer_index=layer_index,
                    layer_name=layer_name,
                    policy=policy,
                    expected=expected,
                    actual=actual,
                    severity=severity,
                )
            )
        return condition

    def add(self, diagnostic: Diagnostic) -> None:
        """Append an externally-constructed diagnostic (counts as a check)."""
        self.checks += 1
        self.diagnostics.append(diagnostic)

    def report(self) -> VerificationReport:
        """Freeze the accumulated state into a report."""
        return VerificationReport(
            subject=self.subject,
            diagnostics=tuple(self.diagnostics),
            checks=self.checks,
        )
