"""Static plan verification: formal invariants checked without simulation.

The analyzer accepts a policy whenever its Eq. (1)/(2) footprint fits the
GLB; this package independently *proves* the emitted plans consistent —
capacity (with prefetch doubling and inter-layer resident regions),
traffic and MAC conservation against the streaming schedules, the paper's
ifmap load-multiplicity table, donation-chain legality, and address-level
realizability cross-checked against :mod:`repro.sim.glb`.

Violations are structured :class:`Diagnostic` records with stable ``V0xx``
codes (see :mod:`repro.verify.codes` and ``docs/verification.md``).  Entry
points: :func:`verify_plan`, :func:`verify_candidate`, :func:`check_plan`
(raising), and the ``repro verify`` CLI subcommand.
"""

from .codes import ALL_CODES, CODE_DESCRIPTIONS, CODE_TITLES, describe
from .diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    PlanVerificationError,
    Severity,
    VerificationReport,
)
from .verifier import (
    NetworkVerification,
    check_plan,
    verify_candidate,
    verify_network,
    verify_plan,
)

__all__ = [
    "ALL_CODES",
    "CODE_DESCRIPTIONS",
    "CODE_TITLES",
    "describe",
    "Diagnostic",
    "DiagnosticCollector",
    "PlanVerificationError",
    "Severity",
    "VerificationReport",
    "NetworkVerification",
    "check_plan",
    "verify_candidate",
    "verify_network",
    "verify_plan",
]
