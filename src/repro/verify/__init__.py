"""Static plan verification: formal invariants checked without simulation.

The analyzer accepts a policy whenever its Eq. (1)/(2) footprint fits the
GLB; this package independently *proves* the emitted plans consistent —
capacity (with prefetch doubling and inter-layer resident regions),
traffic and MAC conservation against the streaming schedules, the paper's
ifmap load-multiplicity table, donation-chain legality, address-level
realizability cross-checked against :mod:`repro.sim.glb`, and — for plans
whose spec carries a banked :class:`~repro.dram.DramSpec` — the DRAM
backend's timing bound and statistics (``V018``/``V019``).

Violations are structured :class:`Diagnostic` records with stable ``V0xx``
codes (see :mod:`repro.verify.codes` and ``docs/verification.md``).  Entry
points: :func:`verify_plan`, :func:`verify_candidate`, :func:`check_plan`
(raising), and the ``repro verify`` CLI subcommand.
"""

from .codes import ALL_CODES, CODE_DESCRIPTIONS, CODE_TITLES, describe
from .diagnostics import (
    Diagnostic,
    DiagnosticCollector,
    PlanVerificationError,
    Severity,
    VerificationReport,
)
from .dram_checks import check_dram
from .verifier import (
    NetworkVerification,
    check_plan,
    verify_candidate,
    verify_network,
    verify_plan,
)

__all__ = [
    "ALL_CODES",
    "CODE_DESCRIPTIONS",
    "CODE_TITLES",
    "describe",
    "Diagnostic",
    "DiagnosticCollector",
    "PlanVerificationError",
    "Severity",
    "VerificationReport",
    "NetworkVerification",
    "check_dram",
    "check_plan",
    "verify_candidate",
    "verify_network",
    "verify_plan",
]
