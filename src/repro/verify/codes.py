"""The diagnostic-code catalog of the plan verifier.

Codes are stable identifiers: tests, tooling and documentation reference
them by name, so existing codes must never be renumbered — new invariants
append new codes.  ``docs/verification.md`` mirrors this table and a test
asserts the two stay in sync.

Catalog overview
----------------
Candidate-level invariants (one policy instantiation on one layer):

* ``V003``–``V011`` check that a :class:`~repro.policies.base.CandidatePlan`
  is internally consistent — Eq. (1)/(2) footprint within the budget,
  traffic totals equal to what the streaming schedule implies, MAC
  conservation, the paper's ifmap load-multiplicity table, and per-step
  bounds.

Assignment/plan-level invariants (a scheduled layer inside an
:class:`~repro.analyzer.plan.ExecutionPlan`):

* ``V001``/``V002`` check GLB capacity including inter-layer resident
  regions and the ×2 prefetch factor;
* ``V009``/``V010`` check the assignment's derived byte/latency metrics;
* ``V012``/``V013`` check the inter-layer donation chain;
* ``V014``–``V016`` check address-level realizability against
  :mod:`repro.sim.glb`;
* ``V017`` checks the plan's structural integrity;
* ``V018``/``V019`` check the banked-DRAM backend's output for every
  DRAM-backed plan (timing no better than the flat peak-bandwidth bound,
  and internally consistent row-buffer statistics).
"""

from __future__ import annotations

#: code → short title (stable; rendered in reports and docs).
CODE_TITLES: dict[str, str] = {
    "V001": "capacity exceeded",
    "V002": "memory metric mismatch",
    "V003": "tile budget exceeded",
    "V004": "ifmap traffic / schedule mismatch",
    "V005": "filter traffic / schedule mismatch",
    "V006": "store traffic / schedule mismatch",
    "V007": "MAC conservation violated",
    "V008": "ifmap load multiplicity violated",
    "V009": "assignment metric mismatch",
    "V010": "negative quantity",
    "V011": "step store exceeds ofmap tile",
    "V012": "inter-layer chain broken",
    "V013": "invalid donation edge",
    "V014": "layout unrealizable",
    "V015": "layout region overlap / out of bounds",
    "V016": "donated region not threaded",
    "V017": "plan structure inconsistent",
    "V018": "DRAM timing below ideal bound",
    "V019": "DRAM statistics inconsistent",
}

#: code → full description (the invariant that must hold).
CODE_DESCRIPTIONS: dict[str, str] = {
    "V001": (
        "The layer's GLB residency — streamed tiles with the Eq. (2) ×2 "
        "prefetch factor, plus full-size inter-layer resident regions — "
        "must not exceed the accelerator's GLB capacity in bytes."
    ),
    "V002": (
        "The assignment's stored memory_bytes must equal the residency "
        "recomputed from its tiles, prefetch flag and donation flags."
    ),
    "V003": (
        "A candidate plan's tile footprint (I_Tile + F_Tile + O_Tile, "
        "doubled under prefetch per Eq. (2)) must fit the GLB element "
        "budget it was planned for."
    ),
    "V004": (
        "The candidate's declared ifmap_reads must equal the total ifmap "
        "load implied by its streaming schedule (resident fetch + step "
        "group loads)."
    ),
    "V005": (
        "The candidate's declared filter_reads must equal the total filter "
        "load implied by its streaming schedule."
    ),
    "V006": (
        "The candidate's declared ofmap_writes + ofmap_spills must equal "
        "the total store traffic implied by its streaming schedule."
    ),
    "V007": (
        "The schedule's step groups must perform exactly the layer's "
        "analytic MAC count — no work may be lost or duplicated."
    ),
    "V008": (
        "The ifmap must cross the off-chip interface with the multiplicity "
        "of the paper's policy table: exactly once for intra/P1–P3 (and "
        "for P4/P5 on depth-wise layers), ⌈F#/n⌉ times for dense P4/P5 "
        "with filter-block size n; the tiled fallback may not transfer "
        "less than one full pass."
    ),
    "V009": (
        "The assignment's read/write/accesses byte counts and latency "
        "must equal the values implied by its candidate traffic and "
        "(donation-transformed) schedule."
    ),
    "V010": "No metric of an assignment may be negative.",
    "V011": (
        "No streaming step may store more elements than the candidate's "
        "declared ofmap tile can hold."
    ),
    "V012": (
        "A layer marked as receiving a donated ifmap requires the "
        "preceding layer to donate; donation flags must form a consistent "
        "producer→consumer chain."
    ),
    "V013": (
        "A donation edge requires a direct producer→consumer pair (shapes "
        "match, not the last layer) and a donor that completes its ofmap "
        "on-chip (no partial-sum spills)."
    ),
    "V014": (
        "Every assignment must admit a non-overlapping GLB address map, "
        "with donated regions surviving the layer transition "
        "(cross-checked against repro.sim.glb.layout_plan)."
    ),
    "V015": (
        "All laid-out regions must sit inside [0, GLB) and be pairwise "
        "disjoint."
    ),
    "V016": (
        "A receiver's donated-ifmap region must be exactly the address "
        "range its producer's donated ofmap occupies (ping-pong across "
        "layer transitions)."
    ),
    "V017": (
        "The plan must have one assignment per model layer, in order, "
        "each referencing the layer at its own index."
    ),
    "V018": (
        "The trace-simulated DRAM cycles of a layer's schedule must be at "
        "least the idealized flat-bandwidth bound (total bytes divided by "
        "the device's peak bytes/cycle): row-buffer conflicts can only "
        "slow a transfer down, so delivered bandwidth may never exceed "
        "the device peak."
    ),
    "V019": (
        "The backend's row-buffer statistics must be internally "
        "consistent: bursts equal hits plus misses, one activation per "
        "row miss, and the read/write byte totals must equal the "
        "(donation-transformed) schedule's load/store traffic in bytes."
    ),
}

#: All catalog codes in numeric order.
ALL_CODES: tuple[str, ...] = tuple(sorted(CODE_TITLES))


def describe(code: str) -> str:
    """Full catalog description of a code (raises on unknown codes)."""
    return CODE_DESCRIPTIONS[code]
