"""Interval abstract domain for the value-range prover (``R07x``).

The vectorized planner (PR 8) evaluates Eq. (1)/(2) capacity and traffic
closed forms as NumPy ``int64`` arrays; an overflow there raises nothing
— it wraps silently and corrupts plans.  This module provides the
abstract domain the :mod:`repro.analysis.range_rules` pack interprets
those closed forms in:

* :class:`Interval` — a classic ``[lo, hi]`` integer interval with
  arithmetic transfer functions (``±inf`` endpoints mean "unbounded");
* :class:`Abstract` — an interval plus the NumPy-ness facts the rules
  need: the *declared* dtype family (from explicit ``dtype=`` keywords),
  whether the value lives in NumPy's fixed-width world at all, and an
  array-length bound (sums scale by it);
* the **seed tables** — worst-case intervals of the repository's domain
  quantities (``layer.macs``, ``traffic.total``, ``spec.bytes_per_elem``,
  …), derived from the declared spec bounds in :mod:`repro.arch.bounds`
  so that the prover and the runtime validators agree on the supported
  space by construction.

The domain is deliberately *sound for the question asked*: every
transfer function over-approximates (an unknown operand widens to
``[-inf, inf]``), so when the interpreter concludes an ``int64``
intermediate stays below ``2**63`` over the seeds, it actually does for
every spec/model combination the validators accept.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace

from ..arch import bounds as B

#: Positive infinity endpoint (intervals store ``int | float`` ends).
INF = float("inf")

#: First unrepresentable int64 magnitude.
INT64_LIMIT = 2**63

#: Largest integer float64 represents exactly (and every one below it).
FLOAT64_EXACT_LIMIT = 2**53


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[lo, hi]`` (``±inf`` = unbounded)."""

    lo: int | float
    hi: int | float

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty interval [{self.lo}, {self.hi}]")

    @staticmethod
    def const(value: int | float) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(-INF, INF)

    @property
    def is_top(self) -> bool:
        return self.lo == -INF and self.hi == INF

    @property
    def bounded(self) -> bool:
        return self.lo != -INF and self.hi != INF

    def contains_zero(self) -> bool:
        """True when 0 lies inside the interval (division hazard)."""
        return self.lo <= 0 <= self.hi

    def join(self, other: "Interval") -> "Interval":
        """Least upper bound (union hull) of two intervals."""
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def add(self, other: "Interval") -> "Interval":
        """Interval sum: ``[lo+lo, hi+hi]`` with saturating infinities."""
        return Interval(_ext_add(self.lo, other.lo), _ext_add(self.hi, other.hi))

    def sub(self, other: "Interval") -> "Interval":
        """Interval difference: ``[lo-hi, hi-lo]``."""
        return Interval(_ext_add(self.lo, -other.hi), _ext_add(self.hi, -other.lo))

    def neg(self) -> "Interval":
        """Negation: ``[-hi, -lo]``."""
        return Interval(-self.hi, -self.lo)

    def mul(self, other: "Interval") -> "Interval":
        """Interval product via the four sign corners."""
        corners = [
            _ext_mul(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(corners), max(corners))

    def floordiv(self, other: "Interval") -> "Interval":
        """Quotient interval; meaningful only for a nonzero divisor."""
        if other.contains_zero():
            return Interval.top()
        corners = [
            _ext_div(a, b)
            for a in (self.lo, self.hi)
            for b in (other.lo, other.hi)
        ]
        return Interval(min(corners), max(corners))

    def max_with(self, other: "Interval") -> "Interval":
        """Pointwise ``max`` — the transfer function for ``max()``."""
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    def min_with(self, other: "Interval") -> "Interval":
        """Pointwise ``min`` — the transfer function for ``min()``."""
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def scaled_sum(self, count_hi: int | float) -> "Interval":
        """Interval of a sum of up to ``count_hi`` elements of this value."""
        if count_hi == INF:
            return Interval.top() if self.lo != 0 or self.hi != 0 else self
        lo = min(0, _ext_mul(self.lo, count_hi))
        hi = max(0, _ext_mul(self.hi, count_hi))
        return Interval(lo, hi)

    def describe(self) -> str:
        """Render as ``[lo, hi]`` with powers of two for large bounds."""
        def fmt(v: int | float) -> str:
            if v == INF:
                return "+inf"
            if v == -INF:
                return "-inf"
            return str(int(v))

        return f"[{fmt(self.lo)}, {fmt(self.hi)}]"


def _ext_add(a: int | float, b: int | float) -> int | float:
    if a in (INF, -INF):
        return a
    if b in (INF, -INF):
        return b
    return a + b


def _ext_mul(a: int | float, b: int | float) -> int | float:
    if a == 0 or b == 0:
        return 0
    if a in (INF, -INF) or b in (INF, -INF):
        return INF if (a > 0) == (b > 0) else -INF
    return a * b


def _ext_div(a: int | float, b: int | float) -> int | float:
    if b in (INF, -INF):
        return 0
    if a in (INF, -INF):
        return INF if (a > 0) == (b > 0) else -INF
    return a // b if isinstance(a, int) and isinstance(b, int) else a / b


#: The nonnegative unknown (counts whose size we cannot bound).
NONNEG = Interval(0, INF)


@dataclass(frozen=True)
class Abstract:
    """One expression's abstract value.

    ``dtype`` is the *declared* NumPy dtype family — ``"int"``,
    ``"float"`` or ``"bool"`` — known only when an explicit ``dtype=``
    keyword (or a dtype-definite operation) pins it; ``is_np`` says the
    value lives in NumPy's fixed-width world (where ``int64`` wraps);
    ``length_hi`` bounds the element count of array values (sums scale
    by it).
    """

    interval: Interval
    dtype: str | None = None
    #: True only when an explicit ``dtype=`` keyword (or ``astype``)
    #: pinned the dtype — inferred families don't count for R073.
    dtype_declared: bool = False
    is_np: bool = False
    is_array: bool = False
    length_hi: int | float = INF
    tainted: bool = False

    @staticmethod
    def top() -> "Abstract":
        return Abstract(interval=Interval.top())

    @staticmethod
    def of(interval: Interval) -> "Abstract":
        return Abstract(interval=interval)

    def with_interval(self, interval: Interval) -> "Abstract":
        """Copy of this value with the interval replaced, dtype kept."""
        return replace(self, interval=interval)


TOP = Abstract.top()


def join_abstract(left: Abstract, right: Abstract) -> Abstract:
    """Least upper bound of two abstract values (e.g. ``np.where`` arms)."""
    return Abstract(
        interval=left.interval.join(right.interval),
        dtype=left.dtype if left.dtype == right.dtype else None,
        dtype_declared=left.dtype_declared and right.dtype_declared,
        is_np=left.is_np or right.is_np,
        is_array=left.is_array or right.is_array,
        length_hi=max(left.length_hi, right.length_hi),
        tainted=left.tainted or right.tainted,
    )


# ----------------------------------------------------------------------
# Seed tables: the repository's domain quantities, bounded by the
# declared spec space (repro.arch.bounds).
# ----------------------------------------------------------------------

#: Worst-case per-layer traffic in bytes (the widest element applied).
_MAX_TRAFFIC_BYTES = B.MAX_LAYER_TRAFFIC_ELEMS * B.MAX_BYTES_PER_ELEM

#: Exact terminal name (attribute or bare identifier) → seed interval.
#: These are the quantities the planner's closed forms combine; their
#: bounds follow from LayerSpec / AcceleratorSpec / DramSpec validation
#: against :mod:`repro.arch.bounds`.
NAME_INTERVALS: dict[str, Interval] = {
    # LayerSpec hyperparameters and derived shapes
    "in_h": Interval(1, B.MAX_FEATURE_DIM),
    "in_w": Interval(1, B.MAX_FEATURE_DIM),
    "out_h": Interval(1, B.MAX_PADDED_DIM),
    "out_w": Interval(1, B.MAX_PADDED_DIM),
    "padded_h": Interval(1, B.MAX_PADDED_DIM),
    "padded_w": Interval(1, B.MAX_PADDED_DIM),
    "in_c": Interval(1, B.MAX_CHANNELS),
    "out_c": Interval(1, B.MAX_CHANNELS),
    "num_filters": Interval(1, B.MAX_CHANNELS),
    "f_h": Interval(1, B.MAX_KERNEL_DIM),
    "f_w": Interval(1, B.MAX_KERNEL_DIM),
    "stride": Interval(1, B.MAX_STRIDE),
    "padding": Interval(0, B.MAX_PADDING),
    # Per-layer aggregates (independent caps, LayerSpec-validated)
    "macs": Interval(0, B.MAX_LAYER_MACS),
    "total_macs": Interval(0, B.MAX_LAYER_MACS),
    "ifmap_elems": Interval(0, B.MAX_TENSOR_ELEMS),
    "ifmap_padded_elems": Interval(0, B.MAX_TENSOR_ELEMS),
    "filter_elems": Interval(0, B.MAX_TENSOR_ELEMS),
    "filter_elems_per_filter": Interval(0, B.MAX_TENSOR_ELEMS),
    "ofmap_elems": Interval(0, B.MAX_TENSOR_ELEMS),
    "total_elems": Interval(0, 3 * B.MAX_TENSOR_ELEMS),
    # Traffic and schedule quantities
    "reads": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "writes": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "total": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "load": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "store": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "total_load": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "total_store": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "resident_load": Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS),
    "count": Interval(1, B.MAX_LAYER_MACS),
    "memory_elems": Interval(0, B.MAX_PLAN_MEMORY_ELEMS),
    # AcceleratorSpec quantities
    "bytes_per_elem": Interval(1, B.MAX_BYTES_PER_ELEM),
    "data_width_bits": Interval(8, B.MAX_DATA_WIDTH_BITS),
    "glb_bytes": Interval(1, B.MAX_GLB_BYTES),
    "glb_elems": Interval(1, B.MAX_GLB_ELEMS),
    "ops_per_cycle": Interval(1, B.MAX_OPS_PER_CYCLE),
    "pe_rows": Interval(1, B.MAX_PE_DIM),
    "pe_cols": Interval(1, B.MAX_PE_DIM),
    "num_pes": Interval(1, B.MAX_PE_DIM * B.MAX_PE_DIM),
    # DramSpec quantities
    "capacity_bytes": Interval(1, B.MAX_DRAM_CAPACITY_BYTES),
    "bank_bytes": Interval(1, B.MAX_DRAM_CAPACITY_BYTES),
    "row_bytes": Interval(1, B.MAX_DRAM_CAPACITY_BYTES),
    "burst_bytes": Interval(1, B.MAX_DRAM_CAPACITY_BYTES),
}

#: Unit-suffix fallback: ``(suffix, interval)`` tried in order when a
#: name has no exact entry.  Generic ``*_elems`` values may be traffic-
#: scale, so the fallback is the loosest count the validators admit.
SUFFIX_INTERVALS: tuple[tuple[str, Interval], ...] = (
    ("_elems", Interval(0, B.MAX_LAYER_TRAFFIC_ELEMS)),
    ("_bytes", Interval(0, _MAX_TRAFFIC_BYTES)),
    ("_bits", Interval(0, 8 * _MAX_TRAFFIC_BYTES)),  # repro: noqa[R004] -- bits-per-byte at the seed-table boundary, not a conversion in planner arithmetic
    ("_macs", Interval(0, B.MAX_LAYER_MACS)),
)

#: Iterable terminal name → bound on the number of items it yields.
LENGTH_BOUNDS: dict[str, int] = {
    "layers": B.MAX_MODEL_LAYERS,
    "plans": B.MAX_GRID_CANDIDATES,
    "schedules": B.MAX_GRID_CANDIDATES,
    "evaluations": B.MAX_GRID_CANDIDATES,
    "policies": B.MAX_GRID_CANDIDATES,
}

#: Name suffixes that declare an exact integer quantity — the values
#: whose arithmetic must stay exact (R071's targets, R072's operands).
INTEGER_UNIT_SUFFIXES: tuple[str, ...] = ("_elems", "_bytes", "_bits", "_count")


def seed_interval(name: str | None) -> Interval | None:
    """Seed interval a terminal name declares, if any."""
    if not name:
        return None
    exact = NAME_INTERVALS.get(name)
    if exact is not None:
        return exact
    lowered = name.lower()
    for suffix, interval in SUFFIX_INTERVALS:
        if lowered.endswith(suffix):
            return interval
    return None


def is_integer_unit_name(name: str | None) -> bool:
    """Whether a name declares an exact integer unit by suffix."""
    if not name:
        return False
    lowered = name.lower()
    return any(lowered.endswith(s) for s in INTEGER_UNIT_SUFFIXES)


def terminal_name(expr: ast.expr) -> str | None:
    """Rightmost identifier of a name/attribute chain, if any."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None
