"""The analysis driver: file discovery, rule dispatch, gating.

:func:`analyze_paths` is the library entry point behind the ``repro
lint`` CLI subcommand: it expands the given files/directories into a
Python file set, parses each file once, runs every file-scope rule per
file and every project-scope rule once, then applies inline
``# repro: noqa[Rxxx]`` suppressions and the committed baseline before
returning an :class:`~repro.analysis.findings.AnalysisReport`.

:func:`analyze_source` runs the file-scope rules over an in-memory
source text — the fixture-test entry point.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import BASELINE_FILENAME, Baseline, load_baseline
from .codes import ALL_PACKS
from .findings import AnalysisReport, Finding
from .rules import Project, SourceFile, all_rules
from .suppressions import suppressed_at


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``pyproject.toml``.

    Falls back to ``start`` itself (its parent for files) when no marker
    is found; the root anchors relative paths, docs lookups and the
    default baseline location.
    """
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return probe


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if candidate.suffix != ".py":
                continue
            if any(part.startswith(".") for part in candidate.parts):
                continue
            seen.setdefault(candidate.resolve(), None)
    return sorted(seen)


def _load_file(path: Path, root: Path) -> SourceFile | Finding:
    """Parse one file; on syntax errors return an ``R000`` finding."""
    try:
        relpath = path.relative_to(root).as_posix()
    except ValueError:
        relpath = path.as_posix()
    source = path.read_text()
    try:
        return SourceFile.parse(path, relpath, source)
    except SyntaxError as exc:
        return Finding(
            code="R000",
            path=relpath,
            line=exc.lineno or 0,
            message=f"file does not parse: {exc.msg}",
        )


def _apply_suppressions(
    findings: Iterable[Finding], files: Sequence[SourceFile]
) -> tuple[Finding, ...]:
    by_path = {f.relpath: f for f in files}
    marked = []
    for finding in findings:
        file = by_path.get(finding.path)
        if file is not None and suppressed_at(
            file.suppressions, finding.line, finding.code
        ):
            finding = replace(finding, suppressed=True)
        marked.append(finding)
    return tuple(marked)


def _apply_baseline(
    findings: Iterable[Finding], baseline: Baseline
) -> tuple[Finding, ...]:
    marked = []
    for finding in findings:
        if not finding.suppressed and baseline.covers(finding):
            finding = replace(finding, baselined=True)
        marked.append(finding)
    return tuple(marked)


def analyze_paths(
    paths: Sequence[Path | str],
    *,
    root: Path | None = None,
    baseline: Baseline | None = None,
    use_baseline: bool = True,
    packs: Sequence[str] | None = None,
    changed_files: Sequence[Path | str] | None = None,
) -> AnalysisReport:
    """Run every rule over the given files/directories.

    ``root`` defaults to the nearest ancestor with a ``pyproject.toml``;
    ``baseline`` defaults to ``<root>/lint-baseline.json`` when present
    (pass ``use_baseline=False`` to ignore it).

    ``packs`` restricts the run to the named rule packs (see
    :data:`~repro.analysis.codes.ALL_PACKS`); unknown names raise
    :class:`ValueError`.  ``changed_files`` switches on incremental mode:
    only the listed files (intersected with the discovered set) are
    analyzed, and the project-scope packs — whose whole-program call
    graph would be incomplete over a partial file set — are skipped, so
    the result is sound for the file-scope rules and fast for editor
    save hooks.
    """
    started = time.perf_counter()
    resolved = [Path(p) for p in paths]
    missing = [p for p in resolved if not p.exists()]
    if missing:
        raise FileNotFoundError(f"no such file or directory: {missing[0]}")
    files = iter_python_files(resolved)
    if changed_files is not None:
        changed = {Path(p).resolve() for p in changed_files}
        files = [f for f in files if f in changed]
    if root is None:
        root = find_project_root(files[0] if files else Path.cwd())
    if baseline is None:
        baseline = (
            load_baseline(root / BASELINE_FILENAME) if use_baseline else Baseline()
        )

    registry = all_rules()
    file_rules = registry.file_rules()
    project_rules = registry.project_rules()
    if packs is not None:
        wanted = set(packs)
        unknown = sorted(wanted - set(ALL_PACKS))
        if unknown:
            raise ValueError(
                f"unknown rule pack(s): {', '.join(unknown)} "
                f"(known: {', '.join(ALL_PACKS)})"
            )
        file_rules = tuple(r for r in file_rules if r.pack in wanted)
        project_rules = tuple(r for r in project_rules if r.pack in wanted)
    if changed_files is not None:
        project_rules = ()

    sources: list[SourceFile] = []
    findings: list[Finding] = []
    checks = 0
    for path in files:
        loaded = _load_file(path, root)
        checks += 1  # the parse itself is the R000 check
        if isinstance(loaded, Finding):
            findings.append(loaded)
        else:
            sources.append(loaded)

    for source in sources:
        for file_rule in file_rules:
            checks += 1
            findings.extend(file_rule.check(source))

    project = Project(root=root, files=tuple(sources))
    for project_rule in project_rules:
        checks += 1
        findings.extend(project_rule.check(project))

    marked = _apply_suppressions(findings, sources)
    marked = _apply_baseline(marked, baseline)
    return AnalysisReport(
        findings=marked,
        files=len(files),
        checks=checks,
        duration_seconds=time.perf_counter() - started,
    )


def analyze_source(source: str, filename: str = "fixture.py") -> tuple[Finding, ...]:
    """Run the file-scope rules over an in-memory source text.

    Suppression markers in the text are honored; the baseline and the
    project-scope rules are not involved.  This is the entry point the
    per-rule fixture tests use.
    """
    registry = all_rules()
    try:
        file = SourceFile.parse(Path(filename), filename, source)
    except SyntaxError as exc:
        return (
            Finding(
                code="R000",
                path=filename,
                line=exc.lineno or 0,
                message=f"file does not parse: {exc.msg}",
            ),
        )
    findings: list[Finding] = []
    for file_rule in registry.file_rules():
        findings.extend(file_rule.check(file))
    return _apply_suppressions(findings, [file])
