"""Determinism & parallel-safety rule pack (``R010``–``R015``).

The experiment engine (:mod:`repro.experiments.engine`) fans planning
work across a process pool on top of a content-addressed on-disk cache
(:mod:`repro.experiments.cache`).  That architecture has a contract the
runtime plan verifier cannot check, because it is a property of *code*
rather than of plans: worker functions must be pure (same inputs, same
bytes, in every process), picklable, and must derive cache keys from
deterministically ordered data.  These rules encode the contract:

* ``R010``/``R011`` flag nondeterministic inputs (clocks, RNGs, pids,
  environment reads) anywhere in the library — the worker-reachable set
  is effectively the whole package, and intentional configuration
  boundaries carry inline ``noqa[R011]`` markers with reasons.
* ``R012`` flags lambdas/nested functions submitted to a process pool
  (they fail to pickle, but only at runtime and only on the parallel
  path).
* ``R013``/``R014`` flag order-unstable constructs inside functions that
  build digests or cache keys (set iteration without ``sorted``,
  ``json.dumps`` without ``sort_keys=True``) — set order varies with
  ``PYTHONHASHSEED`` across worker processes.
* ``R015`` flags mutable module-level state: each pool worker gets a
  private copy, so mutations silently diverge between processes.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .findings import Finding
from .rules import SourceFile, rule

#: Exact dotted call targets that are nondeterministic.
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.getpid",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Dotted prefixes whose every call is nondeterministic.
_NONDETERMINISTIC_PREFIXES = ("random.", "secrets.", "numpy.random.")

#: Targets exempt from R010 even under a nondeterministic prefix.
_DETERMINISTIC_EXEMPT = frozenset({"numpy.random.Generator"})

#: Environment-read call targets (R011).
_ENV_READ_CALLS = frozenset(
    {
        "os.getenv",
        "os.environ.get",
        "os.environ.items",
        "os.environ.keys",
        "os.environ.values",
        "os.path.expanduser",
        "pathlib.Path.home",
    }
)

#: Constructors that produce process-pool executors (R012).
_POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Function names that construct digests / cache keys (R013, R014).
_DIGEST_CONTEXT = re.compile(r"digest|fingerprint|canonical|hash|(?:^|_)key")

#: Mutable builtin constructors for R015.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local alias → dotted module/object path from import statements.

    ``import numpy as np`` maps ``np → numpy``; ``from random import
    choice`` maps ``choice → random.choice``; ``from concurrent.futures
    import ProcessPoolExecutor`` maps the class to its dotted path.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
                if a.asname:
                    aliases[a.asname] = a.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name != "*":
                    aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def resolve_call_target(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """Dotted path a call expression resolves to, through import aliases."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id, node.id)
    return ".".join([base, *reversed(parts)])


class _NondeterminismVisitor(ast.NodeVisitor):
    """R010/R011: nondeterministic calls and environment reads."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self.aliases = import_map(file.tree)
        self.findings: list[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        """Classify every call by its resolved dotted target."""
        target = resolve_call_target(node.func, self.aliases)
        if target is not None:
            if target in _ENV_READ_CALLS:
                self.findings.append(
                    self.file.finding(
                        "R011",
                        node,
                        f"environment read {target}(); results now depend on "
                        f"the invoking shell",
                    )
                )
            elif self._is_nondeterministic(target, node):
                self.findings.append(
                    self.file.finding(
                        "R010",
                        node,
                        f"nondeterministic call {target}(); worker outputs "
                        f"must be bit-identical across processes and reruns",
                    )
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        """Flag ``os.environ[...]`` reads (stores are configuration)."""
        if isinstance(node.ctx, ast.Load):
            target = resolve_call_target(node.value, self.aliases)
            if target == "os.environ":
                self.findings.append(
                    self.file.finding(
                        "R011",
                        node,
                        "environment read os.environ[...]; results now "
                        "depend on the invoking shell",
                    )
                )
        self.generic_visit(node)

    @staticmethod
    def _is_nondeterministic(target: str, node: ast.Call) -> bool:
        if target in _DETERMINISTIC_EXEMPT:
            return False
        if target in _NONDETERMINISTIC_CALLS:
            return True
        for prefix in _NONDETERMINISTIC_PREFIXES:
            if target.startswith(prefix):
                # A seeded default_rng(seed) is deterministic.
                if target.endswith("default_rng") and (node.args or node.keywords):
                    return False
                return True
        return False


@rule("R010")
def check_nondeterministic_calls(file: SourceFile) -> Iterator[Finding]:
    """Flag clock/RNG/pid calls that break run-to-run determinism."""
    visitor = _NondeterminismVisitor(file)
    visitor.visit(file.tree)
    yield from (f for f in visitor.findings if f.code == "R010")


@rule("R011")
def check_environment_reads(file: SourceFile) -> Iterator[Finding]:
    """Flag ambient environment reads outside configuration boundaries."""
    visitor = _NondeterminismVisitor(file)
    visitor.visit(file.tree)
    yield from (f for f in visitor.findings if f.code == "R011")


class _PoolSubmitVisitor(ast.NodeVisitor):
    """R012: lambdas/nested defs handed to process-pool submit/map."""

    def __init__(self, file: SourceFile) -> None:
        self.file = file
        self.aliases = import_map(file.tree)
        self.pool_names: set[str] = set()
        self.nested_defs: set[str] = set()
        self.findings: list[Finding] = []
        self._depth = 0

    def _is_pool_ctor(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        target = resolve_call_target(value.func, self.aliases)
        return target in _POOL_CONSTRUCTORS if target else False

    def visit_Assign(self, node: ast.Assign) -> None:
        """Track ``pool = ProcessPoolExecutor(...)`` bindings."""
        if self._is_pool_ctor(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.pool_names.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        """Track ``with ProcessPoolExecutor(...) as pool`` bindings."""
        for item in node.items:
            if self._is_pool_ctor(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self.pool_names.add(item.optional_vars.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record nested function definitions (unpicklable by pools)."""
        if self._depth > 0:
            self.nested_defs.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Treat async defs like regular ones."""
        if self._depth > 0:
            self.nested_defs.add(node.name)
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        """Flag unpicklable first arguments of pool submit/map calls."""
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in ("submit", "map")
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in self.pool_names
            and node.args
        ):
            candidate = node.args[0]
            if isinstance(candidate, ast.Lambda):
                self.findings.append(
                    self.file.finding(
                        "R012",
                        node,
                        f"lambda submitted to process pool "
                        f"'{node.func.value.id}.{node.func.attr}'; lambdas do "
                        f"not pickle — use a module-level function",
                    )
                )
            elif (
                isinstance(candidate, ast.Name) and candidate.id in self.nested_defs
            ):
                self.findings.append(
                    self.file.finding(
                        "R012",
                        node,
                        f"nested function '{candidate.id}' submitted to "
                        f"process pool '{node.func.value.id}.{node.func.attr}'; "
                        f"nested functions do not pickle — hoist it to module "
                        f"level",
                    )
                )
        self.generic_visit(node)


@rule("R012")
def check_pool_submissions(file: SourceFile) -> Iterator[Finding]:
    """Flag unpicklable callables handed to process pools."""
    visitor = _PoolSubmitVisitor(file)
    # Two passes: bindings/nested defs may appear after the call site.
    visitor.visit(file.tree)
    visitor.findings.clear()
    visitor.visit(file.tree)
    # The second pass records pool names / nested defs twice; findings were
    # cleared in between, so each violation is reported exactly once.
    yield from visitor.findings


def _digest_functions(tree: ast.Module) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function whose name marks it as digest/key construction."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _DIGEST_CONTEXT.search(node.name.lower()):
                yield node


def _is_set_expr(node: ast.expr) -> bool:
    """Whether an expression evidently evaluates to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule("R013")
def check_unordered_digest_iteration(file: SourceFile) -> Iterator[Finding]:
    """Flag set iteration without sorted() inside digest construction."""
    for func in _digest_functions(file.tree):
        for node in ast.walk(func):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield file.finding(
                        "R013",
                        node,
                        f"iteration over an unordered set in digest function "
                        f"'{func.name}'; wrap it in sorted() — set order "
                        f"varies with PYTHONHASHSEED across processes",
                    )


@rule("R014")
def check_unsorted_json_digest(file: SourceFile) -> Iterator[Finding]:
    """Flag json.dumps without sort_keys=True in digest construction."""
    aliases = import_map(file.tree)
    for func in _digest_functions(file.tree):
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node.func, aliases)
            if target != "json.dumps":
                continue
            sorts = any(
                kw.arg == "sort_keys"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            )
            if not sorts:
                yield file.finding(
                    "R014",
                    node,
                    f"json.dumps in digest function '{func.name}' must pass "
                    f"sort_keys=True so dict order cannot leak into keys",
                )


def _frozen_dataclasses(tree: ast.Module) -> tuple[set[str], set[str]]:
    """Same-module dataclass names, split into (frozen, mutable)."""
    frozen: set[str] = set()
    mutable: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for deco in node.decorator_list:
            name = None
            is_frozen = False
            if isinstance(deco, ast.Name):
                name = deco.id
            elif isinstance(deco, ast.Call):
                if isinstance(deco.func, ast.Name):
                    name = deco.func.id
                is_frozen = any(
                    kw.arg == "frozen"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in deco.keywords
                )
            if name == "dataclass":
                (frozen if is_frozen else mutable).add(node.name)
    return frozen, mutable


@rule("R015")
def check_module_level_mutable_state(file: SourceFile) -> Iterator[Finding]:
    """Flag lowercase module-level bindings of evidently mutable values."""
    _, mutable_dataclasses = _frozen_dataclasses(file.tree)
    for node in file.tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name == name.upper():  # ALL_CAPS: constant by convention
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # dunders (__all__ etc.) are interpreter metadata
            value = node.value
            reason = None
            if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                reason = "a mutable literal"
            elif isinstance(value, ast.Call):
                called = None
                if isinstance(value.func, ast.Name):
                    called = value.func.id
                elif isinstance(value.func, ast.Attribute):
                    called = value.func.attr
                if called in _MUTABLE_CONSTRUCTORS:
                    reason = f"a mutable {called}()"
                elif called in mutable_dataclasses:
                    reason = f"a non-frozen dataclass {called}()"
            if reason is not None:
                yield file.finding(
                    "R015",
                    node,
                    f"module-level name '{name}' binds {reason}; pool "
                    f"workers copy module state, so mutations diverge "
                    f"between processes",
                )
