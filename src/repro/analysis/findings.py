"""Finding and report types of the source static analyzer.

A :class:`Finding` is the static-analysis sibling of
:class:`repro.verify.diagnostics.Diagnostic`: one violated source-level
invariant, carrying a stable ``R0xx`` code from the
:mod:`repro.analysis.codes` catalog and a file/line anchor.  Findings
aggregate into an :class:`AnalysisReport`; a report whose *active* set is
empty (nothing unsuppressed and unbaselined) means the analyzed sources
satisfy every rule.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Iterator

from ..verify.diagnostics import Severity
from .codes import RULE_PACKS, RULE_TITLES, WARNING_CODES


def severity_of(code: str) -> Severity:
    """Catalog severity of a rule code (``WARNING`` for hazard rules)."""
    return Severity.WARNING if code in WARNING_CODES else Severity.ERROR


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a source location.

    Attributes
    ----------
    code:
        Stable identifier from the catalog (``"R001"`` … — see
        :data:`repro.analysis.codes.RULE_TITLES`).
    path:
        Project-relative path of the offending file (``/``-separated).
    line:
        1-based line the finding anchors to (0 for whole-file findings).
    message:
        Human-readable, single-line statement of the violation.
    severity:
        :class:`~repro.verify.diagnostics.Severity` from the catalog.
    suppressed:
        True when an inline ``# repro: noqa[Rxxx]`` covers the finding.
    baselined:
        True when the committed baseline file grandfathers the finding.
    snippet:
        Text of the anchored source line (empty for whole-file or
        out-of-source findings); the normalized snippet is what the
        baseline fingerprint hashes.
    """

    code: str
    path: str
    line: int
    message: str
    severity: Severity = Severity.ERROR
    suppressed: bool = False
    baselined: bool = False
    snippet: str = ""

    def __post_init__(self) -> None:
        if self.code not in RULE_TITLES:
            raise ValueError(f"unknown rule code {self.code!r}")

    @property
    def title(self) -> str:
        """Catalog title of the code (e.g. ``"byte/element unit mix"``)."""
        return RULE_TITLES[self.code]

    @property
    def pack(self) -> str:
        """Rule pack the code belongs to (``"units"``, …)."""
        return RULE_PACKS[self.code]

    @property
    def active(self) -> bool:
        """Whether the finding still gates (not suppressed, not baselined)."""
        return not (self.suppressed or self.baselined)

    def normalized_snippet(self) -> str:
        """The anchored source line with whitespace collapsed.

        Normalization makes the fingerprint robust to re-indentation
        and formatting-only edits; an empty snippet (whole-file or
        out-of-source findings) falls back to the message text so every
        finding still fingerprints deterministically.
        """
        collapsed = " ".join(self.snippet.split())
        return collapsed if collapsed else self.message

    def fingerprint(self) -> str:
        """Content-based identity used by the baseline file.

        Hashes rule code, file path and the *normalized source snippet*
        — not the line number and not the message — so baselined
        findings survive unrelated edits above them (line shifts) and
        message-wording tweaks, and re-arm only when the offending code
        itself changes.
        """
        body = f"{self.code}|{self.path}|{self.normalized_snippet()}"
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def render(self) -> str:
        """One-line rendering: ``path:line: R001 [error] message``."""
        flags = ""
        if self.suppressed:
            flags = " (suppressed)"
        elif self.baselined:
            flags = " (baselined)"
        return (
            f"{self.path}:{self.line}: {self.code} "
            f"[{self.severity.value}]{flags}: {self.message}"
        )


@dataclass(frozen=True)
class AnalysisReport:
    """Outcome of one analysis run over a set of source files.

    ``checks`` counts rule×file evaluations performed (project rules count
    once each), so "zero findings" is distinguishable from "nothing ran".
    ``duration_seconds`` is the analysis wall time — the CI gate budgets
    it so the whole-program passes cannot silently rot lint latency.
    """

    findings: tuple[Finding, ...] = ()
    files: int = 0
    checks: int = 0
    duration_seconds: float = 0.0

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    @property
    def active(self) -> tuple[Finding, ...]:
        """Findings that still gate (neither suppressed nor baselined)."""
        return tuple(f for f in self.findings if f.active)

    @property
    def active_errors(self) -> tuple[Finding, ...]:
        """Active findings with error severity."""
        return tuple(f for f in self.active if f.severity is Severity.ERROR)

    @property
    def suppressed(self) -> tuple[Finding, ...]:
        """Findings silenced by inline ``noqa`` comments."""
        return tuple(f for f in self.findings if f.suppressed)

    @property
    def baselined(self) -> tuple[Finding, ...]:
        """Findings grandfathered by the committed baseline."""
        return tuple(f for f in self.findings if f.baselined)

    def ok(self, strict: bool = False) -> bool:
        """Whether the run gates clean.

        Default mode fails on active errors only; ``strict`` also fails
        on active warnings (the CI configuration).
        """
        return not (self.active if strict else self.active_errors)

    def counts(self) -> dict[str, int]:
        """Summary counters (errors/warnings are *active* counts)."""
        return {
            "checks": self.checks,
            "files": self.files,
            "errors": len(self.active_errors),
            "warnings": len(self.active) - len(self.active_errors),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }

    def render(self, *, show_silenced: bool = False) -> str:
        """Multi-line human-readable report."""
        c = self.counts()
        status = "OK" if self.ok(strict=True) else "FINDINGS"
        head = (
            f"repro lint: {status} ({c['files']} files, {c['checks']} checks, "
            f"{c['errors']} errors, {c['warnings']} warnings, "
            f"{c['suppressed']} suppressed, {c['baselined']} baselined, "
            f"wall time {self.duration_seconds:.2f}s)"
        )
        shown = self.findings if show_silenced else self.active
        ordered = sorted(shown, key=lambda f: (f.path, f.line, f.code))
        return "\n".join([head, *(f"  {f.render()}" for f in ordered)])

    def with_flags(
        self,
        *,
        suppressed: set[tuple[str, int, str]] | None = None,
        baselined: set[str] | None = None,
    ) -> "AnalysisReport":
        """Return a copy with suppression/baseline flags applied.

        ``suppressed`` holds ``(path, line, code)`` triples covered by
        inline noqa comments; ``baselined`` holds fingerprints from the
        baseline file.
        """
        updated = []
        for f in self.findings:
            if suppressed and (f.path, f.line, f.code) in suppressed:
                f = replace(f, suppressed=True)
            elif baselined and f.fingerprint() in baselined:
                f = replace(f, baselined=True)
            updated.append(f)
        return replace(self, findings=tuple(updated))
