"""Value-range / overflow prover rule pack (``R070``–``R074``, project scope).

An interval abstract interpreter (:mod:`repro.analysis.interval`) over
the estimator/plancore arithmetic.  Every function body is interpreted
once: locals carry :class:`~repro.analysis.interval.Abstract` values
seeded from the declared spec bounds (:mod:`repro.arch.bounds`), NumPy
array creations with explicit ``dtype=`` keywords enter the fixed-width
world, and the transfer functions over-approximate — so a clean run is a
*proof* that the ``int64`` closed forms cannot wrap for any spec/model
the runtime validators accept.

Rules
-----
* **R070** — an ``int64`` NumPy intermediate whose worst-case interval
  reaches ``2**63`` (or cannot be bounded by a growing operation on
  bounded operands): the proof failed; the finding carries the offending
  expression and its worst-case bound.
* **R071** — a batch expression silently promotes to float (true
  division / float operands) and is then bound to an integer-unit name
  (``*_bytes``, ``*_elems``, …): the float creeps into exact Eq. (1)
  arithmetic wearing an integer label.  Warning — promotion *into a
  float-named quantity* is the documented latency/energy boundary.
* **R072** — an integer-unit quantity whose bound exceeds ``2**53``
  flows through float64 (true division, ``float()``) and is then
  *treated as exact again* — bound to an integer-unit name or rounded
  back with ``int(...)``: above ``2**53`` float64 cannot represent
  every integer, so the exactness the label promises is silently lost.
  (A float used as a float — a ratio, a percentage — is fine and does
  not fire.)
* **R073** — a binary NumPy operation mixes two arrays of *declared*
  conflicting dtypes (``dtype=np.int64`` meets ``dtype=np.float64``):
  the promotion rules decide the result dtype silently.  Both dtypes
  must come from explicit ``dtype=``/``astype`` declarations; inferred
  families never fire.
* **R074** — a division whose divisor is an integer-unit quantity whose
  interval includes zero, with no guard (``if``/``assert``/ternary test
  or ``max(1, …)``) in the function: validated spec fields are seeded
  positive, so this only fires on derived divisors that genuinely can
  be zero.

Like the unit-flow pack, interprocedural facts travel through function
summaries propagated to a fixpoint over the call graph — a helper whose
return value the interpreter can bound tightens every caller's proof.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .callgraph import CallGraph, FunctionInfo
from .findings import Finding
from .interval import (
    FLOAT64_EXACT_LIMIT,
    INF,
    INT64_LIMIT,
    NONNEG,
    TOP,
    Abstract,
    Interval,
    LENGTH_BOUNDS,
    is_integer_unit_name,
    join_abstract,
    seed_interval,
    terminal_name,
)
from .rules import Project, SourceFile, rule
from .unitflow import _own_statements, _walk_no_defs

#: ``dtype=`` keyword values (terminal names) → dtype family.
_DTYPE_FAMILIES: dict[str, str] = {
    "int64": "int",
    "int32": "int",
    "int16": "int",
    "int8": "int",
    "intp": "int",
    "uint64": "int",
    "int_": "int",
    "float64": "float",
    "float32": "float",
    "float16": "float",
    "float_": "float",
    "bool_": "bool",
    "bool": "bool",
}

#: NumPy array constructors whose first argument supplies the elements.
_ARRAY_FROM_DATA = frozenset({"array", "asarray"})

#: NumPy array constructors that fill with a known constant.
_ARRAY_FILLED = {"zeros": 0, "ones": 1}


def _dtype_family(expr: ast.expr) -> str | None:
    """Dtype family a ``dtype=`` keyword value declares, if known."""
    name = terminal_name(expr)
    if name is not None:
        return _DTYPE_FAMILIES.get(name)
    if isinstance(expr, ast.Constant) and expr.value in (int, float, bool):
        return None
    return None


def _call_dtype(call: ast.Call) -> str | None:
    for kw in call.keywords:
        if kw.arg == "dtype":
            return _dtype_family(kw.value)
    return None


@dataclass(frozen=True)
class _Hit:
    """One rule hit found while interpreting a function."""

    kind: str  # "overflow" | "promotion" | "precision" | "dtype" | "divzero"
    file: SourceFile
    node: ast.AST
    qualname: str
    message: str


class RangeFlow:
    """Shared interval-interpretation state for the R070–R074 checkers."""

    #: Fixpoint passes over function summaries (callee bounds feed
    #: caller expressions feed summaries).
    _PASSES = 2

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        #: id(Call node) → resolved callee qualname.
        self.call_targets: dict[int, str] = {}
        for sites in graph.callsites.values():
            for callee, call, _file in sites:
                self.call_targets[id(call)] = callee
        #: qualname → summarized return value.
        self.summaries: dict[str, Abstract] = {}
        self.hits: list[_Hit] = []
        for _ in range(self._PASSES):
            changed = False
            self.hits = []
            for qualname, info in sorted(graph.functions.items()):
                summary = self._interpret(qualname, info)
                if self.summaries.get(qualname) != summary:
                    self.summaries[qualname] = summary
                    changed = True
            if not changed:
                break

    # -- function interpretation -----------------------------------------

    def _interpret(self, qualname: str, info: FunctionInfo) -> Abstract:
        """Interpret one function; record hits; return its summary."""
        env: dict[str, Abstract] = {}
        for param in info.param_names():
            seeded = seed_interval(param)
            if seeded is not None:
                env[param] = Abstract.of(seeded)
        guarded = _guarded_names(info.node)
        returned: Abstract | None = None
        for stmt in _own_statements(info.node):
            self._check_stmt(stmt, env, guarded, info, qualname)
            self._bind_stmt(stmt, env, info, qualname)
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = self._value_of(stmt.value, env, info, qualname)
                if isinstance(value, Abstract):
                    returned = (
                        value
                        if returned is None
                        else join_abstract(returned, value)
                    )
        if returned is None or returned.interval.is_top:
            declared = seed_interval(info.name)
            if declared is not None:
                return Abstract.of(declared)
        return returned if returned is not None else TOP

    def _bind_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> None:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        elif isinstance(stmt, ast.AugAssign):
            # ``arr[...] -= x`` / ``name += x``: widen the binding.
            current = self._value_of(stmt.target, env, info, qualname)
            delta = self._value_of(stmt.value, env, info, qualname)
            combined = self._binop_value(stmt.op, current, delta, stmt, env, info, qualname)
            root = stmt.target
            while isinstance(root, ast.Subscript):
                root = root.value
            if isinstance(root, ast.Name) and isinstance(combined, Abstract):
                base = env.get(root.id)
                if base is not None:
                    env[root.id] = base.with_interval(
                        base.interval.join(combined.interval)
                    )
                else:
                    env[root.id] = combined
            return
        if value is None:
            return
        inferred = self._value_of(value, env, info, qualname)
        for target in targets:
            if isinstance(target, ast.Name) and isinstance(inferred, Abstract):
                env[target.id] = inferred
            elif isinstance(target, ast.Tuple) and isinstance(inferred, tuple):
                for sub, part in zip(target.elts, inferred):
                    if isinstance(sub, ast.Name) and isinstance(part, Abstract):
                        env[sub.id] = part

    # -- expression abstraction ------------------------------------------

    def _value_of(
        self,
        node: ast.expr,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> "Abstract | tuple[Abstract, ...]":
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            seeded = seed_interval(node.id)
            return Abstract.of(seeded) if seeded is not None else TOP
        if isinstance(node, ast.Attribute):
            seeded = seed_interval(node.attr)
            return Abstract.of(seeded) if seeded is not None else TOP
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Abstract(interval=Interval(0, 1), dtype="bool")
            if isinstance(node.value, int):
                return Abstract(interval=Interval.const(node.value), dtype="int")
            if isinstance(node.value, float):
                return Abstract(
                    interval=Interval.const(node.value), dtype="float"
                )
            return TOP
        if isinstance(node, ast.Tuple):
            parts = []
            for elt in node.elts:
                part = self._value_of(elt, env, info, qualname)
                parts.append(part if isinstance(part, Abstract) else TOP)
            return tuple(parts)
        if isinstance(node, ast.Call):
            return self._call_value(node, env, info, qualname)
        if isinstance(node, ast.BinOp):
            left = self._value_of(node.left, env, info, qualname)
            right = self._value_of(node.right, env, info, qualname)
            return self._binop_value(node.op, left, right, node, env, info, qualname)
        if isinstance(node, ast.UnaryOp):
            operand = self._value_of(node.operand, env, info, qualname)
            if isinstance(operand, Abstract) and isinstance(node.op, ast.USub):
                return operand.with_interval(operand.interval.neg())
            return operand if isinstance(operand, Abstract) else TOP
        if isinstance(node, ast.IfExp):
            left = self._value_of(node.body, env, info, qualname)
            right = self._value_of(node.orelse, env, info, qualname)
            if isinstance(left, Abstract) and isinstance(right, Abstract):
                return join_abstract(left, right)
            return TOP
        if isinstance(node, ast.Subscript):
            base = self._value_of(node.value, env, info, qualname)
            if isinstance(base, Abstract):
                # Element or slice of an array: same interval and dtype.
                return base
            return TOP
        if isinstance(node, ast.NamedExpr):
            return self._value_of(node.value, env, info, qualname)
        if isinstance(node, (ast.List, ast.ListComp)):
            return self._list_value(node, env, info, qualname)
        return TOP

    def _list_value(
        self,
        node: "ast.List | ast.ListComp",
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> Abstract:
        """Abstract a list literal / comprehension (an array's payload)."""
        if isinstance(node, ast.List):
            elems: Abstract | None = None
            for elt in node.elts:
                value = self._value_of(elt, env, info, qualname)
                if isinstance(value, Abstract):
                    elems = value if elems is None else join_abstract(elems, value)
            if elems is None:
                return Abstract(interval=Interval.top(), length_hi=len(node.elts))
            return Abstract(
                interval=elems.interval,
                dtype=elems.dtype,
                length_hi=len(node.elts),
                is_array=True,
            )
        gen = node.generators[0]
        length_hi: int | float = INF
        iter_name = terminal_name(gen.iter)
        if iter_name is not None and iter_name in LENGTH_BOUNDS:
            length_hi = LENGTH_BOUNDS[iter_name]
        elt = self._value_of(node.elt, env, info, qualname)
        if not isinstance(elt, Abstract):
            elt = TOP
        return Abstract(
            interval=elt.interval,
            dtype=elt.dtype,
            length_hi=length_hi,
            is_array=True,
        )

    def _call_value(
        self,
        node: ast.Call,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> "Abstract | tuple[Abstract, ...]":
        name = terminal_name(node.func)
        # NumPy constructors with declared dtypes enter the fixed world.
        if name in _ARRAY_FROM_DATA and node.args:
            payload = self._value_of(node.args[0], env, info, qualname)
            if not isinstance(payload, Abstract):
                payload = TOP
            declared = _call_dtype(node)
            dtype = declared or payload.dtype
            value = Abstract(
                interval=payload.interval,
                dtype=dtype,
                dtype_declared=declared is not None or payload.dtype_declared,
                is_np=True,
                is_array=True,
                length_hi=payload.length_hi,
            )
            return self._check_int64(value, node, env, info, qualname, creation=True)
        if name in _ARRAY_FILLED:
            fill = _ARRAY_FILLED[name]
            assert isinstance(name, str)
            declared = _call_dtype(node)
            return Abstract(
                interval=Interval.const(fill),
                dtype=declared,
                dtype_declared=declared is not None,
                is_np=True,
                is_array=True,
            )
        if name == "full" and len(node.args) >= 2:
            fill_value = self._value_of(node.args[1], env, info, qualname)
            interval = (
                fill_value.interval
                if isinstance(fill_value, Abstract)
                else Interval.top()
            )
            declared = _call_dtype(node)
            return Abstract(
                interval=interval,
                dtype=declared,
                dtype_declared=declared is not None,
                is_np=True,
                is_array=True,
            )
        if name in ("maximum", "minimum") and len(node.args) == 2:
            left = self._value_of(node.args[0], env, info, qualname)
            right = self._value_of(node.args[1], env, info, qualname)
            if isinstance(left, Abstract) and isinstance(right, Abstract):
                joined = join_abstract(left, right)
                interval = (
                    left.interval.max_with(right.interval)
                    if name == "maximum"
                    else left.interval.min_with(right.interval)
                )
                return joined.with_interval(interval)
            return TOP
        if name == "where" and len(node.args) == 3:
            left = self._value_of(node.args[1], env, info, qualname)
            right = self._value_of(node.args[2], env, info, qualname)
            if isinstance(left, Abstract) and isinstance(right, Abstract):
                return join_abstract(left, right)
            return TOP
        if name == "sum" and isinstance(node.func, ast.Attribute) and not node.args:
            base = self._value_of(node.func.value, env, info, qualname)
            if isinstance(base, Abstract):
                summed = replace_array_sum(base)
                return self._check_int64(summed, node, env, info, qualname)
            return TOP
        if name == "copy" and isinstance(node.func, ast.Attribute):
            base = self._value_of(node.func.value, env, info, qualname)
            return base if isinstance(base, Abstract) else TOP
        if name == "astype" and isinstance(node.func, ast.Attribute) and node.args:
            base = self._value_of(node.func.value, env, info, qualname)
            family = _dtype_family(node.args[0])
            if isinstance(base, Abstract):
                return Abstract(
                    interval=base.interval,
                    dtype=family,
                    dtype_declared=family is not None,
                    is_np=True,
                    is_array=base.is_array,
                    length_hi=base.length_hi,
                )
            return TOP
        if name == "int" and node.args:
            base = self._value_of(node.args[0], env, info, qualname)
            if isinstance(base, Abstract):
                # ``int(<float expr>)`` treats the float as an exact
                # integer again — the R072 precision trap closes here.
                if base.dtype == "float":
                    big = self._big_exact_operand(node.args[0], env, info, qualname)
                    if big is not None:
                        self._check_precision(
                            big[0], big[1], node, info, qualname,
                            context="an int(...) round-trip",
                        )
                # Back to Python's arbitrary-precision world.
                return Abstract(interval=base.interval, dtype="int")
            return TOP
        if name == "float" and node.args:
            base = self._value_of(node.args[0], env, info, qualname)
            if isinstance(base, Abstract):
                return Abstract(interval=base.interval, dtype="float")
            return TOP
        if name in ("len",):
            return Abstract(interval=NONNEG, dtype="int")
        if name in ("min", "max") and node.args:
            joined: Abstract | None = None
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    return TOP
                value = self._value_of(arg, env, info, qualname)
                if isinstance(value, Abstract):
                    joined = (
                        value if joined is None else join_abstract(joined, value)
                    )
            return joined if joined is not None else TOP
        if name == "abs" and node.args:
            base = self._value_of(node.args[0], env, info, qualname)
            if isinstance(base, Abstract):
                hi = max(abs(base.interval.lo), abs(base.interval.hi))
                return base.with_interval(Interval(0, hi))
            return TOP
        callee = self.call_targets.get(id(node))
        if callee is not None and callee in self.summaries:
            return self.summaries[callee]
        # Unresolved call: fall back to the declared suffix of its name.
        seeded = seed_interval(name)
        if seeded is not None:
            return Abstract.of(seeded)
        return TOP

    def _binop_value(
        self,
        op: ast.operator,
        left: "Abstract | tuple[Abstract, ...]",
        right: "Abstract | tuple[Abstract, ...]",
        node: ast.AST,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> Abstract:
        if not isinstance(left, Abstract) or not isinstance(right, Abstract):
            return TOP
        li, ri = left.interval, right.interval
        if isinstance(op, ast.Add):
            interval = li.add(ri)
        elif isinstance(op, ast.Sub):
            interval = li.sub(ri)
        elif isinstance(op, ast.Mult):
            interval = li.mul(ri)
        elif isinstance(op, ast.FloorDiv):
            interval = li.floordiv(ri)
        elif isinstance(op, ast.Div):
            interval = li.floordiv(ri)  # magnitude bound is the same hull
        elif isinstance(op, ast.Mod):
            interval = ri.join(ri.neg()) if ri.bounded else Interval.top()
        elif isinstance(op, ast.Pow):
            interval = Interval.top()
        else:
            interval = Interval.top()
        is_np = left.is_np or right.is_np
        is_array = left.is_array or right.is_array
        if isinstance(op, ast.Div):
            dtype: str | None = "float"
        elif left.dtype == right.dtype:
            dtype = left.dtype
        elif left.dtype is None or right.dtype is None:
            dtype = left.dtype or right.dtype
        else:
            dtype = "float" if "float" in (left.dtype, right.dtype) else None
        result = Abstract(
            interval=interval,
            dtype=dtype,
            dtype_declared=left.dtype_declared
            and right.dtype_declared
            and not isinstance(op, ast.Div),
            is_np=is_np,
            is_array=is_array,
            length_hi=min(left.length_hi, right.length_hi)
            if is_array
            else INF,
            tainted=left.tainted or right.tainted,
        )
        if is_np and dtype == "int" and not isinstance(op, ast.Div):
            growing = isinstance(op, (ast.Mult, ast.Pow))
            result = self._check_int64(
                result,
                node,
                env,
                info,
                qualname,
                growing_on_bounded=growing
                and (li.bounded or ri.bounded)
                and not (li.bounded and ri.bounded),
            )
        return result

    # -- hit recording ----------------------------------------------------

    def _check_int64(
        self,
        value: Abstract,
        node: ast.AST,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
        *,
        creation: bool = False,
        growing_on_bounded: bool = False,
    ) -> Abstract:
        """Record an R070 hit when an int64 value's proof fails."""
        if value.dtype != "int" or not value.is_np or value.tainted:
            return value
        interval = value.interval
        overflow = (
            interval.hi >= INT64_LIMIT or interval.lo <= -INT64_LIMIT
        ) and interval.bounded
        unprovable = growing_on_bounded and not interval.bounded
        if creation and not interval.bounded:
            # Arrays built from entirely unknown data: provenance is
            # outside the closed forms; the arithmetic rules take over
            # once a bounded operand meets them.
            return value
        if overflow or unprovable:
            bound = interval.describe()
            reason = (
                f"worst-case bound {bound} reaches 2**63"
                if overflow
                else "its worst case cannot be bounded over the declared spec space"
            )
            self.hits.append(
                _Hit(
                    kind="overflow",
                    file=info.file,
                    node=node,
                    qualname=qualname,
                    message=(
                        f"int64 intermediate {_src(node)} in {qualname}() is "
                        f"not provably below 2**63: {reason}; NumPy int64 "
                        f"wraps silently, so tighten repro.arch.bounds or "
                        f"restructure the expression"
                    ),
                )
            )
            return replace_tainted(value)
        return value

    def _big_exact_operand(
        self,
        expr: ast.expr,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> "tuple[str, Interval] | None":
        """An integer-unit operand in ``expr`` provably wider than 2**53."""
        for node in _walk_no_defs(expr):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            name = terminal_name(node)
            if not is_integer_unit_name(name):
                continue
            value = self._value_of(node, env, info, qualname)
            if (
                isinstance(value, Abstract)
                and FLOAT64_EXACT_LIMIT < value.interval.hi < INF
            ):
                assert name is not None
                return name, value.interval
        return None

    def _check_precision(
        self,
        name: str,
        interval: Interval,
        node: ast.AST,
        info: FunctionInfo,
        qualname: str,
        *,
        context: str,
    ) -> None:
        """Record an R072 hit: a >2**53 exact quantity treated as exact
        again after passing through float64."""
        self.hits.append(
            _Hit(
                kind="precision",
                file=info.file,
                node=node,
                qualname=qualname,
                message=(
                    f"integer quantity '{name}' (bound {interval.describe()}) "
                    f"passes through float64 and is treated as exact again "
                    f"via {context} in {qualname}(); above 2**53 float64 "
                    f"stops representing every integer — keep the "
                    f"computation in exact integer arithmetic"
                ),
            )
        )

    def _check_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, Abstract],
        guarded: set[str],
        info: FunctionInfo,
        qualname: str,
    ) -> None:
        """Record promotion/precision/dtype/divzero hits in one statement."""
        # R071: integer-unit target bound to a promoted float expression.
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is not None:
            inferred = self._value_of(value, env, info, qualname)
            if isinstance(inferred, Abstract) and inferred.dtype == "float":
                big = self._big_exact_operand(value, env, info, qualname)
                for target in targets:
                    if not (
                        isinstance(target, ast.Name)
                        and is_integer_unit_name(target.id)
                    ):
                        continue
                    if big is not None:
                        # R072: the lossy float lands back under an
                        # integer-unit label — exactness silently lost.
                        self._check_precision(
                            big[0], big[1], stmt, info, qualname,
                            context=f"the integer-unit binding '{target.id}'",
                        )
                    elif inferred.is_np:
                        self.hits.append(
                            _Hit(
                                kind="promotion",
                                file=info.file,
                                node=stmt,
                                qualname=qualname,
                                message=(
                                    f"'{target.id}' declares an exact integer "
                                    f"unit but is bound to a float-promoted "
                                    f"batch expression ({_src(value)}) in "
                                    f"{qualname}(); keep Eq. (1) capacity "
                                    f"arithmetic in int64 or rename the "
                                    f"binding to a float quantity"
                                ),
                            )
                        )
        for node in _walk_no_defs(stmt):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Div, ast.FloorDiv, ast.Mod)
            ):
                self._check_divisor_zero(
                    node, node.right, env, guarded, info, qualname
                )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                self._check_dtype_mix(node, env, info, qualname)

    def _check_divisor_zero(
        self,
        node: ast.BinOp,
        divisor: ast.expr,
        env: dict[str, Abstract],
        guarded: set[str],
        info: FunctionInfo,
        qualname: str,
    ) -> None:
        name = terminal_name(divisor)
        if name is None or name in guarded:
            return
        if _is_guarded_expr(divisor):
            return
        interval: Interval | None = None
        value = self._value_of(divisor, env, info, qualname)
        if isinstance(value, Abstract) and not value.interval.is_top:
            interval = value.interval
        if interval is None:
            if not is_integer_unit_name(name):
                return
            interval = NONNEG
        if not interval.contains_zero():
            return
        if not is_integer_unit_name(name) and seed_interval(name) is None:
            return
        self.hits.append(
            _Hit(
                kind="divzero",
                file=info.file,
                node=node,
                qualname=qualname,
                message=(
                    f"division by '{name}' in {qualname}() whose interval "
                    f"{interval.describe()} includes zero and no guard "
                    f"dominates it; validate it positive (or branch) before "
                    f"dividing"
                ),
            )
        )

    def _check_dtype_mix(
        self,
        node: ast.BinOp,
        env: dict[str, Abstract],
        info: FunctionInfo,
        qualname: str,
    ) -> None:
        left = self._value_of(node.left, env, info, qualname)
        right = self._value_of(node.right, env, info, qualname)
        if not isinstance(left, Abstract) or not isinstance(right, Abstract):
            return
        if not (left.is_np and left.is_array and right.is_np and right.is_array):
            return
        if not (left.dtype_declared and right.dtype_declared):
            return
        if left.dtype is None or right.dtype is None:
            return
        if left.dtype != right.dtype:
            self.hits.append(
                _Hit(
                    kind="dtype",
                    file=info.file,
                    node=node,
                    qualname=qualname,
                    message=(
                        f"NumPy operation {_src(node)} in {qualname}() mixes "
                        f"declared dtypes ({left.dtype} vs {right.dtype}); "
                        f"the silent promotion decides the result dtype — "
                        f"cast explicitly at the boundary"
                    ),
                )
            )


def replace_array_sum(base: Abstract) -> Abstract:
    """Abstract ``arr.sum()``: the element interval scaled by the length."""
    return Abstract(
        interval=base.interval.scaled_sum(base.length_hi),
        dtype=base.dtype,
        is_np=base.is_np,
        is_array=False,
        tainted=base.tainted,
    )


def replace_tainted(value: Abstract) -> Abstract:
    """Mark a value as already reported so parents stay quiet."""
    return Abstract(
        interval=value.interval,
        dtype=value.dtype,
        is_np=value.is_np,
        is_array=value.is_array,
        length_hi=value.length_hi,
        tainted=True,
    )


def _guarded_names(func: ast.AST) -> set[str]:
    """Terminal names tested by any if/assert/while/ternary in a function.

    A divisor whose name is tested anywhere in the function is treated
    as guarded — over-approximate on purpose (R074 is about divisors no
    test dominates at all, the common real bug).
    """
    guarded: set[str] = set()
    for stmt in getattr(func, "body", []):
        for node in _walk_no_defs(stmt):
            test: ast.expr | None = None
            if isinstance(node, (ast.If, ast.While, ast.Assert)):
                test = node.test
            elif isinstance(node, ast.IfExp):
                test = node.test
            if test is None:
                continue
            for sub in ast.walk(test):
                if isinstance(sub, ast.Name):
                    guarded.add(sub.id)
                elif isinstance(sub, ast.Attribute):
                    guarded.add(sub.attr)
    return guarded


def _is_guarded_expr(divisor: ast.expr) -> bool:
    """Whether the divisor expression carries its own positivity guard."""
    if isinstance(divisor, ast.Call):
        name = terminal_name(divisor.func)
        if name == "max" and any(
            isinstance(arg, ast.Constant)
            and isinstance(arg.value, (int, float))
            and arg.value > 0
            for arg in divisor.args
        ):
            return True
    if isinstance(divisor, ast.BoolOp) and isinstance(divisor.op, ast.Or):
        return any(
            isinstance(v, ast.Constant)
            and isinstance(v.value, (int, float))
            and v.value != 0
            for v in divisor.values
        )
    return False


def _src(node: ast.AST) -> str:
    try:
        text = ast.unparse(node)  # type: ignore[arg-type]
    except Exception:
        return "<expr>"
    return text if len(text) <= 60 else text[:57] + "..."


def rangeflow_for(project: Project) -> RangeFlow:
    """The project's value-range state, computed once and cached."""
    graph = project.callgraph()
    cached: RangeFlow | None = getattr(graph, "_rangeflow_cache", None)
    if cached is None:
        cached = RangeFlow(project, graph)
        setattr(graph, "_rangeflow_cache", cached)
    return cached


def _emit(flow: RangeFlow, kind: str, code: str) -> Iterator[Finding]:
    seen: set[tuple[str, int, str]] = set()
    for hit in flow.hits:
        if hit.kind != kind:
            continue
        line = getattr(hit.node, "lineno", 0)
        key = (hit.file.relpath, line, hit.message)
        if key in seen:
            continue
        seen.add(key)
        yield hit.file.finding(code, hit.node, hit.message)


@rule("R070", scope="project")
def check_int64_overflow(project: Project) -> Iterator[Finding]:
    """Flag int64 intermediates not provably below 2**63."""
    yield from _emit(rangeflow_for(project), "overflow", "R070")


@rule("R071", scope="project")
def check_silent_promotion(project: Project) -> Iterator[Finding]:
    """Flag float-promoted batch values bound to integer-unit names."""
    yield from _emit(rangeflow_for(project), "promotion", "R071")


@rule("R072", scope="project")
def check_float64_precision(project: Project) -> Iterator[Finding]:
    """Flag exact integer quantities beyond 2**53 entering float64."""
    yield from _emit(rangeflow_for(project), "precision", "R072")


@rule("R073", scope="project")
def check_dtype_mix(project: Project) -> Iterator[Finding]:
    """Flag NumPy operations over arrays of conflicting declared dtypes."""
    yield from _emit(rangeflow_for(project), "dtype", "R073")


@rule("R074", scope="project")
def check_possibly_zero_divisor(project: Project) -> Iterator[Finding]:
    """Flag unguarded divisions by possibly-zero integer quantities."""
    yield from _emit(rangeflow_for(project), "divzero", "R074")
