"""Thread-root derivation and per-function concurrency facts (``R06x``).

The serving stack runs the same library code from several *thread
contexts* at once: ``ThreadingHTTPServer`` spawns one handler thread per
request, the load generator fans ``ThreadPoolExecutor`` client thunks
out, ``run_server`` parks the accept loop on its own thread, and signal
handlers interrupt whatever is running.  This module derives those
**thread roots** from the AST:

* ``handle_*`` functions and ``do_GET``/``do_POST`` methods — the
  request-handler naming contract (each is *concurrent with itself*:
  ``ThreadingHTTPServer`` runs many instances simultaneously);
* ``threading.Thread(target=...)`` targets;
* callables submitted to a ``ThreadPoolExecutor`` (``submit``/``map``),
  including functions called from ``lambda`` thunks;
* ``signal.signal`` handlers (asynchronous with the main thread);
* ``ProcessPoolExecutor`` initializers and submissions — recorded as
  **process-isolated** roots: they share no memory, so R060 excludes
  them, but R063/R066 still care about where the pools come from.

and, per function, the **facts** the R060–R066 checkers consume: shared
mutable-state writes (module globals, attributes of module-level
singletons, ``self`` attributes of *shared classes* — classes
instantiated at module top level or from a shared class's methods, to a
fixpoint) together with whether each write is lexically inside a
``with``-lock region; lock acquire/release pairing; lock-nesting pairs
(plus locks acquired transitively by callees, for lock-order analysis);
thread starts and process-pool creations in source order; ``O_APPEND``
journal write counts; blocking calls made while a lock is held; and
locally started non-daemon threads that are never joined.

Reachability runs over the call graph *augmented with receiver-blind
method dispatch*: an unresolvable ``x.add(...)`` call may reach any
shared class's ``add`` method.  This deliberate over-approximation is
what lets the handler thread's ``metrics_registry().counter(...).add(1)``
chain reach ``Counter.add`` — the archetypal unlocked shared counter.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .callgraph import CallGraph, _alias_map, _Resolver, module_name
from .determinism_rules import _POOL_CONSTRUCTORS, resolve_call_target
from .rules import Project, SourceFile

#: Thread-pool constructors (shared-memory concurrency).
_THREAD_POOLS = frozenset(
    {
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
    }
)

#: Handler method names the stdlib HTTP server dispatches per request.
_HTTP_VERB_METHODS = frozenset(
    {"do_GET", "do_POST", "do_PUT", "do_DELETE", "do_HEAD", "do_PATCH"}
)

#: Methods where ``self`` writes are construction, not shared mutation
#: (the object is not yet published to other threads).
_CONSTRUCTION_METHODS = frozenset({"__init__", "__post_init__", "__new__"})

#: Calls that block the calling thread (R065's alphabet).
_BLOCKING_CALLS = frozenset(
    {"sleep", "urlopen", "wait", "join", "result", "shutdown"}
)


@dataclass(frozen=True)
class ThreadRoot:
    """One entry point that runs on (or as) a distinct thread context."""

    qualname: str
    kind: str  # "handler" | "thread" | "client" | "signal" | "worker"
    #: Whether several instances of this root run at once (a concurrent
    #: root races *with itself*, so it alone counts as two contexts).
    concurrent: bool
    #: Process-isolated roots (pool workers/initializers) share no
    #: memory with the parent; R060 does not count them.
    isolated: bool


@dataclass(frozen=True)
class SharedWrite:
    """One store to shared mutable state inside a function body."""

    node: ast.AST
    target: str
    protected: bool  # lexically inside a with-lock region


@dataclass(frozen=True)
class LockEvent:
    """One explicit ``.acquire()`` / ``.release()`` call."""

    node: ast.AST
    base: str
    in_finally: bool


@dataclass
class FunctionFacts:
    """Everything the R06x checkers need to know about one function."""

    writes: list[SharedWrite] = field(default_factory=list)
    acquires: list[LockEvent] = field(default_factory=list)
    releases: list[LockEvent] = field(default_factory=list)
    #: Lock ids entered via ``with`` anywhere in the body.
    with_locks: set[str] = field(default_factory=set)
    #: Direct nesting: with-lock B entered while with-lock A held.
    nested_pairs: list[tuple[str, str, ast.AST]] = field(default_factory=list)
    #: Calls made while holding a lock: (held lock id, call node).
    calls_under_lock: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: Blocking calls made while holding a lock.
    blocking_under_lock: list[tuple[str, ast.Call]] = field(default_factory=list)
    #: Source lines where a thread is started.
    thread_start_lines: list[int] = field(default_factory=list)
    #: Process-pool constructor call nodes in this body.
    pool_ctor_nodes: list[ast.Call] = field(default_factory=list)
    #: O_APPEND fd writes beyond the first, per fd variable.
    journal_multi_writes: list[tuple[ast.Call, str]] = field(default_factory=list)
    #: Non-daemon threads started here and never joined nor escaping.
    leaked_threads: list[tuple[ast.AST, str]] = field(default_factory=list)


def _attr_chain_root(expr: ast.expr) -> ast.expr:
    """Innermost value of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr


def _collect_classes(project: Project) -> dict[str, list[str]]:
    """Bare class name → dotted ``module.Class`` paths, project-wide."""
    classes: dict[str, list[str]] = {}
    for file in project.files:
        module = module_name(file.relpath)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                classes.setdefault(node.name, []).append(f"{module}.{node.name}")
    return classes


def _module_globals(file: SourceFile) -> set[str]:
    """Names bound by assignments at a module's top level."""
    names: set[str] = set()
    for stmt in file.tree.body:
        targets: list[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _instantiated_classes(scope: ast.AST, classes: dict[str, list[str]]) -> set[str]:
    """Dotted names of known classes instantiated anywhere under a node."""
    found: set[str] = set()
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else (
                node.func.attr if isinstance(node.func, ast.Attribute) else None
            )
            if name in classes:
                found.update(classes[name])
    return found


class ThreadAnalysis:
    """Shared thread-context state for the R060–R066 checkers."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self.module_aliases = {
            module_name(f.relpath): _alias_map(f, module_name(f.relpath))
            for f in project.files
        }
        self.resolver = _Resolver(graph=graph, module_aliases=self.module_aliases)
        self.classes = _collect_classes(project)
        self.globals_by_module = {
            module_name(f.relpath): _module_globals(f) for f in project.files
        }
        self.shared_classes = self._shared_class_fixpoint()
        #: Resolved call-node id → callee qualname (from the call graph).
        self.call_targets: dict[int, str] = {}
        for sites in graph.callsites.values():
            for callee, call, _file in sites:
                self.call_targets[id(call)] = callee
        self.roots = self._collect_roots()
        self.facts: dict[str, FunctionFacts] = {}
        for qualname, info in graph.functions.items():
            collector = _FactCollector(self, qualname, info.node)
            collector.run()
            self.facts[qualname] = collector.facts
        self._augmented = self._augment_edges()
        #: root qualname → {reached qualname: witness chain}.
        self.reach_by_root: dict[str, dict[str, tuple[str, ...]]] = {
            root: self._reach({root}) for root in sorted(self.roots)
        }
        self.locks_transitive = self._locks_fixpoint()
        self.creates_pool_transitive = self._pool_fixpoint()

    # -- shared-state model ----------------------------------------------

    def _shared_class_fixpoint(self) -> set[str]:
        """Classes whose instances are visible to multiple threads.

        Seeds: classes instantiated by module top-level code.  Closure:
        classes instantiated inside a shared class's body (e.g. the
        ``Counter`` a shared ``MetricsRegistry`` creates and hands out).
        """
        shared: set[str] = set()
        class_bodies: dict[str, ast.ClassDef] = {}
        for file in self.project.files:
            module = module_name(file.relpath)
            for stmt in file.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    class_bodies[f"{module}.{stmt.name}"] = stmt
                elif not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Instances created inside a function body are locals
                    # until something publishes them; only true top-level
                    # construction (module singletons) seeds the set.
                    shared.update(_instantiated_classes(stmt, self.classes))
        while True:
            grown = set(shared)
            for dotted in shared:
                body = class_bodies.get(dotted)
                if body is not None:
                    grown.update(_instantiated_classes(body, self.classes))
            if grown == shared:
                return shared
            shared = grown

    def is_shared_class(self, module: str, cls: str | None) -> bool:
        """Whether ``module.cls`` instances are shared across threads."""
        return cls is not None and f"{module}.{cls}" in self.shared_classes

    # -- roots -----------------------------------------------------------

    def _resolve_ref(
        self, expr: ast.expr, module: str, aliases: dict[str, str]
    ) -> str | None:
        if isinstance(expr, ast.Name):
            for candidate in (aliases.get(expr.id, expr.id), f"{module}.{expr.id}"):
                resolved = self.resolver.resolve(candidate)
                if resolved is not None:
                    return resolved
            return None
        dotted = resolve_call_target(expr, aliases)
        return self.resolver.resolve(dotted) if dotted else None

    def _thunk_targets(
        self, expr: ast.expr, module: str, aliases: dict[str, str]
    ) -> list[str]:
        """Root targets of a submitted callable (names and lambda bodies)."""
        if isinstance(expr, ast.Lambda):
            targets = []
            for node in ast.walk(expr.body):
                if isinstance(node, ast.Call):
                    resolved = self._resolve_ref(node.func, module, aliases)
                    if resolved is not None:
                        targets.append(resolved)
            return targets
        resolved = self._resolve_ref(expr, module, aliases)
        return [resolved] if resolved is not None else []

    def _collect_roots(self) -> dict[str, ThreadRoot]:
        roots: dict[str, ThreadRoot] = {}

        def add(qualname: str, kind: str, *, concurrent: bool, isolated: bool) -> None:
            existing = roots.get(qualname)
            if existing is not None and existing.isolated and not isolated:
                pass  # a shared-memory context wins over an isolated one
            elif existing is not None:
                return
            roots[qualname] = ThreadRoot(
                qualname=qualname, kind=kind, concurrent=concurrent, isolated=isolated
            )

        for qualname, info in self.graph.functions.items():
            if info.name.startswith("handle_") or info.name in _HTTP_VERB_METHODS:
                add(qualname, "request handler", concurrent=True, isolated=False)

        for file in self.project.files:
            module = module_name(file.relpath)
            aliases = self.module_aliases[module]
            thread_pools: set[str] = set()
            process_pools: set[str] = set()
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                    target_set = self._pool_kind(node.value, aliases)
                    if target_set is not None:
                        names = {
                            t.id for t in node.targets if isinstance(t, ast.Name)
                        }
                        (thread_pools if target_set == "thread" else process_pools).update(
                            names
                        )
                elif isinstance(node, ast.With):
                    for item in node.items:
                        if isinstance(item.context_expr, ast.Call) and isinstance(
                            item.optional_vars, ast.Name
                        ):
                            target_set = self._pool_kind(item.context_expr, aliases)
                            if target_set == "thread":
                                thread_pools.add(item.optional_vars.id)
                            elif target_set == "process":
                                process_pools.add(item.optional_vars.id)
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call_target(node.func, aliases)
                if target == "threading.Thread":
                    for kw in node.keywords:
                        if kw.arg == "target":
                            for resolved in self._thunk_targets(
                                kw.value, module, aliases
                            ):
                                add(resolved, "thread", concurrent=False, isolated=False)
                elif target == "signal.signal" and len(node.args) >= 2:
                    for resolved in self._thunk_targets(node.args[1], module, aliases):
                        add(resolved, "signal handler", concurrent=False, isolated=False)
                elif self._pool_kind(node, aliases) == "process":
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            for resolved in self._thunk_targets(
                                kw.value, module, aliases
                            ):
                                add(resolved, "worker initializer", concurrent=True, isolated=True)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and isinstance(node.func.value, ast.Name)
                    and node.args
                ):
                    pool_name = node.func.value.id
                    if pool_name in thread_pools:
                        for resolved in self._thunk_targets(
                            node.args[0], module, aliases
                        ):
                            add(resolved, "pool client", concurrent=True, isolated=False)
                    elif pool_name in process_pools:
                        for resolved in self._thunk_targets(
                            node.args[0], module, aliases
                        ):
                            add(resolved, "pool worker", concurrent=True, isolated=True)
        return roots

    @staticmethod
    def _pool_kind(call: ast.Call, aliases: dict[str, str]) -> str | None:
        target = resolve_call_target(call.func, aliases)
        if target in _THREAD_POOLS:
            return "thread"
        if target in _POOL_CONSTRUCTORS:
            return "process"
        return None

    # -- reachability over augmented edges -------------------------------

    def _augment_edges(self) -> dict[str, set[str]]:
        """Call edges plus receiver-blind dispatch to shared methods.

        An attribute call the resolver could not bind (``x.add(1)`` on an
        arbitrary receiver) *may* land on any shared class's method of
        that name — exactly the pattern of
        ``metrics_registry().counter(...).add(1)``.  Limiting the blind
        dispatch to shared classes keeps the over-approximation small.
        """
        shared_methods: dict[str, set[str]] = {}
        for qualname, info in self.graph.functions.items():
            if self.is_shared_class(info.module, info.cls):
                shared_methods.setdefault(info.name, set()).add(qualname)
        edges: dict[str, set[str]] = {
            caller: set(callees) for caller, callees in self.graph.edges.items()
        }
        for qualname, info in self.graph.functions.items():
            for node in ast.walk(info.node):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and id(node) not in self.call_targets
                    and node.func.attr in shared_methods
                ):
                    edges.setdefault(qualname, set()).update(
                        shared_methods[node.func.attr]
                    )
        return edges

    def _reach(self, roots: set[str]) -> dict[str, tuple[str, ...]]:
        chains: dict[str, tuple[str, ...]] = {
            root: (root,) for root in sorted(roots) if root in self.graph.functions
        }
        frontier = sorted(chains)
        while frontier:
            next_frontier: list[str] = []
            for caller in frontier:
                for callee in sorted(self._augmented.get(caller, ())):
                    if callee in chains:
                        continue
                    chains[callee] = (*chains[caller], callee)
                    next_frontier.append(callee)
            frontier = next_frontier
        return chains

    def contexts_reaching(
        self, qualname: str
    ) -> list[tuple[ThreadRoot, tuple[str, ...]]]:
        """Shared-memory thread roots that reach a function, with chains."""
        found: list[tuple[ThreadRoot, tuple[str, ...]]] = []
        for root_qualname, chains in self.reach_by_root.items():
            root = self.roots[root_qualname]
            if root.isolated:
                continue
            chain = chains.get(qualname)
            if chain is not None:
                found.append((root, chain))
        return found

    # -- interprocedural fixpoints ---------------------------------------

    def _locks_fixpoint(self) -> dict[str, set[str]]:
        """Lock ids each function may acquire, callees included."""
        held: dict[str, set[str]] = {
            qualname: set(facts.with_locks) for qualname, facts in self.facts.items()
        }
        for _ in range(4):
            changed = False
            for qualname in held:
                for callee in self.graph.edges.get(qualname, ()):
                    extra = held.get(callee, set()) - held[qualname]
                    if extra:
                        held[qualname].update(extra)
                        changed = True
            if not changed:
                break
        return held

    def _pool_fixpoint(self) -> set[str]:
        """Functions that may create a process pool, callees included."""
        creates = {
            qualname
            for qualname, facts in self.facts.items()
            if facts.pool_ctor_nodes
        }
        for _ in range(4):
            changed = False
            for qualname in self.graph.functions:
                if qualname in creates:
                    continue
                if any(
                    callee in creates
                    for callee in self.graph.edges.get(qualname, ())
                ):
                    creates.add(qualname)
                    changed = True
            if not changed:
                break
        return creates


def _lock_identity(expr: ast.expr, owner: str) -> str | None:
    """Stable id of a lock-ish ``with`` context expression, if any.

    ``flock``-style file locks share one global identity (the lock is
    the *file*, the same regardless of which object wraps it);
    in-process locks are identified by owner-qualified source text.
    """
    probe = expr
    if isinstance(expr, ast.Call):
        probe = expr.func
    name = None
    if isinstance(probe, ast.Name):
        name = probe.id
    elif isinstance(probe, ast.Attribute):
        name = probe.attr
    if name is None or "lock" not in name.lower():
        return None
    if "flock" in name.lower():
        return "flock"
    if isinstance(expr, ast.Call):
        return f"{owner}:{name}"
    return f"{owner}:{ast.unparse(expr)}"


class _FactCollector:
    """One pass over a function body, lock regions tracked lexically."""

    def __init__(
        self, analysis: ThreadAnalysis, qualname: str, func: ast.AST
    ) -> None:
        self.analysis = analysis
        self.qualname = qualname
        self.func = func
        info = analysis.graph.functions[qualname]
        self.module = info.module
        self.cls = info.cls
        self.func_name = info.name
        self.aliases = analysis.module_aliases.get(info.module, {})
        self.facts = FunctionFacts()
        self.owner = f"{info.module}.{info.cls}" if info.cls else info.module
        self.global_decls: set[str] = set()
        self.lock_locals: set[str] = set()
        self.thread_locals: dict[str, ast.Call] = {}
        self.append_fds: set[str] = set()
        self.append_writes: dict[str, int] = {}
        self._scan_prelude()
        self._thread_meta: dict[str, dict[str, bool]] = {}

    # -- prelude: names that change how later statements read ------------

    def _scan_prelude(self) -> None:
        for node in self._walk_own(self.func):
            if isinstance(node, ast.Global):
                self.global_decls.update(node.names)
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                target = resolve_call_target(node.value.func, self.aliases)
                if target in ("threading.Lock", "threading.RLock"):
                    self.lock_locals.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )

    @staticmethod
    def _walk_own(func: ast.AST) -> list[ast.AST]:
        out: list[ast.AST] = []
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return out

    # -- main traversal ---------------------------------------------------

    def run(self) -> None:
        for stmt in getattr(self.func, "body", []):
            self._visit(stmt, lock_stack=[], in_finally=False)
        self._finish_threads()

    def _lock_id(self, expr: ast.expr) -> str | None:
        identity = _lock_identity(expr, self.owner)
        if identity is not None:
            return identity
        if isinstance(expr, ast.Name) and expr.id in self.lock_locals:
            return f"{self.owner}:{expr.id}"
        return None

    def _visit(
        self, node: ast.AST, lock_stack: list[str], in_finally: bool
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.With):
            entered: list[str] = []
            for item in node.items:
                identity = self._lock_id(item.context_expr)
                if identity is not None:
                    for held in lock_stack:
                        if held != identity:
                            self.facts.nested_pairs.append(
                                (held, identity, item.context_expr)
                            )
                    entered.append(identity)
                    self.facts.with_locks.add(identity)
                self._visit(item.context_expr, lock_stack, in_finally)
            inner = [*lock_stack, *entered]
            for stmt in node.body:
                self._visit(stmt, inner, in_finally)
            return
        if isinstance(node, ast.Try):
            for stmt in node.body:
                self._visit(stmt, lock_stack, in_finally)
            for handler in node.handlers:
                for stmt in handler.body:
                    self._visit(stmt, lock_stack, in_finally)
            for stmt in node.orelse:
                self._visit(stmt, lock_stack, in_finally)
            for stmt in node.finalbody:
                self._visit(stmt, lock_stack, True)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._record_writes(node, lock_stack)
        if isinstance(node, ast.Call):
            self._record_call(node, lock_stack, in_finally)
        for child in ast.iter_child_nodes(node):
            self._visit(child, lock_stack, in_finally)

    # -- writes ------------------------------------------------------------

    def _is_shared_target(self, target: ast.expr) -> bool:
        root = _attr_chain_root(target)
        if isinstance(target, ast.Name):
            return target.id in self.global_decls
        if not isinstance(root, ast.Name):
            return False
        if root.id == "self":
            return (
                self.analysis.is_shared_class(self.module, self.cls)
                and self.func_name not in _CONSTRUCTION_METHODS
            )
        if root.id in self.analysis.globals_by_module.get(self.module, set()):
            return True
        # writes through an imported module/object (cache.stats.hits += 1)
        return isinstance(target, (ast.Attribute, ast.Subscript)) and root.id in self.aliases

    def _record_writes(
        self,
        node: "ast.Assign | ast.AugAssign | ast.AnnAssign",
        lock_stack: list[str],
    ) -> None:
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                candidates: list[ast.expr] = list(target.elts)
            else:
                candidates = [target]
            for candidate in candidates:
                if self._is_shared_target(candidate):
                    self.facts.writes.append(
                        SharedWrite(
                            node=node,
                            target=ast.unparse(candidate),
                            protected=bool(lock_stack),
                        )
                    )
        # thread-local bookkeeping: ``t = threading.Thread(...)``
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            target_path = resolve_call_target(node.value.func, self.aliases)
            if target_path == "threading.Thread":
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.thread_locals[t.id] = node.value
            elif (
                target_path == "os.open"
                and self._has_o_append(node.value)
            ):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.append_fds.add(t.id)

    @staticmethod
    def _has_o_append(call: ast.Call) -> bool:
        for arg in call.args[1:2]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute) and sub.attr == "O_APPEND":
                    return True
                if isinstance(sub, ast.Name) and sub.id == "O_APPEND":
                    return True
        return False

    # -- calls -------------------------------------------------------------

    def _record_call(
        self, node: ast.Call, lock_stack: list[str], in_finally: bool
    ) -> None:
        func = node.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        name = func.id if isinstance(func, ast.Name) else attr
        if attr == "acquire":
            self.facts.acquires.append(
                LockEvent(node=node, base=ast.unparse(func.value), in_finally=in_finally)
            )
        elif attr == "release":
            self.facts.releases.append(
                LockEvent(node=node, base=ast.unparse(func.value), in_finally=in_finally)
            )
        if attr == "start" and isinstance(func.value, ast.Name):
            if func.value.id in self.thread_locals:
                self.facts.thread_start_lines.append(node.lineno)
                self._thread_meta.setdefault(func.value.id, {})["started"] = True
        elif (
            attr == "start"
            and isinstance(func.value, ast.Call)
            and resolve_call_target(func.value.func, self.aliases) == "threading.Thread"
        ):
            self.facts.thread_start_lines.append(node.lineno)
        if attr == "join" and isinstance(func.value, ast.Name):
            if func.value.id in self.thread_locals:
                self._thread_meta.setdefault(func.value.id, {})["joined"] = True
        target_path = resolve_call_target(func, self.aliases)
        if target_path in _POOL_CONSTRUCTORS:
            self.facts.pool_ctor_nodes.append(node)
        if target_path == "os.write" and node.args:
            fd = node.args[0]
            if isinstance(fd, ast.Name) and fd.id in self.append_fds:
                count = self.append_writes.get(fd.id, 0) + 1
                self.append_writes[fd.id] = count
                if count > 1:
                    self.facts.journal_multi_writes.append((node, fd.id))
        if lock_stack:
            self.facts.calls_under_lock.append((lock_stack[-1], node))
            if name in _BLOCKING_CALLS:
                self.facts.blocking_under_lock.append((lock_stack[-1], node))

    # -- thread-leak wrap-up ----------------------------------------------

    def _finish_threads(self) -> None:
        for local, ctor in self.thread_locals.items():
            meta = self._thread_meta.get(local, {})
            if not meta.get("started") or meta.get("joined"):
                continue
            if self._thread_is_daemon(ctor) or self._escapes(local):
                continue
            self.facts.leaked_threads.append((ctor, local))

    @staticmethod
    def _thread_is_daemon(ctor: ast.Call) -> bool:
        for kw in ctor.keywords:
            if kw.arg == "daemon":
                return not (
                    isinstance(kw.value, ast.Constant) and kw.value.value is False
                )
        return False

    def _escapes(self, local: str) -> bool:
        """Whether a thread object leaves the function by value."""
        for node in self._walk_own(self.func):
            if isinstance(node, ast.Return) and node.value is not None:
                if any(
                    isinstance(sub, ast.Name) and sub.id == local
                    for sub in ast.walk(node.value)
                ):
                    return True
            elif isinstance(node, ast.Call):
                for value in (*node.args, *(kw.value for kw in node.keywords)):
                    if isinstance(value, ast.Name) and value.id == local:
                        if not (
                            isinstance(node.func, ast.Attribute)
                            and isinstance(node.func.value, ast.Name)
                            and node.func.value.id == local
                        ):
                            return True
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)) and any(
                        isinstance(sub, ast.Name) and sub.id == local
                        for sub in ast.walk(node.value)
                    ):
                        return True
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        continue
            elif isinstance(node, (ast.List, ast.Tuple, ast.Dict)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.Name) and sub.id == local:
                        return True
        return False


def threads_for(project: Project) -> ThreadAnalysis:
    """The project's thread-context state, computed once and cached."""
    graph = project.callgraph()
    cached: ThreadAnalysis | None = getattr(graph, "_threads_cache", None)
    if cached is None:
        cached = ThreadAnalysis(project, graph)
        setattr(graph, "_threads_cache", cached)
    return cached
