"""Unit-safety rule pack (``R001``–``R004``).

The paper's GLB accounting (Eqs. 1–2, Table 2) mixes three unit systems:
tensor *elements* (tile sizes, budgets), *bytes* (GLB capacity, traffic)
and *bits* (data width), plus *cycles* on the latency side.  The library
convention is suffix-typed names (``glb_bytes``, ``ifmap_elems``,
``data_width_bits``, ``latency_cycles``) with all conversions funneled
through :mod:`repro.arch.units` and ``AcceleratorSpec.bytes_per_elem``.
These rules make the convention checkable: arithmetic that mixes
suffix-units, bare ``* 2`` double-buffer factors, float creep into
integer-unit assignments, and raw ``8``/``1024`` conversion factors are
flagged at the AST level.

Unit inference is deliberately name-based (the repo's suffix convention),
so the rules are heuristics — precise enough to gate CI because the
codebase follows the convention everywhere.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .findings import Finding
from .rules import SourceFile, rule

#: name suffix → canonical unit.
_SUFFIX_UNITS: dict[str, str] = {
    "bytes": "bytes",
    "byte": "bytes",
    "bits": "bits",
    "elems": "elems",
    "elements": "elems",
    "cycles": "cycles",
}

#: Calls whose result is known to be byte-valued (arch.units helpers).
_BYTE_VALUED_CALLS = frozenset({"kib", "mib"})

_RATE_MARKER = re.compile(r"_per_")
_FOOTPRINT_NAME = re.compile(r"tile|footprint|resid|memory|buffer")
_CONVERSION_CONSTANTS = frozenset({8, 1024, 1024 * 1024})
_UNITISH_NAME = re.compile(r"byte|bit|elem|kib|mib|size|capacity|glb")
_INT_WRAPPERS = frozenset({"int", "round", "floor", "ceil", "ceil_div", "len"})


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier a value expression reads from, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def unit_of(node: ast.expr) -> str | None:
    """Infer the unit a (sub)expression carries from the naming convention.

    Returns one of ``"bytes"``/``"bits"``/``"elems"``/``"cycles"`` or
    ``None`` when no unit can be inferred.  Rates (``…_per_cycle``) are
    deliberately unitless here: dividing bytes by bytes-per-cycle is
    legitimate mixed arithmetic.
    """
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        if name in _BYTE_VALUED_CALLS:
            return "bytes"
        return None
    name = _terminal_name(node)
    if name is None or _RATE_MARKER.search(name):
        return None
    lowered = name.lower()
    for suffix, unit in _SUFFIX_UNITS.items():
        if lowered == suffix or lowered.endswith("_" + suffix):
            return unit
    return None


def _src(node: ast.expr) -> str:
    """Compact source rendering of a node for messages."""
    text = ast.unparse(node)
    return text if len(text) <= 40 else text[:37] + "..."


class _FunctionStackVisitor(ast.NodeVisitor):
    """Node visitor that tracks the enclosing function-name stack."""

    def __init__(self) -> None:
        self.stack: list[str] = []
        self.findings: list[Finding] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Push the function name while visiting its body."""
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Treat async functions like regular ones."""
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def in_function_matching(self, pattern: re.Pattern[str]) -> bool:
        """Whether any enclosing function name matches ``pattern``."""
        return any(pattern.search(name) for name in self.stack)


class _UnitMixVisitor(_FunctionStackVisitor):
    """R001: additive/comparison arithmetic across different units."""

    def __init__(self, file: SourceFile) -> None:
        super().__init__()
        self.file = file

    def _check_pair(self, node: ast.AST, left: ast.expr, right: ast.expr) -> None:
        lu, ru = unit_of(left), unit_of(right)
        if lu is not None and ru is not None and lu != ru:
            self.findings.append(
                self.file.finding(
                    "R001",
                    node,
                    f"mixes {lu} ({_src(left)}) with {ru} ({_src(right)}); "
                    f"convert through repro.arch.units first",
                )
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag ``+``/``-`` across units (multiplicative ops are rates)."""
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        """Flag ordering comparisons across units."""
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                self._check_pair(node, left, right)
        self.generic_visit(node)


@rule("R001")
def check_unit_mix(file: SourceFile) -> Iterator[Finding]:
    """Flag additive arithmetic/comparisons mixing suffix-typed units."""
    visitor = _UnitMixVisitor(file)
    visitor.visit(file.tree)
    yield from visitor.findings


_PREFETCH_CONTEXT = re.compile(r"prefetch|double_buffer")


class _DoubleBufferVisitor(_FunctionStackVisitor):
    """R002: bare ``* 2`` on a footprint-like quantity."""

    def __init__(self, file: SourceFile) -> None:
        super().__init__()
        self.file = file

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag ``2 * footprint`` / ``footprint * 2`` outside helpers."""
        if isinstance(node.op, ast.Mult) and not self.in_function_matching(
            _PREFETCH_CONTEXT
        ):
            for const, other in ((node.left, node.right), (node.right, node.left)):
                if (
                    isinstance(const, ast.Constant)
                    and const.value == 2
                    and not isinstance(const.value, bool)
                ):
                    name = _terminal_name(other)
                    unit = unit_of(other)
                    if (
                        name is not None
                        and (_FOOTPRINT_NAME.search(name.lower()) or unit in ("bytes", "elems"))
                    ):
                        self.findings.append(
                            self.file.finding(
                                "R002",
                                node,
                                f"bare double-buffer factor '* 2' on {_src(other)}; "
                                f"bind '2 if prefetch else 1' to a named factor "
                                f"or use the prefetch helpers",
                            )
                        )
                        break
        self.generic_visit(node)


@rule("R002")
def check_double_buffer_factor(file: SourceFile) -> Iterator[Finding]:
    """Flag unconditional Eq. (2) doublings outside the prefetch helpers."""
    visitor = _DoubleBufferVisitor(file)
    visitor.visit(file.tree)
    yield from visitor.findings


def _contains_float_creep(node: ast.AST) -> bool:
    """Whether an expression uses true division or float literals.

    An ``int()``-style wrapper (``int``/``round``/``ceil_div``/…)
    discharges everything beneath it: the result is integral again.
    """
    if isinstance(node, ast.Call) and _terminal_name(node.func) in _INT_WRAPPERS:
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    return any(_contains_float_creep(child) for child in ast.iter_child_nodes(node))


class _FloatCreepVisitor(_FunctionStackVisitor):
    """R003: integer-unit names assigned from float-valued expressions."""

    def __init__(self, file: SourceFile) -> None:
        super().__init__()
        self.file = file

    def _check(self, node: ast.AST, target: ast.expr, value: ast.expr | None) -> None:
        if value is None:
            return
        unit = unit_of(target)
        if unit in ("bytes", "elems", "bits") and _contains_float_creep(value):
            self.findings.append(
                self.file.finding(
                    "R003",
                    node,
                    f"integer-unit quantity {_src(target)} assigned from a "
                    f"float-valued expression; use // or ceil_div and keep "
                    f"{unit} exact",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        """Check every assignment target with a unit suffix."""
        for target in node.targets:
            self._check(node, target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        """Check annotated assignments."""
        self._check(node, node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        """Check augmented assignments (``x_bytes /= …`` and friends)."""
        if isinstance(node.op, ast.Div):
            unit = unit_of(node.target)
            if unit in ("bytes", "elems", "bits"):
                self.findings.append(
                    self.file.finding(
                        "R003",
                        node,
                        f"integer-unit quantity {_src(node.target)} mutated "
                        f"with true division",
                    )
                )
        else:
            self._check(node, node.target, node.value)
        self.generic_visit(node)


@rule("R003")
def check_float_creep(file: SourceFile) -> Iterator[Finding]:
    """Flag float creep into byte/element/bit-typed assignments."""
    visitor = _FloatCreepVisitor(file)
    visitor.visit(file.tree)
    yield from visitor.findings


class _MagicConstantVisitor(_FunctionStackVisitor):
    """R004: raw 8/1024/1048576 conversion factors on unit-ish operands."""

    def __init__(self, file: SourceFile) -> None:
        super().__init__()
        self.file = file

    def visit_BinOp(self, node: ast.BinOp) -> None:
        """Flag multiplicative use of the conversion constants."""
        if isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv)):
            for const, other in ((node.left, node.right), (node.right, node.left)):
                if (
                    isinstance(const, ast.Constant)
                    and not isinstance(const.value, bool)
                    and const.value in _CONVERSION_CONSTANTS
                ):
                    name = _terminal_name(other)
                    if name is not None and _UNITISH_NAME.search(name.lower()):
                        self.findings.append(
                            self.file.finding(
                                "R004",
                                node,
                                f"magic unit constant {const.value} applied to "
                                f"{_src(other)}; use repro.arch.units "
                                f"(kib/to_kib/…) or spec.bytes_per_elem",
                            )
                        )
                        break
        self.generic_visit(node)


@rule("R004")
def check_magic_unit_constants(file: SourceFile) -> Iterator[Finding]:
    """Flag raw unit-conversion factors bypassing the unit helpers."""
    visitor = _MagicConstantVisitor(file)
    visitor.visit(file.tree)
    yield from visitor.findings
