"""Project-wide call graph over the analyzed source set.

The per-file rule packs (R001–R015) see one AST at a time; the
interprocedural packs — unit-flow (R040–R044, :mod:`.unitflow`) and
determinism-reachability (R050–R053, :mod:`.reach_rules`) — need to know
*who calls whom across the whole of* ``src/repro``.  This module builds
that graph once per :class:`~repro.analysis.rules.Project` (cached on
the project via :meth:`Project.callgraph`) from nothing but the parsed
ASTs:

* every function and method gets a dotted :attr:`FunctionInfo.qualname`
  (``repro.experiments.cache.fetch``,
  ``repro.manager.MemoryManager.plan_cached``, nested defs included);
* call sites are resolved through import aliases (absolute *and*
  relative imports, package re-exports followed transitively), local
  bindings, and ``self``/``cls`` method dispatch within the enclosing
  class;
* decorators are transparent — an ``@lru_cache``- or
  ``@functools.wraps``-wrapped function keeps its identity, so calls to
  the decorated name still resolve to its body;
* a *reference* to a known function in argument or keyword position
  (``pool.submit(worker, x)``, ``initializer=configure_worker``,
  ``functools.partial(f, …)``, ``cache.fetch(key, thunk)``) is recorded
  as a may-call edge: anything that escapes by value may run later.

Resolution is deliberately conservative-by-name: unresolvable dynamic
dispatch (``ARTIFACTS[name]()``, attribute calls on arbitrary objects)
produces no edge rather than a wrong one, so downstream rules trade a
little recall for zero resolution-induced false positives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .determinism_rules import import_map, resolve_call_target
from .rules import Project, SourceFile

#: Decorator names that never change a function's call-graph identity.
#: (Any decorator is treated as transparent; this set only documents the
#: common ones the tests pin.)
TRANSPARENT_DECORATORS = frozenset(
    {"lru_cache", "cache", "wraps", "property", "cached_property",
     "staticmethod", "classmethod", "rule", "dataclass"}
)


def module_name(relpath: str) -> str:
    """Dotted module name of a project-relative ``.py`` path.

    ``src/repro/experiments/cache.py`` → ``repro.experiments.cache``;
    a package ``__init__.py`` maps to the package itself.
    """
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


@dataclass(frozen=True)
class FunctionInfo:
    """One function/method definition known to the call graph."""

    qualname: str
    module: str
    cls: str | None
    file: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef

    @property
    def name(self) -> str:
        """The bare (unqualified) function name."""
        return self.node.name

    @property
    def line(self) -> int:
        """Definition line, for finding anchors."""
        return self.node.lineno

    @property
    def is_method(self) -> bool:
        """Whether the function is defined inside a class body."""
        return self.cls is not None

    @property
    def is_static(self) -> bool:
        """Whether the function carries a ``@staticmethod`` decorator."""
        for deco in self.node.decorator_list:
            if isinstance(deco, ast.Name) and deco.id == "staticmethod":
                return True
        return False

    def param_names(self) -> list[str]:
        """Positional parameter names (posonly + regular), in order."""
        args = self.node.args
        return [a.arg for a in (*args.posonlyargs, *args.args)]


@dataclass
class CallGraph:
    """Functions, resolved call edges, and reachability over them."""

    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller qualname → callee qualnames (direct calls and references).
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: call-site detail: caller → list of (callee, Call node, file).
    callsites: dict[str, list[tuple[str, ast.Call, SourceFile]]] = field(
        default_factory=dict
    )

    def callees(self, qualname: str) -> set[str]:
        """Direct callees of a function (empty when unknown)."""
        return self.edges.get(qualname, set())

    def reachable_from(self, roots: set[str]) -> dict[str, tuple[str, ...]]:
        """Every function reachable from ``roots``, with a witness chain.

        Returns ``{qualname: (root, …, qualname)}`` — one shortest call
        chain per reached function, BFS order, deterministic (sorted
        frontier) so findings are stable across runs.
        """
        chains: dict[str, tuple[str, ...]] = {
            root: (root,) for root in sorted(roots) if root in self.functions
        }
        frontier = sorted(chains)
        while frontier:
            next_frontier: list[str] = []
            for caller in frontier:
                for callee in sorted(self.edges.get(caller, ())):
                    if callee in chains:
                        continue
                    chains[callee] = (*chains[caller], callee)
                    next_frontier.append(callee)
            frontier = next_frontier
        return chains

    def by_suffix(self, suffix: str) -> Iterator[FunctionInfo]:
        """Functions whose qualname ends with ``suffix`` (dotted-aware)."""
        for qualname, info in self.functions.items():
            if qualname == suffix or qualname.endswith("." + suffix):
                yield info


class _DefCollector(ast.NodeVisitor):
    """First pass: record every function definition with its qualname."""

    def __init__(self, graph: CallGraph, file: SourceFile, module: str) -> None:
        self.graph = graph
        self.file = file
        self.module = module
        self.scope: list[str] = []
        self.class_stack: list[str] = []

    def _record(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        qualname = ".".join([self.module, *self.scope, node.name])
        self.graph.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=self.module,
            cls=self.class_stack[-1] if self.class_stack else None,
            file=self.file,
            node=node,
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Record the def, then descend for nested defs."""
        self._record(node)
        self.scope.append(node.name)
        saved_classes = self.class_stack
        self.class_stack = []
        self.generic_visit(node)
        self.class_stack = saved_classes
        self.scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async defs are recorded like regular ones."""
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Methods are scoped under ``module.Class.method``."""
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()


def _relative_base(module: str, file: SourceFile, level: int) -> str:
    """Package a ``from .``-import of ``level`` dots resolves against."""
    parts = module.split(".") if module else []
    is_package = file.relpath.replace("\\", "/").endswith("__init__.py")
    if not is_package and parts:
        parts = parts[:-1]
    drop = level - 1
    if drop:
        parts = parts[:-drop] if drop < len(parts) else []
    return ".".join(parts)


def _alias_map(file: SourceFile, module: str) -> dict[str, str]:
    """Local alias → dotted path, with relative imports resolved.

    Extends :func:`~repro.analysis.determinism_rules.import_map` (which
    only handles absolute imports) by rewriting ``from .x import y`` /
    ``from .. import z`` against the importing module's package.
    """
    aliases = import_map(file.tree)
    for node in ast.walk(file.tree):
        if isinstance(node, ast.ImportFrom) and node.level > 0:
            base = _relative_base(module, file, node.level)
            target = f"{base}.{node.module}" if node.module else base
            for a in node.names:
                if a.name != "*":
                    dotted = f"{target}.{a.name}" if target else a.name
                    aliases[a.asname or a.name] = dotted
    return aliases


@dataclass
class _Resolver:
    """Resolves dotted paths to known functions, following re-exports."""

    graph: CallGraph
    #: module → alias map (covers package ``__init__`` re-exports).
    module_aliases: dict[str, dict[str, str]]

    def resolve(self, dotted: str, depth: int = 0) -> str | None:
        """Qualname of the function a dotted path names, if known."""
        if depth > 4:  # re-export chains are short; cycles must terminate
            return None
        if dotted in self.graph.functions:
            return dotted
        # a.b.c where a.b is a module whose alias map re-exports c
        head, _, leaf = dotted.rpartition(".")
        if head and leaf:
            exported = self.module_aliases.get(head, {}).get(leaf)
            if exported and exported != dotted:
                return self.resolve(exported, depth + 1)
        return None


class _EdgeCollector(ast.NodeVisitor):
    """Second pass: resolve call sites and value references to edges."""

    def __init__(
        self,
        graph: CallGraph,
        resolver: _Resolver,
        file: SourceFile,
        module: str,
        aliases: dict[str, str],
    ) -> None:
        self.graph = graph
        self.resolver = resolver
        self.file = file
        self.module = module
        self.aliases = aliases
        self.scope: list[str] = []
        self.class_stack: list[str] = []

    # -- scope tracking -------------------------------------------------

    def _current_caller(self) -> str | None:
        if not self.scope:
            return None
        return ".".join([self.module, *self.scope])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        """Enter the function scope; decorators stay transparent.

        Unlike the def collector, the class stack is *not* reset here:
        ``self`` inside a def nested in a method still refers to the
        enclosing class, and edge resolution needs that.
        """
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        """Async defs tracked like regular ones."""
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Enter the class scope for method qualnames."""
        self.scope.append(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()
        self.scope.pop()

    # -- resolution ------------------------------------------------------

    def _resolve_expr(self, expr: ast.expr) -> str | None:
        """Qualname a name/attribute expression refers to, if known."""
        # self.method / cls.method → enclosing class's method
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id in ("self", "cls")
            and self.class_stack
        ):
            # innermost enclosing class (last occurrence in the scope)
            idx = (
                len(self.scope)
                - 1
                - self.scope[::-1].index(self.class_stack[-1])
            )
            cls_path = ".".join([self.module, *self.scope[: idx + 1]])
            return self.resolver.resolve(f"{cls_path}.{expr.attr}")
        dotted = resolve_call_target(expr, self.aliases)
        if dotted is None:
            return None
        resolved = self.resolver.resolve(dotted)
        if resolved is not None:
            return resolved
        # a bare name: try enclosing scopes (nested defs), then module
        if isinstance(expr, ast.Name):
            for cut in range(len(self.scope), -1, -1):
                candidate = ".".join([self.module, *self.scope[:cut], expr.id])
                resolved = self.resolver.resolve(candidate)
                if resolved is not None:
                    return resolved
        return None

    def _add_edge(self, callee: str, call: ast.Call | None) -> None:
        caller = self._current_caller()
        if caller is None or caller not in self.graph.functions:
            # module-level code: attribute edges to a synthetic "<module>"
            caller = f"{self.module}.<module>"
        self.graph.edges.setdefault(caller, set()).add(callee)
        if call is not None:
            self.graph.callsites.setdefault(caller, []).append(
                (callee, call, self.file)
            )

    def visit_Call(self, node: ast.Call) -> None:
        """Record the direct edge plus reference edges for escaping args."""
        callee = self._resolve_expr(node.func)
        if callee is not None:
            self._add_edge(callee, node)
        for value in (*node.args, *(kw.value for kw in node.keywords)):
            if isinstance(value, (ast.Name, ast.Attribute)):
                referenced = self._resolve_expr(value)
                if referenced is not None:
                    self._add_edge(referenced, None)
        self.generic_visit(node)


def build_callgraph(project: Project) -> CallGraph:
    """Construct the whole-program call graph for an analyzed project."""
    graph = CallGraph()
    modules: list[tuple[SourceFile, str]] = []
    for file in project.files:
        module = module_name(file.relpath)
        modules.append((file, module))
        _DefCollector(graph, file, module).visit(file.tree)
    module_aliases = {
        module: _alias_map(file, module) for file, module in modules
    }
    resolver = _Resolver(graph=graph, module_aliases=module_aliases)
    for file, module in modules:
        collector = _EdgeCollector(
            graph, resolver, file, module, module_aliases[module]
        )
        collector.visit(file.tree)
    return graph
