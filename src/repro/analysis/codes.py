"""The rule catalog of the source static analyzer (``R`` codes).

Mirrors the structure of :mod:`repro.verify.codes` (the runtime plan
verifier's ``V`` catalog): codes are stable identifiers referenced by
tests, suppression comments and documentation, so existing codes are
never renumbered — new rules append new codes.  ``docs/static-analysis.md``
mirrors this table and a test asserts the two stay in sync.

Catalog overview
----------------
* ``R000`` is the engine-level code for files the analyzer cannot parse.
* ``R001``–``R004`` — the **unit-safety** pack: the paper's Eqs. (1)/(2)
  GLB accounting mixes elements, bytes and bits, and a single silent
  unit slip flips which policy wins, so raw unit arithmetic is flagged.
* ``R010``–``R015`` — the **determinism & parallel-safety** pack: the
  experiment engine fans work across a process pool backed by a
  content-addressed cache, so nondeterministic inputs, unpicklable
  callables and order-unstable digests are silent output corrupters.
* ``R020``–``R023`` — the **registry-consistency** pack: cross-file
  invariants (diagnostic catalogs, the policy registry, the experiment
  artifact registry) that no per-file linter can see.
* ``R030``–``R031`` — the **observability** pack: the telemetry
  subsystem (:mod:`repro.obs`) has its own usage contract — spans only
  record on ``__exit__`` and metric names declare their unit by suffix —
  that silent misuse would erode without a check.
* ``R040``–``R044`` — the **unit-flow** pack (project scope): the
  interprocedural upgrade of R001–R004.  A whole-program call graph
  (:mod:`repro.analysis.callgraph`) carries an inferred unit lattice
  (:mod:`repro.analysis.unitflow`) across call and return boundaries,
  so a ``_bytes`` value returned into an ``_elems`` parameter two
  modules away is no longer invisible.
* ``R050``–``R053`` — the **determinism-reachability** pack (project
  scope): the whole-program upgrade of R010–R015.  Starting from the
  determinism roots (cache-key construction, pool-worker entry points,
  ``plan_cached``, ``handle_*`` serve endpoint handlers), any
  *transitively reachable* nondeterminism source
  is flagged with its call chain.
* ``R060``–``R066`` — the **concurrency-safety** pack (project scope):
  the serve daemon is the first genuinely concurrent subsystem
  (``ThreadingHTTPServer`` handler threads, loadgen client thunks,
  drain/signal paths, process-pool initializers).  Thread roots are
  derived from the call graph (:mod:`repro.analysis.threadroots`), and
  shared mutable state written from two or more roots without a lock,
  broken lock discipline (non-``finally`` release, lock-order
  inversion, blocking while holding), fork-after-threads hazards,
  non-atomic ``O_APPEND`` journal writes and non-daemon thread leaks
  are flagged with their witness chains.
* ``R070``–``R074`` — the **value-range** pack (project scope): an
  interval abstract interpreter (:mod:`repro.analysis.interval`) over
  the estimator/plancore int64 closed forms, seeded from the declared
  spec bounds in :mod:`repro.arch.bounds`.  A NumPy int64 wraparound
  raises no error — it silently corrupts plans — so every int64
  intermediate must be *provably* below 2**63 over the supported spec
  space, and int→float promotion, float64 precision loss past 2**53,
  dtype mixing and possibly-zero divisors are flagged alongside.
"""

from __future__ import annotations

#: code → short title (stable; rendered in reports and docs).
RULE_TITLES: dict[str, str] = {
    "R000": "unparsable source file",
    "R001": "byte/element unit mix",
    "R002": "bare double-buffer factor",
    "R003": "float creep in integer-unit assignment",
    "R004": "magic unit-conversion constant",
    "R010": "nondeterministic call in library code",
    "R011": "environment read in library code",
    "R012": "unpicklable callable submitted to process pool",
    "R013": "unordered set iteration in digest construction",
    "R014": "unsorted JSON serialization in digest construction",
    "R015": "mutable module-level state",
    "R020": "diagnostic catalog inconsistent",
    "R021": "policy class not registered",
    "R022": "experiment artifact registry inconsistent",
    "R023": "unknown diagnostic code referenced",
    "R030": "tracer span opened without context manager",
    "R031": "metric name missing unit suffix",
    "R040": "call-site unit mismatch",
    "R041": "return-boundary unit mismatch",
    "R042": "cross-unit assignment through dataflow",
    "R043": "interprocedural unit mix in arithmetic",
    "R044": "unit-cast helper misuse",
    "R050": "nondeterministic call reachable from determinism root",
    "R051": "environment read reachable from determinism root",
    "R052": "unordered set iteration reachable from cache-key path",
    "R053": "unsorted JSON serialization reachable from cache-key path",
    "R060": "unlocked shared-state write reachable from multiple thread roots",
    "R061": "lock acquired without finally-guarded release",
    "R062": "lock-order inversion across flock and in-process locks",
    "R063": "process pool created on a path after thread start",
    "R064": "non-atomic append to O_APPEND journal",
    "R065": "blocking call while holding a lock",
    "R066": "non-daemon thread not joined before drain",
    "R070": "int64 overflow not provable within declared spec bounds",
    "R071": "silent int-to-float promotion in batch arithmetic",
    "R072": "float64 precision loss for integer quantity beyond 2**53",
    "R073": "mixed dtypes across a NumPy operation",
    "R074": "unguarded division by a possibly-zero quantity",
}

#: code → full description (the invariant that must hold).
RULE_DESCRIPTIONS: dict[str, str] = {
    "R000": (
        "Every analyzed source file must parse as Python; a syntax error "
        "makes every other rule blind to the file."
    ),
    "R001": (
        "Additive arithmetic and ordering comparisons must not mix "
        "quantities carrying different units (``*_bytes`` vs ``*_elems`` "
        "vs ``*_bits`` vs ``*_cycles``): the Eq. (1)/(2) GLB accounting "
        "is only meaningful when both sides share a unit, and a silent "
        "byte/element mix scales results by the data width."
    ),
    "R002": (
        "The Eq. (2) double-buffer factor must come from the prefetch "
        "helpers (``2 if prefetch else 1`` bound to a named factor), "
        "never from a bare ``* 2`` on a tile/footprint/memory quantity — "
        "an unconditional doubling miscounts the non-prefetch policies."
    ),
    "R003": (
        "A quantity named as an integer unit (``*_bytes``, ``*_elems``, "
        "``*_bits``) must not be assigned from an expression using true "
        "division or float literals: float creep in capacity and "
        "footprint math turns exact Eq. (1) comparisons into "
        "epsilon-dependent ones."
    ),
    "R004": (
        "Unit conversions must use the helpers in ``repro.arch.units`` "
        "(``kib``/``to_kib``/…) or the spec's ``bytes_per_elem`` rather "
        "than raw ``8``/``1024``/``1048576`` factors on byte/bit-typed "
        "operands, so every conversion site is greppable and consistent."
    ),
    "R010": (
        "Library code must not call nondeterministic sources — "
        "``random``/``numpy.random`` module functions, ``time.time``, "
        "``datetime.now``, ``os.getpid``, ``os.urandom``, ``uuid`` — "
        "because experiment workers must produce bit-identical results "
        "at any job count and cache temperature.  Monotonic timers used "
        "purely for wall-time instrumentation (``time.perf_counter``) "
        "are exempt."
    ),
    "R011": (
        "Reads of ambient environment state (``os.environ``, "
        "``os.getenv``, ``Path.home``, ``expanduser``) make results "
        "depend on the invoking shell; they belong in explicitly "
        "documented configuration boundaries only."
    ),
    "R012": (
        "Callables handed to a process pool's ``submit``/``map`` must be "
        "module-level functions: lambdas and nested functions do not "
        "pickle, so they fail only at runtime and only on the parallel "
        "path."
    ),
    "R013": (
        "Functions that build cache keys or digests must not iterate "
        "sets or frozensets without ``sorted()``: set order varies with "
        "``PYTHONHASHSEED`` across worker processes, silently forking "
        "the cache key for identical inputs."
    ),
    "R014": (
        "``json.dumps`` inside cache-key/digest construction must pass "
        "``sort_keys=True`` so that dict insertion order cannot leak "
        "into content-addressed keys."
    ),
    "R015": (
        "Module-level mutable state (list/dict/set literals, mutable "
        "collection constructors, non-frozen dataclass instances bound "
        "to lowercase names) is copied, not shared, by pool workers — "
        "mutations silently diverge between processes."
    ),
    "R020": (
        "Every diagnostic code defined in a catalog (``V0xx`` in "
        "``repro.verify.codes``, ``R0xx`` in ``repro.analysis.codes``) "
        "must be defined exactly once, carry both a title and a "
        "description, be raised somewhere in the source, and appear in "
        "its documentation table."
    ),
    "R021": (
        "Every concrete ``Policy`` subclass must be registered in "
        "``repro.policies.registry`` — an unregistered policy silently "
        "drops out of Algorithm 1's candidate set."
    ),
    "R022": (
        "Every experiment artifact id must be unique in the "
        "``ARTIFACTS`` registry and listed in ``EXPERIMENTS.md``, so the "
        "documented artifact set and the runnable one cannot drift."
    ),
    "R023": (
        "No source file or documentation table may reference a "
        "diagnostic code (``V0xx``/``R0xx``) that is absent from its "
        "catalog — stale codes in docs or checks are dead identifiers."
    ),
    "R030": (
        "Tracer spans (``tracer.start(...)``) must be opened with a "
        "``with`` statement: a span only records itself on ``__exit__``, "
        "so a bare ``.start()`` call silently produces no "
        "``SpanRecord`` and corrupts span nesting depth."
    ),
    "R031": (
        "Metric names passed to ``counter``/``gauge``/``histogram`` "
        "must carry a unit suffix (``_bytes``, ``_elems``, ``_cycles``, "
        "``_count``, ``_ns``, ``_seconds``, …) so that merged metric "
        "snapshots stay unit-unambiguous across subsystems."
    ),
    "R040": (
        "An argument whose inferred unit is known must not flow into a "
        "parameter declaring a different unit: passing a ``_bytes`` "
        "value into an ``_elems`` parameter is wrong by the data width, "
        "and only a whole-program pass can see it when the callee lives "
        "in another module.  Conversions must go through the sanctioned "
        "casts in ``repro.arch.units``."
    ),
    "R041": (
        "A function whose name declares a unit (``tile_bytes()``, "
        "``footprint_elems()``) must return values of that unit on "
        "every path; a return expression inferring a different unit "
        "silently mislabels every caller's arithmetic."
    ),
    "R042": (
        "A name declaring a unit must not be assigned from an "
        "expression whose dataflow-inferred unit differs (e.g. "
        "``n_elems = total_bytes`` or ``x_elems = f()`` where ``f`` "
        "returns bytes): the mislabeled binding defeats every "
        "downstream suffix-based check."
    ),
    "R043": (
        "Additive arithmetic and ordering comparisons must not mix "
        "units even when one operand's unit is only known through "
        "interprocedural inference (a call's return unit or a "
        "propagated local) — the whole-program extension of R001."
    ),
    "R044": (
        "The unit-cast helpers have fixed input units (``to_kib``/"
        "``to_mib`` take bytes; ``kib``/``mib`` take a KiB/MiB count, "
        "not bytes): applying a cast to an operand of a different "
        "inferred unit double- or mis-converts silently."
    ),
    "R050": (
        "No nondeterministic call (RNG, wall clock, pid, uuid) may be "
        "transitively reachable from a determinism root — cache-key "
        "construction, a pool-worker entry point, ``plan_cached``, or a "
        "``handle_*`` serve endpoint handler — because one "
        "nondeterministic frame anywhere in the chain forks cache keys, "
        "worker outputs, or served payloads for identical inputs."
    ),
    "R051": (
        "No ambient environment read may be transitively reachable "
        "from a determinism root unless it is a documented "
        "configuration boundary: an env-dependent value flowing into a "
        "cache key or worker result makes outputs depend on the "
        "invoking shell."
    ),
    "R052": (
        "No function transitively reachable from cache-key "
        "construction may iterate a set/frozenset without ``sorted()`` "
        "— whatever its name.  R013 only checks digest-*named* "
        "functions; this rule closes the gap for helpers on the key "
        "path."
    ),
    "R053": (
        "No function transitively reachable from cache-key "
        "construction may call ``json.dumps`` without "
        "``sort_keys=True`` — the whole-program extension of R014."
    ),
    "R060": (
        "Shared mutable state (module globals, attributes of module-"
        "level singletons such as the metrics registry or the plan "
        "cache) must not be written by code reachable from two or more "
        "thread roots unless every write happens inside a "
        "``threading.Lock``/``flock`` region: concurrent handler "
        "threads lose increments and tear multi-field updates "
        "silently."
    ),
    "R061": (
        "A lock acquired with ``.acquire()`` must be released in a "
        "``finally`` block (or replaced by a ``with`` statement): an "
        "exception between acquire and release deadlocks every other "
        "thread that touches the lock."
    ),
    "R062": (
        "Functions must take the journal file lock (``flock``) and "
        "in-process ``threading.Lock`` instances in one global order — "
        "one path acquiring the flock inside an in-process lock while "
        "another nests them the other way around deadlocks under "
        "contention."
    ),
    "R063": (
        "A ``ProcessPoolExecutor``/``multiprocessing.Pool`` must not "
        "be created on a call path that has already started a thread: "
        "``fork`` clones only the forking thread, so locks held by "
        "other threads at fork time stay locked forever in the child."
    ),
    "R064": (
        "Appends to an ``O_APPEND`` journal must be a single "
        "``os.write`` of one newline-terminated record no larger than "
        "``PIPE_BUF``-scale writes: multiple ``write()`` calls or "
        "oversized buffers interleave across processes and corrupt the "
        "journal."
    ),
    "R065": (
        "Code holding a ``threading.Lock`` must not make blocking "
        "calls — pool ``submit``/``map``/``shutdown``, ``join``, HTTP "
        "requests, ``sleep`` — because every other thread contending "
        "for the lock stalls behind the blocked holder."
    ),
    "R066": (
        "A non-daemon ``threading.Thread`` must be ``join``-ed by the "
        "function that starts it (or handed to a drain path that "
        "joins it): a leaked non-daemon thread keeps the process alive "
        "past shutdown and past the serve drain sequence."
    ),
    "R070": (
        "Every int64 intermediate in the estimator/plancore closed "
        "forms must be provably below 2**63 when evaluated over the "
        "declared spec bounds (``repro.arch.bounds``): NumPy int64 "
        "arithmetic wraps silently, so an unprovable product of layer "
        "dims, data widths and traffic counts is a latent plan "
        "corrupter."
    ),
    "R071": (
        "Integer-unit batch expressions must not silently promote to "
        "float (true division or float operands on ``*_bytes``/"
        "``*_elems`` int64 arrays) except at the documented latency/"
        "energy boundaries: exact Eq. (1) capacity comparisons must "
        "stay in integer arithmetic."
    ),
    "R072": (
        "An integer quantity whose worst-case bound exceeds 2**53 "
        "must not flow through float64 (division, ``float()`` casts, "
        "float dtype arrays): above 2**53 float64 cannot represent "
        "every integer and equality/ordering comparisons silently "
        "lose exactness."
    ),
    "R073": (
        "Operands of one NumPy binary operation must share a dtype "
        "family (both int64 or both float64): mixed int/float "
        "operands promote per NumPy casting rules, which differ "
        "between platforms and silently change the result dtype "
        "downstream."
    ),
    "R074": (
        "A division whose divisor's interval includes zero must be "
        "guarded (validated positive, or branched on) before the "
        "divide: bandwidths, rates and GLB sizes are validated at "
        "spec construction, but derived divisors need their own "
        "guard."
    ),
}

#: code → rule pack ("engine", "units", "determinism", "registry",
#: "observability", "unitflow", "reachability", "concurrency", "range").
RULE_PACKS: dict[str, str] = {
    "R000": "engine",
    "R001": "units",
    "R002": "units",
    "R003": "units",
    "R004": "units",
    "R010": "determinism",
    "R011": "determinism",
    "R012": "determinism",
    "R013": "determinism",
    "R014": "determinism",
    "R015": "determinism",
    "R020": "registry",
    "R021": "registry",
    "R022": "registry",
    "R023": "registry",
    "R030": "observability",
    "R031": "observability",
    "R040": "unitflow",
    "R041": "unitflow",
    "R042": "unitflow",
    "R043": "unitflow",
    "R044": "unitflow",
    "R050": "reachability",
    "R051": "reachability",
    "R052": "reachability",
    "R053": "reachability",
    "R060": "concurrency",
    "R061": "concurrency",
    "R062": "concurrency",
    "R063": "concurrency",
    "R064": "concurrency",
    "R065": "concurrency",
    "R066": "concurrency",
    "R070": "range",
    "R071": "range",
    "R072": "range",
    "R073": "range",
    "R074": "range",
}

#: Codes reported as warnings (hazards) rather than errors (defects).
#: R065/R066 are hazards (a blocked holder or leaked thread degrades
#: rather than corrupts); R071 is a hazard (promotion is often the
#: documented latency boundary, the corruption cases are R070/R072).
WARNING_CODES: frozenset[str] = frozenset(
    {"R004", "R011", "R051", "R065", "R066", "R071"}
)

#: All pack names, in catalog order of their first code.
ALL_PACKS: tuple[str, ...] = tuple(dict.fromkeys(RULE_PACKS.values()))

#: All catalog codes in numeric order.
ALL_RULE_CODES: tuple[str, ...] = tuple(sorted(RULE_TITLES))


def describe_rule(code: str) -> str:
    """Full catalog description of a rule code (raises on unknown codes)."""
    return RULE_DESCRIPTIONS[code]
