"""Registry-consistency rule pack (``R020``–``R023``, project scope).

These rules check cross-file invariants that no per-file linter can see:
the diagnostic catalogs (``V0xx`` in :mod:`repro.verify.codes`, ``R0xx``
in :mod:`repro.analysis.codes`) against their raise sites and
documentation tables, the :class:`~repro.policies.base.Policy` class set
against :mod:`repro.policies.registry`, and the experiment ``ARTIFACTS``
registry against ``EXPERIMENTS.md``.

Each rule no-ops gracefully when its anchor file is outside the analyzed
set (so fixture projects and partial runs do not produce noise), but is
fully armed whenever ``src/repro`` is linted — the CI configuration.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .findings import Finding
from .rules import Project, SourceFile, rule

_CODE_PATTERN = re.compile(r"^[VR]\d{3}$")
_DOC_TABLE_ROW = re.compile(r"\|\s*([VR]\d{3})\s*\|")

#: catalog anchor → (defining file suffix, doc file, title dict, desc dict).
_CATALOGS: tuple[tuple[str, str, str, str], ...] = (
    ("V", "verify/codes.py", "docs/verification.md", "CODE_TITLES|CODE_DESCRIPTIONS"),
    ("R", "analysis/codes.py", "docs/static-analysis.md", "RULE_TITLES|RULE_DESCRIPTIONS"),
)


def _dict_literal(tree: ast.Module, var_name: str) -> ast.Dict | None:
    """The dict literal assigned to a module-level name, if present."""
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == var_name
                and isinstance(value, ast.Dict)
            ):
                return value
    return None


def _dict_keys(literal: ast.Dict) -> list[tuple[str, int]]:
    """String keys (with line numbers) of a dict literal, in order."""
    keys = []
    for key in literal.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.append((key.value, key.lineno))
    return keys


def _code_constants(file: SourceFile) -> list[tuple[str, int]]:
    """Every standalone ``V0xx``/``R0xx`` string constant in a file."""
    found = []
    for node in ast.walk(file.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and _CODE_PATTERN.match(node.value)
        ):
            found.append((node.value, node.lineno))
    return found


def _catalog_data(
    project: Project, file_suffix: str, names: str
) -> tuple[SourceFile, dict[str, int], dict[str, int], list[tuple[str, int]]] | None:
    """Parsed catalog file: (file, title keys, desc keys, duplicate keys)."""
    file = project.find(file_suffix)
    if file is None:
        return None
    title_name, desc_name = names.split("|")
    titles_lit = _dict_literal(file.tree, title_name)
    descs_lit = _dict_literal(file.tree, desc_name)
    if titles_lit is None or descs_lit is None:
        return None
    titles: dict[str, int] = {}
    duplicates: list[tuple[str, int]] = []
    for code, line in _dict_keys(titles_lit):
        if code in titles:
            duplicates.append((code, line))
        else:
            titles[code] = line
    descs = dict(_dict_keys(descs_lit))
    return file, titles, descs, duplicates


@rule("R020", scope="project")
def check_catalog_consistency(project: Project) -> Iterator[Finding]:
    """Each defined code: unique, described, raised somewhere, documented."""
    for prefix, suffix, doc_rel, names in _CATALOGS:
        data = _catalog_data(project, suffix, names)
        if data is None:
            continue
        file, titles, descs, duplicates = data
        for code, line in duplicates:
            yield project.finding(
                "R020", file.relpath, line, f"{code} defined more than once in the catalog"
            )
        raised: set[str] = set()
        for other in project.files:
            if other is file:
                continue
            raised.update(code for code, _ in _code_constants(other))
        doc = project.doc_text(doc_rel)
        documented = set(_DOC_TABLE_ROW.findall(doc)) if doc is not None else None
        for code, line in sorted(titles.items()):
            if code not in descs:
                yield project.finding(
                    "R020", file.relpath, line, f"{code} has a title but no description"
                )
            if code not in raised:
                yield project.finding(
                    "R020",
                    file.relpath,
                    line,
                    f"{code} is defined but never raised by any analyzed source file",
                )
            if documented is not None and code not in documented:
                yield project.finding(
                    "R020",
                    file.relpath,
                    line,
                    f"{code} is missing from the {doc_rel} catalog table",
                )
        for code, line in sorted(descs.items()):
            if code not in titles:
                yield project.finding(
                    "R020", file.relpath, line, f"{code} has a description but no title"
                )


def _policy_classes(project: Project) -> Iterator[tuple[SourceFile, ast.ClassDef]]:
    """Every class under ``policies/`` that subclasses ``Policy``."""
    for file in project.files:
        if "policies/" not in file.relpath.replace("\\", "/"):
            continue
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                base_name = (
                    base.id
                    if isinstance(base, ast.Name)
                    else base.attr
                    if isinstance(base, ast.Attribute)
                    else None
                )
                if base_name == "Policy":
                    yield file, node
                    break


@rule("R021", scope="project")
def check_policy_registration(project: Project) -> Iterator[Finding]:
    """Every concrete Policy subclass appears in policies/registry.py."""
    registry = project.find("policies/registry.py")
    if registry is None:
        return
    referenced = {
        node.id for node in ast.walk(registry.tree) if isinstance(node, ast.Name)
    }
    for node in ast.walk(registry.tree):
        if isinstance(node, ast.ImportFrom):
            referenced.update(a.asname or a.name for a in node.names)
    for file, cls in _policy_classes(project):
        if file is registry:
            continue
        if cls.name not in referenced:
            yield project.finding(
                "R021",
                file.relpath,
                cls.lineno,
                f"Policy subclass '{cls.name}' is not referenced by "
                f"policies/registry.py; it silently drops out of "
                f"Algorithm 1's candidate set",
            )


@rule("R022", scope="project")
def check_artifact_registry(project: Project) -> Iterator[Finding]:
    """ARTIFACTS ids are unique and each is listed in EXPERIMENTS.md."""
    runner = project.find("experiments/runner.py")
    if runner is None:
        return
    literal = _dict_literal(runner.tree, "ARTIFACTS")
    if literal is None:
        return
    seen: dict[str, int] = {}
    for artifact_id, line in _dict_keys(literal):
        if artifact_id in seen:
            yield project.finding(
                "R022",
                runner.relpath,
                line,
                f"artifact id '{artifact_id}' registered twice (earlier "
                f"entry at line {seen[artifact_id]} is silently overridden)",
            )
        else:
            seen[artifact_id] = line
    doc = project.doc_text("EXPERIMENTS.md")
    if doc is None:
        return
    for artifact_id, line in sorted(seen.items()):
        if artifact_id not in doc:
            yield project.finding(
                "R022",
                runner.relpath,
                line,
                f"artifact id '{artifact_id}' is not listed in EXPERIMENTS.md",
            )


@rule("R023", scope="project")
def check_unknown_code_references(project: Project) -> Iterator[Finding]:
    """No source/doc reference to a code absent from its catalog."""
    for prefix, suffix, doc_rel, names in _CATALOGS:
        data = _catalog_data(project, suffix, names)
        if data is None:
            continue
        file, titles, descs, _ = data
        defined = set(titles) | set(descs)
        for other in project.files:
            if other is file:
                continue
            for code, line in _code_constants(other):
                if code.startswith(prefix) and code not in defined:
                    yield project.finding(
                        "R023",
                        other.relpath,
                        line,
                        f"reference to {code}, which is not defined in "
                        f"{file.relpath}",
                    )
        doc = project.doc_text(doc_rel)
        if doc is not None:
            doc_lines = doc.splitlines()
            for lineno, text in enumerate(doc_lines, start=1):
                for code in _DOC_TABLE_ROW.findall(text):
                    if code.startswith(prefix) and code not in defined:
                        yield project.finding(
                            "R023",
                            doc_rel,
                            lineno,
                            f"documentation table lists {code}, which is not "
                            f"defined in {file.relpath}",
                        )
