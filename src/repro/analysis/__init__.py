"""Domain-aware source static analysis (``repro lint``, ``R0xx`` codes).

Where :mod:`repro.verify` proves emitted *plans* consistent at runtime
(``V0xx`` diagnostics), this package proves *source files* obey the
project's domain invariants at review time: unit discipline in the
Eq. (1)/(2) GLB accounting, determinism and picklability on the process
-pool experiment path, and cross-file registry consistency.  Violations
are :class:`Finding` records with stable ``R0xx`` codes (see
:mod:`repro.analysis.codes` and ``docs/static-analysis.md``); intentional
exceptions carry inline ``# repro: noqa[Rxxx] -- reason`` markers, and
grandfathered findings live in the committed ``lint-baseline.json``.

Entry points: :func:`analyze_paths`, :func:`analyze_source`, and the
``repro lint`` CLI subcommand.
"""

from .baseline import (
    BASELINE_FILENAME,
    Baseline,
    load_baseline,
    write_baseline,
)
from .codes import (
    ALL_RULE_CODES,
    RULE_DESCRIPTIONS,
    RULE_PACKS,
    RULE_TITLES,
    WARNING_CODES,
    describe_rule,
)
from .engine import analyze_paths, analyze_source, find_project_root, iter_python_files
from .findings import AnalysisReport, Finding, severity_of
from .rules import REGISTRY, Project, Rule, RuleRegistry, SourceFile, all_rules, rule
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "ALL_RULE_CODES",
    "AnalysisReport",
    "BASELINE_FILENAME",
    "Baseline",
    "Finding",
    "Project",
    "REGISTRY",
    "RULE_DESCRIPTIONS",
    "RULE_PACKS",
    "RULE_TITLES",
    "Rule",
    "RuleRegistry",
    "SourceFile",
    "Suppression",
    "WARNING_CODES",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "describe_rule",
    "find_project_root",
    "iter_python_files",
    "load_baseline",
    "parse_suppressions",
    "rule",
    "severity_of",
    "write_baseline",
]
