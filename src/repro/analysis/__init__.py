"""Domain-aware source static analysis (``repro lint``, ``R0xx`` codes).

Where :mod:`repro.verify` proves emitted *plans* consistent at runtime
(``V0xx`` diagnostics), this package proves *source files* obey the
project's domain invariants at review time: unit discipline in the
Eq. (1)/(2) GLB accounting, determinism and picklability on the process
-pool experiment path, and cross-file registry consistency.  Violations
are :class:`Finding` records with stable ``R0xx`` codes (see
:mod:`repro.analysis.codes` and ``docs/static-analysis.md``); intentional
exceptions carry inline ``# repro: noqa[Rxxx] -- reason`` markers, and
grandfathered findings live in the committed ``lint-baseline.json``.

Checking is interprocedural where it matters: a project-wide call graph
(:mod:`repro.analysis.callgraph`) feeds unit-flow inference
(``R040``–``R044``, :mod:`repro.analysis.unitflow`) and determinism-
reachability analysis (``R050``–``R053``,
:mod:`repro.analysis.reach_rules`), so a ``_bytes`` value crossing a
module boundary into an ``_elems`` parameter, or an RNG call three
levels below a cache-key constructor, is caught from the declaration
conventions alone.

Entry points: :func:`analyze_paths`, :func:`analyze_source`, and the
``repro lint`` CLI subcommand (``--format sarif`` exports SARIF 2.1.0
via :mod:`repro.report.sarif`).
"""

from .baseline import (
    BASELINE_FILENAME,
    Baseline,
    load_baseline,
    write_baseline,
)
from .callgraph import CallGraph, FunctionInfo, build_callgraph
from .codes import (
    ALL_RULE_CODES,
    RULE_DESCRIPTIONS,
    RULE_PACKS,
    RULE_TITLES,
    WARNING_CODES,
    describe_rule,
)
from .engine import analyze_paths, analyze_source, find_project_root, iter_python_files
from .findings import AnalysisReport, Finding, severity_of
from .rules import REGISTRY, Project, Rule, RuleRegistry, SourceFile, all_rules, rule
from .suppressions import Suppression, parse_suppressions

__all__ = [
    "ALL_RULE_CODES",
    "AnalysisReport",
    "BASELINE_FILENAME",
    "Baseline",
    "CallGraph",
    "Finding",
    "FunctionInfo",
    "Project",
    "REGISTRY",
    "RULE_DESCRIPTIONS",
    "RULE_PACKS",
    "RULE_TITLES",
    "Rule",
    "RuleRegistry",
    "SourceFile",
    "Suppression",
    "WARNING_CODES",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "build_callgraph",
    "describe_rule",
    "find_project_root",
    "iter_python_files",
    "load_baseline",
    "parse_suppressions",
    "rule",
    "severity_of",
    "write_baseline",
]
