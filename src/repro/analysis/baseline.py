"""The committed baseline of grandfathered findings.

New rules occasionally land against a codebase with pre-existing
violations that are expensive to fix in the same change.  Rather than
weakening the rule or sprinkling noqa comments, such findings are
*baselined*: recorded in a committed JSON file by content-addressed
fingerprint (rule code + path + normalized source snippet — independent
of both line numbers and message wording, so neither unrelated edits
above a finding nor rule-message rewording churn the file; the entry
re-arms exactly when the offending line itself changes).
Baselined findings are reported but do not gate; deleting an entry (or
the fixing of the underlying code) re-arms the rule.

Workflow::

    repro lint src/repro --write-baseline    # (re)generate lint-baseline.json
    repro lint src/repro --no-baseline       # see grandfathered findings too

The repo's policy is a *shrinking* baseline: entries may be removed,
never added, outside a change that introduces a new rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .findings import Finding

#: Schema version of the baseline file.  Version 2 switched the
#: fingerprint basis from (code, path, message) to (code, path,
#: normalized snippet); v1 files no longer match and must be
#: regenerated with ``--write-baseline``.
BASELINE_SCHEMA = 2

#: Default baseline filename, looked up at the project root.
BASELINE_FILENAME = "lint-baseline.json"


@dataclass(frozen=True)
class Baseline:
    """Parsed baseline: fingerprints of grandfathered findings."""

    fingerprints: frozenset[str] = frozenset()
    path: Path | None = None

    def __len__(self) -> int:
        return len(self.fingerprints)

    def covers(self, finding: Finding) -> bool:
        """Whether the baseline grandfathers the given finding."""
        return finding.fingerprint() in self.fingerprints


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        return Baseline(path=path)
    if not isinstance(raw, dict) or raw.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"{path}: not a schema-{BASELINE_SCHEMA} baseline file "
            f"(older versions fingerprinted by message; regenerate with "
            f"--write-baseline)"
        )
    entries = raw.get("entries", [])
    return Baseline(
        fingerprints=frozenset(str(e["fingerprint"]) for e in entries),
        path=path,
    )


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write every unsuppressed finding's fingerprint; returns the count.

    Entries keep the human-readable code/path/snippet next to the
    fingerprint so baseline diffs review like normal code (the snippet
    is the normalized source line the fingerprint actually hashes).
    """
    entries = [
        {
            "code": f.code,
            "path": f.path,
            "snippet": f.normalized_snippet(),
            "fingerprint": f.fingerprint(),
        }
        for f in sorted(
            (f for f in findings if not f.suppressed),
            key=lambda f: (f.path, f.line, f.code),
        )
    ]
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)
