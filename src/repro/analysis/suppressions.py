"""Inline suppression comments: ``# repro: noqa[Rxxx] -- reason``.

A finding is suppressed when the line it anchors to carries a marker
naming its code.  Markers accept multiple codes and an optional (but
strongly encouraged — the project convention requires it for anything
intentionally kept) free-text reason after ``--``::

    stats = CacheStats()  # repro: noqa[R015] -- per-process counters by design
    base = os.environ.get("XDG")  # repro: noqa[R011,R010] -- documented knob

Blanket suppressions (bare ``noqa`` without codes) are deliberately not
supported: every silenced finding names what it silences.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_MARKER = re.compile(
    r"#\s*repro:\s*noqa\[(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*)\]"
    r"(?:\s*--\s*(?P<reason>.*))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed noqa marker: the line it covers, its codes and reason."""

    line: int
    codes: frozenset[str]
    reason: str = ""


def parse_suppressions(source: str) -> tuple[Suppression, ...]:
    """Extract every ``# repro: noqa[...]`` marker from a source text."""
    found = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _MARKER.search(text)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group("codes").split(",")
        )
        reason = (match.group("reason") or "").strip()
        found.append(Suppression(line=lineno, codes=codes, reason=reason))
    return tuple(found)


def suppressed_at(
    suppressions: tuple[Suppression, ...], line: int, code: str
) -> bool:
    """Whether a finding of ``code`` on ``line`` is covered by a marker."""
    return any(s.line == line and code in s.codes for s in suppressions)
