"""Observability rule pack (``R030``–``R031``).

The telemetry subsystem (:mod:`repro.obs`) has a usage contract the
runtime cannot enforce:

* A :class:`~repro.obs.tracer.Span` records itself (and balances its
  tracer's nesting depth) only on ``__exit__`` — so every
  ``tracer.start(...)`` call must be the context expression of a
  ``with`` statement.  A bare call "works" (no exception) but silently
  drops the span and skews the depth of every later span on that
  thread.  ``R030`` makes the convention checkable.
* Merged metric snapshots cross process and subsystem boundaries, so a
  metric's unit must travel in its *name* — the
  :data:`repro.obs.metrics.UNIT_SUFFIXES` convention
  (``plan_cache_hits_count``, ``dram_reads_bytes``,
  ``plan_cached_seconds``).  The registry raises ``ValueError`` for
  unsuffixed names at runtime, but only on the traced path; ``R031``
  flags them at review time, on every path.

Both rules are name-heuristic (receivers matching ``tracer`` /
``metric``/``registry``), matching the repo's accessor convention
(``get_tracer()``, ``metrics_registry()``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..obs.metrics import UNIT_SUFFIXES, has_unit_suffix
from .findings import Finding
from .rules import SourceFile, rule

#: Receiver names that identify a tracer object (R030).
_TRACER_RECEIVER = re.compile(r"tracer", re.IGNORECASE)

#: Methods on a tracer that open a span (R030).
_SPAN_METHODS = frozenset({"start", "span"})

#: Receiver names that identify a metrics registry (R031).
_METRICS_RECEIVER = re.compile(r"metric|registry", re.IGNORECASE)

#: Registry methods that create/fetch a named instrument (R031).
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _terminal_name(node: ast.expr) -> str | None:
    """The identifier an expression terminates in (``a.b.c()`` → ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _span_label(node: ast.Call) -> str:
    """Readable label for a span-opening call, for messages."""
    if node.args and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, str):
            return f"span '{value}'"
    text = ast.unparse(node)
    return text if len(text) <= 40 else text[:37] + "..."


def _with_context_exprs(tree: ast.Module) -> set[int]:
    """Ids of every expression used directly as a ``with`` item."""
    contexts: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                contexts.add(id(item.context_expr))
    return contexts


@rule("R030")
def check_span_context_manager(file: SourceFile) -> Iterator[Finding]:
    """Every ``tracer.start(...)`` call is a ``with`` context expression."""
    contexts = _with_context_exprs(file.tree)
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _SPAN_METHODS:
            continue
        receiver = _terminal_name(func.value)
        if receiver is None or not _TRACER_RECEIVER.search(receiver):
            continue
        if id(node) in contexts:
            continue
        yield file.finding(
            "R030",
            node,
            f"{_span_label(node)} opened outside a 'with' statement; spans "
            f"record only on __exit__, so this span is silently dropped "
            f"and the tracer's nesting depth is corrupted",
        )


@rule("R031")
def check_metric_unit_suffix(file: SourceFile) -> Iterator[Finding]:
    """Literal metric names carry a ``UNIT_SUFFIXES`` unit suffix."""
    for node in ast.walk(file.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _METRIC_METHODS:
            continue
        receiver = _terminal_name(func.value)
        if receiver is None or not _METRICS_RECEIVER.search(receiver):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        if has_unit_suffix(first.value):
            continue
        yield file.finding(
            "R031",
            node,
            f"metric name '{first.value}' lacks a unit suffix; merged "
            f"snapshots need the unit in the name — end it with one of "
            f"{', '.join(UNIT_SUFFIXES)}",
        )
