"""Interprocedural unit-flow rule pack (``R040``–``R044``, project scope).

The per-file unit pack (R001–R004) sees only suffix-typed *names*; a
``_bytes`` value returned into an ``_elems`` parameter two modules away
is invisible to it.  This pack closes that hole with a small abstract
interpretation over the project call graph
(:mod:`repro.analysis.callgraph`):

Unit lattice
------------
Every expression is mapped into ``bytes | bits | elems | kib | cycles |
pj | seconds | unitless`` plus derived *rates* (``rate:bytes/cycles``,
the inferred unit of ``glb_bytes / latency_cycles``) and *unknown*
(``None``) — no information, never a conflict.  Base facts come from
the repository's suffix convention (``tile_bytes``, ``glb_kb``,
``energy_pj``, ``…_per_cycle``); derived facts come from arithmetic
transfer functions:

* ``+``/``-`` preserve a shared unit (``unitless`` offsets are
  transparent);
* ``elems * X → X`` (a count times a per-element quantity),
  ``X * rate:Y/X → Y``, and the sanctioned literal transitions
  ``bits // 8 → bytes``, ``bytes / 1024 → kib``, ``kib * 1024 →
  bytes``, ``bytes * 8 → bits``;
* ``X / X → unitless``, ``X / rate:X/Y → Y``, and ``bytes // elems →
  rate:bytes/elems`` (a per-element rate, not a conflict);
* the :mod:`repro.arch.units` helpers are *sanctioned casts* with fixed
  signatures (``kib(n) → bytes``, ``to_kib(nbytes) → kib``).

Function summaries (parameter units from names, return unit from the
declared name suffix or the inferred return expressions) are propagated
to a fixpoint over the call graph, then five checks run:

* **R040** — a call-site argument whose inferred unit contradicts the
  parameter's declared unit;
* **R041** — a function whose name declares a unit but whose return
  expression infers a different one;
* **R042** — an assignment binding a unit-suffixed name to a value of a
  different inferred unit;
* **R043** — additive/comparison unit mixes that only interprocedural
  inference can see (the R001 extension);
* **R044** — a sanctioned cast applied to the wrong input unit
  (``to_kib(n_elems)``, ``kib(x_bytes)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .callgraph import CallGraph, FunctionInfo
from .findings import Finding
from .rules import Project, rule
from .unit_rules import unit_of as suffix_unit_of

#: Plain units of the lattice (rates are ``"rate:<num>/<den>"`` strings).
PLAIN_UNITS = ("bytes", "bits", "elems", "kib", "cycles", "pj", "seconds")

#: Name fragment → canonical plain unit (singular and plural spellings).
_SUFFIX_UNITS: dict[str, str] = {
    "bytes": "bytes",
    "byte": "bytes",
    "bits": "bits",
    "bit": "bits",
    "elems": "elems",
    "elements": "elems",
    "elem": "elems",
    "kib": "kib",
    "kb": "kib",
    "cycles": "cycles",
    "cycle": "cycles",
    "pj": "pj",
    "seconds": "seconds",
}

#: Exact names with a conventional unit but no underscore suffix.
_EXACT_NAMES: dict[str, str] = {"nbytes": "bytes", "nbits": "bits"}

#: Sanctioned casts: helper name → (required input unit, output unit).
#: ``kib(n)`` takes a KiB *count* (unknown input is fine) and returns
#: bytes; ``to_kib(nbytes)`` takes bytes and returns KiB.
CAST_SIGNATURES: dict[str, tuple[str | None, str | None]] = {
    "kib": (None, "bytes"),
    "mib": (None, "bytes"),
    "to_kib": ("bytes", "kib"),
    "to_mib": ("bytes", None),
}

#: Wrappers that preserve the unit of their first argument.
_UNIT_PRESERVING = frozenset({"int", "round", "floor", "ceil", "abs", "float"})

#: Reductions whose result joins the units of their arguments.
_UNIT_JOINING = frozenset({"min", "max", "sum"})


def _norm_fragment(fragment: str) -> str | None:
    """Canonical plain unit of one name fragment, if any."""
    return _SUFFIX_UNITS.get(fragment)


def name_unit(name: str | None) -> str | None:
    """Unit a name declares through the repository's suffix convention.

    Returns a plain unit, a ``rate:num/den`` string for ``…_per_…``
    names (``bytes_per_cycle`` → ``rate:bytes/cycles``), or ``None``.
    """
    if not name:
        return None
    lowered = name.lower()
    if "_per_" in lowered:
        num_part, _, den_part = lowered.partition("_per_")
        num = name_unit(num_part)
        den = _norm_fragment(den_part.split("_")[0])
        if num in PLAIN_UNITS and den is not None:
            return f"rate:{num}/{den}"
        return None
    if lowered in _EXACT_NAMES:
        return _EXACT_NAMES[lowered]
    for suffix, unit in _SUFFIX_UNITS.items():
        if lowered == suffix or lowered.endswith("_" + suffix):
            return unit
    return None


def is_plain(unit: str | None) -> bool:
    """Whether a lattice value is a concrete plain unit."""
    return unit in PLAIN_UNITS


def _rate_parts(unit: str | None) -> tuple[str, str] | None:
    if unit is None or not unit.startswith("rate:"):
        return None
    num, _, den = unit[len("rate:") :].partition("/")
    return num, den


def join_units(left: str | None, right: str | None) -> str | None:
    """Additive join: shared unit, transparent unitless, else unknown."""
    if left == right:
        return left
    if left is None or left == "unitless":
        return right
    if right is None or right == "unitless":
        return left
    return None


def multiply_units(left: str | None, right: str | None) -> str | None:
    """Multiplicative transfer (count semantics for ``elems``)."""
    for a, b in ((left, right), (right, left)):
        rate = _rate_parts(a)
        if rate is not None and b == rate[1]:
            return rate[0]  # X * rate:Y/X → Y
    if left == "unitless" and right == "unitless":
        return "unitless"
    if left in ("unitless", None) or right in ("unitless", None):
        other = right if left in ("unitless", None) else left
        if other == "elems":
            # count * scalar is the idiomatic elems→bytes conversion
            # (n_elems * dtype_size); the product's unit is unknowable.
            return None
        return other if is_plain(other) else None
    if left == "elems" and is_plain(right):
        return right if right != "elems" else "elems"
    if right == "elems" and is_plain(left):
        return left
    return None


def divide_units(left: str | None, right: str | None) -> str | None:
    """Division transfer: same-unit → unitless, per-unit → rate."""
    if left is None:
        return None
    if left == right:
        return "unitless"
    rate = _rate_parts(right)
    if rate is not None and left == rate[0]:
        return rate[1]  # X / rate:X/Y → Y
    if right is None:
        return None  # unknown denominator: could be a normalizer
    if right == "unitless":
        return left
    if is_plain(left) and is_plain(right):
        return f"rate:{left}/{right}"
    return None


def _const_value(node: ast.expr) -> int | float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return node.value
    return None


@dataclass
class Summary:
    """Interprocedural facts about one function."""

    info: FunctionInfo
    param_units: dict[str, str | None] = field(default_factory=dict)
    declared_unit: str | None = None
    return_unit: str | None = None

    @property
    def effective_return(self) -> str | None:
        """Declared unit when present, else the inferred return unit."""
        return self.declared_unit or self.return_unit


def _is_cast(info: FunctionInfo) -> bool:
    """Whether a function is one of the sanctioned unit-cast helpers."""
    return info.module.endswith("arch.units") and info.name in CAST_SIGNATURES


def _own_statements(func: ast.AST) -> Iterator[ast.stmt]:
    """Statements of a function body in source order, nested defs excluded."""
    stack: list[ast.stmt] = list(
        reversed(getattr(func, "body", []))
    )
    ordered: list[ast.stmt] = []
    while stack:
        stmt = stack.pop()
        ordered.append(stmt)
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for block in ("body", "orelse", "finalbody"):
            stack.extend(reversed(getattr(stmt, block, [])))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(reversed(handler.body))
    yield from ordered


class UnitFlow:
    """Shared unit-inference state for the R040–R044 checkers.

    Built once per project (cached on the call graph object) — the
    summaries are propagated to a fixpoint before any checker runs.
    """

    #: Fixpoint passes: summaries feed call expressions feed summaries.
    _PASSES = 3

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        #: id(Call node) → resolved callee qualname.
        self.call_targets: dict[int, str] = {}
        for sites in graph.callsites.values():
            for callee, call, _file in sites:
                self.call_targets[id(call)] = callee
        self.summaries: dict[str, Summary] = {
            qualname: self._base_summary(info)
            for qualname, info in graph.functions.items()
        }
        for _ in range(self._PASSES):
            changed = False
            for qualname, info in graph.functions.items():
                inferred = self._infer_return(info)
                if inferred != self.summaries[qualname].return_unit:
                    self.summaries[qualname].return_unit = inferred
                    changed = True
            if not changed:
                break

    # -- summaries -------------------------------------------------------

    def _base_summary(self, info: FunctionInfo) -> Summary:
        params = {name: name_unit(name) for name in info.param_names()}
        declared = name_unit(info.name)
        if not is_plain(declared) or _is_cast(info):
            declared = CAST_SIGNATURES[info.name][1] if _is_cast(info) else None
        return Summary(info=info, param_units=params, declared_unit=declared)

    def _infer_return(self, info: FunctionInfo) -> str | None:
        env = self._initial_env(info)
        unit: str | None = None
        for stmt in _own_statements(info.node):
            self._bind_stmt(stmt, env)
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                unit = join_units(unit, self.infer(stmt.value, env))
        return unit

    def _initial_env(self, info: FunctionInfo) -> dict[str, str | None]:
        return {
            name: unit
            for name, unit in self.summaries[info.qualname].param_units.items()
            if unit is not None
        }

    def _bind_stmt(self, stmt: ast.stmt, env: dict[str, str | None]) -> None:
        """Fold one assignment statement into the local unit environment."""
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            return
        inferred = self.infer(value, env)
        for target in targets:
            if isinstance(target, ast.Name):
                declared = name_unit(target.id)
                env[target.id] = declared if declared is not None else inferred

    # -- expression inference --------------------------------------------

    def infer(
        self, node: ast.expr, env: dict[str, str | None]
    ) -> str | None:
        """Lattice unit of an expression under a local environment."""
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return name_unit(node.id)
        if isinstance(node, ast.Attribute):
            return name_unit(node.attr)
        if isinstance(node, ast.Constant):
            return "unitless" if _const_value(node) is not None else None
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, env)
        if isinstance(node, ast.IfExp):
            return join_units(
                self.infer(node.body, env), self.infer(node.orelse, env)
            )
        if isinstance(node, ast.BoolOp):
            unit: str | None = None
            for value in node.values:
                unit = join_units(unit, self.infer(value, env))
            return unit
        if isinstance(node, ast.NamedExpr):
            return self.infer(node.value, env)
        return None

    def _terminal_name(self, func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _infer_call(
        self, node: ast.Call, env: dict[str, str | None]
    ) -> str | None:
        name = self._terminal_name(node.func)
        callee = self.call_targets.get(id(node))
        if callee is not None:
            return self.summaries[callee].effective_return
        if name in CAST_SIGNATURES:
            return CAST_SIGNATURES[name][1]
        if name == "ceil_div" and len(node.args) == 2:
            return divide_units(
                self.infer(node.args[0], env), self.infer(node.args[1], env)
            )
        if name in _UNIT_PRESERVING and node.args:
            return self.infer(node.args[0], env)
        if name in _UNIT_JOINING and node.args:
            unit: str | None = None
            for arg in node.args:
                if isinstance(arg, ast.Starred):
                    return None
                unit = join_units(unit, self.infer(arg, env))
            return unit
        return None

    def _infer_binop(
        self, node: ast.BinOp, env: dict[str, str | None]
    ) -> str | None:
        left = self.infer(node.left, env)
        right = self.infer(node.right, env)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            return join_units(left, right)
        if isinstance(node.op, ast.Mult):
            for a_unit, b_node in ((left, node.right), (right, node.left)):
                const = _const_value(b_node)
                if a_unit == "kib" and const == 1024:
                    return "bytes"  # sanctioned KiB → bytes transition
                if a_unit == "bytes" and const == 8:
                    return "bits"  # sanctioned bytes → bits transition
            return multiply_units(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            const = _const_value(node.right)
            if left == "bits" and const == 8:
                return "bytes"  # the canonical data_width_bits // 8
            if left == "bytes" and const == 1024:
                return "kib"
            return divide_units(left, right)
        if isinstance(node.op, ast.Mod):
            return left
        return None


def unitflow_for(project: Project) -> UnitFlow:
    """The project's unit-flow state, computed once and cached."""
    graph = project.callgraph()
    cached: UnitFlow | None = getattr(graph, "_unitflow_cache", None)
    if cached is None:
        cached = UnitFlow(project, graph)
        setattr(graph, "_unitflow_cache", cached)
    return cached


def _walk_no_defs(node: ast.AST) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but without descending into nested defs."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def _describe(unit: str | None) -> str:
    return unit if unit is not None else "unknown"


def _src(node: ast.expr) -> str:
    text = ast.unparse(node)
    return text if len(text) <= 40 else text[:37] + "..."


# ----------------------------------------------------------------------
# R040 — call-site unit mismatch
# ----------------------------------------------------------------------


def _call_bindings(
    call: ast.Call, callee: FunctionInfo
) -> Iterator[tuple[str, ast.expr]]:
    """(parameter name, argument expression) pairs of one call site."""
    params = callee.param_names()
    offset = 0
    if (
        callee.is_method
        and not callee.is_static
        and params
        and params[0] in ("self", "cls")
    ):
        offset = 1
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        index = offset + i
        if index < len(params):
            yield params[index], arg
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in params:
            yield kw.arg, kw.value


@rule("R040", scope="project")
def check_call_site_units(project: Project) -> Iterator[Finding]:
    """Flag arguments whose inferred unit contradicts the parameter's."""
    flow = unitflow_for(project)
    for caller, sites in sorted(flow.graph.callsites.items()):
        caller_info = flow.graph.functions.get(caller)
        env = flow._initial_env(caller_info) if caller_info else {}
        if caller_info is not None:
            for stmt in _own_statements(caller_info.node):
                flow._bind_stmt(stmt, env)
        for callee_name, call, file in sites:
            callee = flow.graph.functions[callee_name]
            if _is_cast(callee):
                continue  # cast boundaries are R044's job
            for param, arg in _call_bindings(call, callee):
                declared = flow.summaries[callee_name].param_units.get(param)
                if not is_plain(declared):
                    continue
                inferred = flow.infer(arg, env)
                if is_plain(inferred) and inferred != declared:
                    yield file.finding(
                        "R040",
                        call,
                        f"argument {_src(arg)} carries {_describe(inferred)} "
                        f"but parameter '{param}' of {callee_name}() "
                        f"declares {_describe(declared)}; convert through "
                        f"repro.arch.units at the boundary",
                    )


# ----------------------------------------------------------------------
# R041 — return-boundary unit mismatch
# ----------------------------------------------------------------------


@rule("R041", scope="project")
def check_return_units(project: Project) -> Iterator[Finding]:
    """Flag returns whose inferred unit contradicts the declared name."""
    flow = unitflow_for(project)
    for qualname, info in sorted(flow.graph.functions.items()):
        if _is_cast(info):
            continue
        declared = name_unit(info.name)
        if not is_plain(declared):
            continue
        env = flow._initial_env(info)
        for stmt in _own_statements(info.node):
            flow._bind_stmt(stmt, env)
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                inferred = flow.infer(stmt.value, env)
                if is_plain(inferred) and inferred != declared:
                    yield info.file.finding(
                        "R041",
                        stmt,
                        f"{qualname}() declares {_describe(declared)} by "
                        f"name but returns {_describe(inferred)} "
                        f"({_src(stmt.value)}); every caller's arithmetic "
                        f"is now mislabeled",
                    )


# ----------------------------------------------------------------------
# R042 — cross-unit assignment through dataflow
# ----------------------------------------------------------------------


@rule("R042", scope="project")
def check_assignment_units(project: Project) -> Iterator[Finding]:
    """Flag unit-suffixed names bound to values of a different unit."""
    flow = unitflow_for(project)
    for _qualname, info in sorted(flow.graph.functions.items()):
        if _is_cast(info):
            continue
        env = flow._initial_env(info)
        for stmt in _own_statements(info.node):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is not None:
                inferred = flow.infer(value, env)
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    declared = name_unit(target.id)
                    if (
                        is_plain(declared)
                        and is_plain(inferred)
                        and inferred != declared
                    ):
                        yield info.file.finding(
                            "R042",
                            stmt,
                            f"'{target.id}' declares {_describe(declared)} "
                            f"but is assigned {_describe(inferred)} "
                            f"({_src(value)}); the mislabeled binding "
                            f"defeats every downstream unit check",
                        )
            flow._bind_stmt(stmt, env)


# ----------------------------------------------------------------------
# R043 — interprocedural unit mix in arithmetic
# ----------------------------------------------------------------------


@rule("R043", scope="project")
def check_interproc_unit_mix(project: Project) -> Iterator[Finding]:
    """Flag unit mixes only visible through interprocedural inference."""
    flow = unitflow_for(project)
    for _qualname, info in sorted(flow.graph.functions.items()):
        if _is_cast(info):
            continue
        env = flow._initial_env(info)
        binops: list[tuple[ast.expr, ast.expr, ast.AST]] = []
        for stmt in _own_statements(info.node):
            flow._bind_stmt(stmt, env)
            for node in _walk_no_defs(stmt):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    binops.append((node.left, node.right, node))
                elif isinstance(node, ast.Compare):
                    operands = [node.left, *node.comparators]
                    for op, left, right in zip(
                        node.ops, operands, operands[1:]
                    ):
                        if isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)):
                            binops.append((left, right, node))
        for left, right, anchor in binops:
            lu, ru = flow.infer(left, env), flow.infer(right, env)
            if not (is_plain(lu) and is_plain(ru)) or lu == ru:
                continue
            # R001's suffix-only view already fires on these; skip them.
            sl, sr = suffix_unit_of(left), suffix_unit_of(right)
            if sl is not None and sr is not None and sl != sr:
                continue
            yield info.file.finding(
                "R043",
                anchor,
                f"mixes {_describe(lu)} ({_src(left)}) with "
                f"{_describe(ru)} ({_src(right)}) through dataflow the "
                f"per-file R001 cannot see; convert through "
                f"repro.arch.units first",
            )


# ----------------------------------------------------------------------
# R044 — unit-cast helper misuse
# ----------------------------------------------------------------------


@rule("R044", scope="project")
def check_cast_misuse(project: Project) -> Iterator[Finding]:
    """Flag sanctioned casts applied to the wrong input unit."""
    flow = unitflow_for(project)
    for caller, sites in sorted(flow.graph.callsites.items()):
        caller_info = flow.graph.functions.get(caller)
        env: dict[str, str | None] = {}
        if caller_info is not None:
            env = flow._initial_env(caller_info)
            for stmt in _own_statements(caller_info.node):
                flow._bind_stmt(stmt, env)
        for callee_name, call, file in sites:
            callee = flow.graph.functions[callee_name]
            if not _is_cast(callee) or not call.args:
                continue
            required, _output = CAST_SIGNATURES[callee.name]
            inferred = flow.infer(call.args[0], env)
            if required is not None:
                if is_plain(inferred) and inferred != required:
                    yield file.finding(
                        "R044",
                        call,
                        f"{callee.name}() expects {required} but its "
                        f"argument {_src(call.args[0])} carries "
                        f"{_describe(inferred)}",
                    )
            elif inferred == "bytes":
                yield file.finding(
                    "R044",
                    call,
                    f"{callee.name}() takes a KiB/MiB count, but "
                    f"{_src(call.args[0])} already carries bytes — this "
                    f"double-converts",
                )
