"""Rule registry and analysis contexts.

A :class:`Rule` binds a catalog code to a checker function.  Checkers
come in two scopes:

* ``file`` — called once per :class:`SourceFile` with that file's parsed
  AST; this is where the unit-safety and determinism packs live.
* ``project`` — called once per :class:`Project` with every parsed file
  and the repository root; this is where cross-file registry-consistency
  checks live.

Rule modules self-register at import time via the :func:`rule`
decorator; :func:`all_rules` imports the packs and returns the frozen
registry.  Registration validates that every code exists in the
:mod:`~repro.analysis.codes` catalog and is bound at most once — the
registry itself satisfies the ``R020`` discipline it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .codes import RULE_PACKS, RULE_TITLES
from .findings import Finding, severity_of
from .suppressions import Suppression, parse_suppressions

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .callgraph import CallGraph


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file handed to file-scope checkers."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: tuple[Suppression, ...] = ()

    @classmethod
    def parse(cls, path: Path, relpath: str, source: str) -> "SourceFile":
        """Parse a source text (raises :class:`SyntaxError` on bad input)."""
        return cls(
            path=path,
            relpath=relpath,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            suppressions=parse_suppressions(source),
        )

    def finding(self, code: str, node: ast.AST | int, message: str) -> Finding:
        """Build a finding anchored to an AST node (or raw line number).

        The anchored source line rides along as the finding's snippet,
        which is what the content-addressed baseline fingerprint hashes
        (so findings survive edits that merely move them).
        """
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        lines = self.source.splitlines()
        snippet = lines[line - 1] if 1 <= line <= len(lines) else ""
        return Finding(
            code=code,
            path=self.relpath,
            line=line,
            message=message,
            severity=severity_of(code),
            snippet=snippet,
        )


@dataclass(frozen=True)
class Project:
    """The whole analyzed file set, handed to project-scope checkers."""

    root: Path
    files: tuple[SourceFile, ...]

    def find(self, rel_suffix: str) -> SourceFile | None:
        """The analyzed file whose relpath ends with ``rel_suffix``."""
        for f in self.files:
            if f.relpath.endswith(rel_suffix):
                return f
        return None

    def doc_text(self, relpath: str) -> str | None:
        """Text of a repo document (``docs/…``), or None when absent."""
        path = self.root / relpath
        try:
            return path.read_text()
        except OSError:
            return None

    def finding(self, code: str, relpath: str, line: int, message: str) -> Finding:
        """Build a finding anchored to an arbitrary project file/line.

        When ``relpath`` names an analyzed source file, the anchored
        line's text rides along as the finding's snippet (the basis of
        the content-addressed baseline fingerprint).
        """
        snippet = ""
        for file in self.files:
            if file.relpath == relpath:
                lines = file.source.splitlines()
                if 1 <= line <= len(lines):
                    snippet = lines[line - 1]
                break
        return Finding(
            code=code,
            path=relpath,
            line=line,
            message=message,
            severity=severity_of(code),
            snippet=snippet,
        )

    def callgraph(self) -> "CallGraph":
        """The project-wide call graph, built once and cached.

        Both interprocedural packs (unit-flow and determinism-
        reachability) share the same graph, so it is memoized on the
        project instance.
        """
        from .callgraph import build_callgraph

        cached: "CallGraph | None" = getattr(self, "_callgraph_cache", None)
        if cached is None:
            cached = build_callgraph(self)
            object.__setattr__(self, "_callgraph_cache", cached)
        return cached


#: Checker signature: file-scope rules take a SourceFile, project-scope
#: rules take a Project; both yield findings.
Checker = Callable[..., Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered rule: a catalog code bound to a checker function."""

    code: str
    scope: str  # "file" | "project"
    check: Checker

    @property
    def title(self) -> str:
        """Catalog title of the rule's code."""
        return RULE_TITLES[self.code]

    @property
    def pack(self) -> str:
        """Catalog pack of the rule's code."""
        return RULE_PACKS[self.code]


@dataclass
class RuleRegistry:
    """Mutable registry the rule packs populate at import time."""

    rules: dict[str, Rule] = field(default_factory=dict)

    def register(self, code: str, scope: str, check: Checker) -> None:
        """Bind ``code`` to ``check`` (rejects unknown/duplicate codes)."""
        if code not in RULE_TITLES:
            raise ValueError(f"rule code {code!r} is not in the catalog")
        if code in self.rules:
            raise ValueError(f"rule code {code!r} registered twice")
        if scope not in ("file", "project"):
            raise ValueError(f"unknown rule scope {scope!r}")
        self.rules[code] = Rule(code=code, scope=scope, check=check)

    def __iter__(self) -> Iterator[Rule]:
        return iter(sorted(self.rules.values(), key=lambda r: r.code))

    def file_rules(self) -> tuple[Rule, ...]:
        """All file-scope rules, in code order."""
        return tuple(r for r in self if r.scope == "file")

    def project_rules(self) -> tuple[Rule, ...]:
        """All project-scope rules, in code order."""
        return tuple(r for r in self if r.scope == "project")


#: The process-wide registry the packs register into.
REGISTRY = RuleRegistry()


def rule(code: str, scope: str = "file") -> Callable[[Checker], Checker]:
    """Decorator registering a checker under a catalog code."""

    def wrap(check: Checker) -> Checker:
        REGISTRY.register(code, scope, check)
        return check

    return wrap


def all_rules() -> RuleRegistry:
    """Import the rule packs and return the populated registry."""
    from . import (
        concurrency_rules,
        determinism_rules,
        obs_rules,
        range_rules,
        reach_rules,
        registry_rules,
        unit_rules,
        unitflow,
    )

    assert (
        concurrency_rules
        and determinism_rules
        and obs_rules
        and range_rules
        and reach_rules
        and registry_rules
        and unit_rules
        and unitflow
    )  # imported to register
    return REGISTRY
