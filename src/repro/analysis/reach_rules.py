"""Determinism-reachability rule pack (``R050``–``R053``, project scope).

The per-file determinism pack (R010–R015) flags hazardous constructs
*wherever they occur*; it cannot say whether a given ``random.random()``
actually matters.  This pack adds the missing judgement: it walks the
project call graph (:mod:`repro.analysis.callgraph`) from the
**determinism roots** — the functions whose output must be bit-identical
across processes and reruns — and flags hazards that are *transitively
reachable* from them, each finding carrying a witness call chain.

Roots
-----
* **cache-key constructors** — functions whose names mark them as
  digest/key construction (``model_digest``, ``plan_cache_key``, …; the
  same naming contract R013/R014 use);
* **``plan_cached``** — the manager entry point whose results are
  persisted under those keys;
* **pool-worker entry points** — functions submitted to a process pool
  or installed as its ``initializer=`` (they run in worker processes
  whose outputs feed the shared cache);
* **serve request handlers** — functions named ``handle_*`` (the
  ``repro serve`` endpoint contract): their responses are served from
  and stored into the shared plan cache, so anything nondeterministic
  they can reach would leak divergent payloads to clients.

Rules
-----
* **R050** — a nondeterministic call (RNG, wall clock, pid, uuid) is
  reachable from any root; error.
* **R051** — an environment read is reachable from any root; warning,
  like its per-file sibling R011 — configuration boundaries are
  sometimes intentional, but a reachable one needs an explicit
  ``noqa[R051]`` sign-off *in addition to* the local ``noqa[R011]``.
* **R052** — unordered set iteration is reachable from the cache-key
  path in a function R013's name heuristic does not cover.
* **R053** — ``json.dumps`` without ``sort_keys=True`` is reachable from
  the cache-key path in a function R014 does not cover.

R050/R051 anchor at the hazardous call itself (same line as the
R010/R011 finding, so one ``noqa`` comment can carry both codes);
R052/R053 skip digest-named functions, where the per-file rules already
fire, to avoid duplicate findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from .callgraph import CallGraph, _alias_map, _Resolver, module_name
from .determinism_rules import (
    _DIGEST_CONTEXT,
    _ENV_READ_CALLS,
    _NondeterminismVisitor,
    _POOL_CONSTRUCTORS,
    _is_set_expr,
    import_map,
    resolve_call_target,
)
from .findings import Finding
from .rules import Project, rule


@dataclass(frozen=True)
class _Source:
    """One hazardous construct found inside a function body."""

    kind: str  # "nondet" | "env" | "set" | "json"
    node: ast.AST
    detail: str


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """All nodes of a function body, excluding nested def/class bodies.

    Lambda bodies are *included*: a lambda has no call-graph identity of
    its own, so hazards inside it belong to the enclosing function
    (``cache.fetch(key, lambda: plan(...))`` runs in the caller).
    """
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _function_sources(
    func: ast.AST, aliases: dict[str, str]
) -> list[_Source]:
    """Hazard sources inside one function's own body."""
    sources: list[_Source] = []
    for node in _own_nodes(func):
        if isinstance(node, ast.Call):
            target = resolve_call_target(node.func, aliases)
            if target is None:
                continue
            if target in _ENV_READ_CALLS:
                sources.append(_Source("env", node, f"{target}()"))
            elif _NondeterminismVisitor._is_nondeterministic(target, node):
                sources.append(_Source("nondet", node, f"{target}()"))
            elif target == "json.dumps":
                sorts = any(
                    kw.arg == "sort_keys"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in node.keywords
                )
                if not sorts:
                    sources.append(
                        _Source("json", node, "json.dumps without sort_keys")
                    )
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            target = resolve_call_target(node.value, aliases)
            if target == "os.environ":
                sources.append(_Source("env", node, "os.environ[...]"))
        else:
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    sources.append(
                        _Source("set", node, "iteration over an unordered set")
                    )
    return sources


def _is_pool_ctor(value: ast.expr, aliases: dict[str, str]) -> bool:
    if not isinstance(value, ast.Call):
        return False
    target = resolve_call_target(value.func, aliases)
    return target in _POOL_CONSTRUCTORS if target else False


class ReachAnalysis:
    """Shared reachability state for the R050–R053 checkers."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.graph = graph
        module_aliases = {
            module_name(f.relpath): _alias_map(f, module_name(f.relpath))
            for f in project.files
        }
        resolver = _Resolver(graph=graph, module_aliases=module_aliases)

        #: qualname → hazard sources inside that function's own body.
        self.sources: dict[str, list[_Source]] = {}
        for qualname, info in graph.functions.items():
            found = _function_sources(info.node, import_map(info.file.tree))
            if found:
                self.sources[qualname] = found

        self.key_roots = {
            qualname
            for qualname, info in graph.functions.items()
            if _DIGEST_CONTEXT.search(info.name.lower())
        }
        self.cache_roots = {
            qualname
            for qualname, info in graph.functions.items()
            if info.name == "plan_cached"
        }
        self.worker_roots = self._collect_worker_roots(project, resolver)
        self.serve_roots = {
            qualname
            for qualname, info in graph.functions.items()
            if info.name.startswith("handle_")
        }

        all_roots = (
            self.key_roots
            | self.cache_roots
            | self.worker_roots
            | self.serve_roots
        )
        #: reached qualname → witness chain, from every root.
        self.reach_all = graph.reachable_from(all_roots)
        #: reached qualname → witness chain, from the cache-key path only.
        self.reach_keys = graph.reachable_from(self.key_roots | self.cache_roots)

    def _collect_worker_roots(
        self, project: Project, resolver: _Resolver
    ) -> set[str]:
        """Functions handed to process pools (submit/map/initializer)."""
        roots: set[str] = set()
        for file in project.files:
            module = module_name(file.relpath)
            aliases = _alias_map(file, module)

            def resolve_ref(expr: ast.expr) -> str | None:
                if isinstance(expr, ast.Name):
                    for candidate in (
                        aliases.get(expr.id, expr.id),
                        f"{module}.{expr.id}",
                    ):
                        resolved = resolver.resolve(candidate)
                        if resolved is not None:
                            return resolved
                    return None
                dotted = resolve_call_target(expr, aliases)
                return resolver.resolve(dotted) if dotted else None

            pool_names: set[str] = set()
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Assign) and _is_pool_ctor(
                    node.value, aliases
                ):
                    pool_names.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
                elif isinstance(node, ast.With):
                    for item in node.items:
                        if _is_pool_ctor(item.context_expr, aliases) and isinstance(
                            item.optional_vars, ast.Name
                        ):
                            pool_names.add(item.optional_vars.id)
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                if _is_pool_ctor(node, aliases):
                    for kw in node.keywords:
                        if kw.arg == "initializer":
                            resolved = resolve_ref(kw.value)
                            if resolved is not None:
                                roots.add(resolved)
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("submit", "map")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in pool_names
                    and node.args
                ):
                    resolved = resolve_ref(node.args[0])
                    if resolved is not None:
                        roots.add(resolved)
        return roots


def reach_for(project: Project) -> ReachAnalysis:
    """The project's reachability state, computed once and cached."""
    graph = project.callgraph()
    cached: ReachAnalysis | None = getattr(graph, "_reach_cache", None)
    if cached is None:
        cached = ReachAnalysis(project, graph)
        setattr(graph, "_reach_cache", cached)
    return cached


def _chain_str(chain: tuple[str, ...]) -> str:
    """Human-readable witness chain (``repro.`` prefixes dropped)."""
    shown = [q[len("repro.") :] if q.startswith("repro.") else q for q in chain]
    return " -> ".join(shown)


def _emit(
    reach: ReachAnalysis,
    reached: dict[str, tuple[str, ...]],
    kind: str,
    code: str,
    describe: str,
    *,
    skip_digest_named: bool = False,
) -> Iterator[Finding]:
    """Findings for every ``kind`` source inside the reached set."""
    for qualname in sorted(reached):
        info = reach.graph.functions[qualname]
        if skip_digest_named and _DIGEST_CONTEXT.search(info.name.lower()):
            continue  # the per-file R013/R014 already fire here
        chain = reached[qualname]
        for source in reach.sources.get(qualname, ()):
            if source.kind != kind:
                continue
            yield info.file.finding(
                code,
                source.node,
                f"{source.detail} in {qualname}() is reachable from "
                f"determinism root {_chain_str(chain[:1])} "
                f"(call chain: {_chain_str(chain)}); {describe}",
            )


@rule("R050", scope="project")
def check_reachable_nondeterminism(project: Project) -> Iterator[Finding]:
    """Flag RNG/clock/pid calls reachable from a determinism root."""
    reach = reach_for(project)
    yield from _emit(
        reach,
        reach.reach_all,
        "nondet",
        "R050",
        "cached results and worker outputs must be bit-identical across "
        "processes and reruns",
    )


@rule("R051", scope="project")
def check_reachable_environment_reads(project: Project) -> Iterator[Finding]:
    """Flag environment reads reachable from a determinism root."""
    reach = reach_for(project)
    yield from _emit(
        reach,
        reach.reach_all,
        "env",
        "R051",
        "an intentional configuration boundary on this path needs an "
        "explicit noqa[R051] sign-off",
    )


@rule("R052", scope="project")
def check_reachable_set_iteration(project: Project) -> Iterator[Finding]:
    """Flag unordered set iteration reachable from the cache-key path."""
    reach = reach_for(project)
    yield from _emit(
        reach,
        reach.reach_keys,
        "set",
        "R052",
        "set order varies with PYTHONHASHSEED, so the serialized key "
        "diverges between worker processes",
        skip_digest_named=True,
    )


@rule("R053", scope="project")
def check_reachable_unsorted_json(project: Project) -> Iterator[Finding]:
    """Flag unsorted json.dumps reachable from the cache-key path."""
    reach = reach_for(project)
    yield from _emit(
        reach,
        reach.reach_keys,
        "json",
        "R053",
        "dict order leaks into the serialized key; pass sort_keys=True",
        skip_digest_named=True,
    )
