"""Concurrency-safety rule pack (``R060``–``R066``, project scope).

Consumes :mod:`repro.analysis.threadroots`: thread roots derived from
the serving stack's AST (request handlers, ``threading.Thread`` targets,
thread-pool thunks, signal handlers), reachability over the call graph
augmented with receiver-blind dispatch to shared-class methods, and
per-function concurrency facts.

Rules
-----
* **R060** — an unsynchronized write to shared mutable state (a module
  global, an attribute of a module-level singleton, a ``self`` attribute
  of a shared class) is reachable from at least two shared-memory thread
  contexts (a *concurrent* root — many handler threads, many pool
  clients — races with itself and counts as two).  The finding carries a
  witness call chain per context.  Process-isolated roots (pool workers,
  initializers) share no memory and never count.
* **R061** — an explicit ``.acquire()`` whose ``.release()`` is missing
  or not in a ``finally`` block: an exception between them leaks the
  lock forever.  (``with`` locks release structurally and never fire.)
* **R062** — lock-order inversion: lock B taken while holding A on one
  path and A taken while holding B on another (callee acquisitions
  included), the classic deadlock shape; ``flock`` file locks share one
  identity because the lock is the file, not the wrapper object.
* **R063** — a process pool created on a path *after* a thread was
  started in the same function: ``fork`` then snapshots lock/queue state
  mid-flight in threads that do not survive into the child.
* **R064** — more than one ``os.write`` to an ``O_APPEND`` journal fd in
  one function: each write is atomic, the *sequence* is not, so a
  concurrent appender can interleave between them and tear the record.
* **R065** — a blocking call (``sleep``, ``join``, ``result``,
  ``urlopen``, ``shutdown``, ``wait``) made while holding a lock;
  warning — it serializes every peer on I/O time.
* **R066** — a non-daemon thread started, never joined, and never
  escaping the function: nothing can join it later, so process exit
  (and the daemon's drain contract) blocks on it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .findings import Finding
from .rules import Project, rule
from .threadroots import ThreadAnalysis, threads_for


def _chain_str(chain: tuple[str, ...]) -> str:
    """Human-readable witness chain (``repro.`` prefixes dropped)."""
    shown = [q[len("repro.") :] if q.startswith("repro.") else q for q in chain]
    return " -> ".join(shown)


def _short(qualname: str) -> str:
    return qualname[len("repro.") :] if qualname.startswith("repro.") else qualname


@rule("R060", scope="project")
def check_unlocked_shared_writes(project: Project) -> Iterator[Finding]:
    """Flag unsynchronized shared-state writes under multiple threads."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        unprotected = [w for w in facts.writes if not w.protected]
        if not unprotected:
            continue
        contexts = analysis.contexts_reaching(qualname)
        weight = sum(2 if root.concurrent else 1 for root, _ in contexts)
        if weight < 2:
            continue
        info = analysis.graph.functions[qualname]
        primary_root, primary_chain = contexts[0]
        others = ", ".join(
            f"{_short(root.qualname)} ({root.kind})" for root, _ in contexts[1:3]
        )
        context_note = (
            f"{_short(primary_root.qualname)} ({primary_root.kind}"
            + (", concurrent with itself)" if primary_root.concurrent else ")")
            + (f" and {others}" if others else "")
        )
        for write in unprotected:
            yield info.file.finding(
                "R060",
                write.node,
                f"write to shared state '{write.target}' in {_short(qualname)}() "
                f"is reachable from {len(contexts)} thread context(s) — "
                f"{context_note} — without an enclosing lock "
                f"(call chain: {_chain_str(primary_chain)}); guard it with a "
                f"threading.Lock/flock or make it thread-local",
            )


@rule("R061", scope="project")
def check_unpaired_acquire(project: Project) -> Iterator[Finding]:
    """Flag ``.acquire()`` without a finally-guarded ``.release()``."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        if not facts.acquires:
            continue
        info = analysis.graph.functions[qualname]
        for event in facts.acquires:
            matching = [r for r in facts.releases if r.base == event.base]
            if not matching:
                yield info.file.finding(
                    "R061",
                    event.node,
                    f"{event.base}.acquire() in {_short(qualname)}() has no "
                    f"matching release in this function; an exception leaks "
                    f"the lock — prefer 'with {event.base}:'",
                )
            elif not any(r.in_finally for r in matching):
                yield info.file.finding(
                    "R061",
                    event.node,
                    f"{event.base}.acquire() in {_short(qualname)}() is "
                    f"released outside any finally block; an exception "
                    f"between acquire and release leaks the lock — use "
                    f"'with {event.base}:' or try/finally",
                )


@rule("R062", scope="project")
def check_lock_order_inversion(project: Project) -> Iterator[Finding]:
    """Flag opposite lock-nesting orders across the project."""
    analysis = threads_for(project)
    #: (outer, inner) → first witness (node, holder qualname).
    pairs: dict[tuple[str, str], tuple[ast.AST, str]] = {}
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        for outer, inner, node in facts.nested_pairs:
            pairs.setdefault((outer, inner), (node, qualname))
        for held, call in facts.calls_under_lock:
            callee = analysis.call_targets.get(id(call))
            if callee is None:
                continue
            for acquired in sorted(analysis.locks_transitive.get(callee, ())):
                if acquired != held:
                    pairs.setdefault((held, acquired), (call, qualname))
    reported: set[tuple[str, str]] = set()
    for (outer, inner), (node, qualname) in sorted(
        pairs.items(), key=lambda kv: (kv[1][1], getattr(kv[1][0], "lineno", 0))
    ):
        inverse = (inner, outer)
        if inverse not in pairs or (outer, inner) in reported:
            continue
        reported.add((outer, inner))
        reported.add(inverse)
        _, other_qualname = pairs[inverse]
        info = analysis.graph.functions[qualname]
        yield info.file.finding(
            "R062",
            node,
            f"lock-order inversion: {_short(qualname)}() takes '{inner}' "
            f"while holding '{outer}', but {_short(other_qualname)}() takes "
            f"them in the opposite order; two threads interleaving these "
            f"paths deadlock — pick one global order",
        )


@rule("R063", scope="project")
def check_fork_after_threads(project: Project) -> Iterator[Finding]:
    """Flag process pools created after a thread start on the same path."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        if not facts.thread_start_lines:
            continue
        first_start = min(facts.thread_start_lines)
        info = analysis.graph.functions[qualname]
        for node in facts.pool_ctor_nodes:
            if node.lineno > first_start:
                yield info.file.finding(
                    "R063",
                    node,
                    f"process pool created in {_short(qualname)}() after a "
                    f"thread was started on line {first_start}; fork "
                    f"snapshots held locks and in-flight state of threads "
                    f"that do not exist in the child — create pools before "
                    f"starting threads",
                )
        for callee, call, _file in analysis.graph.callsites.get(qualname, ()):
            if (
                call.lineno > first_start
                and callee in analysis.creates_pool_transitive
            ):
                yield info.file.finding(
                    "R063",
                    call,
                    f"{_short(qualname)}() calls {_short(callee)}() after "
                    f"starting a thread on line {first_start}, and "
                    f"{_short(callee)}() creates a process pool; fork after "
                    f"threads snapshots locks mid-flight — create pools "
                    f"before starting threads",
                )


@rule("R064", scope="project")
def check_journal_append_atomicity(project: Project) -> Iterator[Finding]:
    """Flag multi-write appends to an ``O_APPEND`` journal fd."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        info = analysis.graph.functions[qualname]
        for node, fd in facts.journal_multi_writes:
            yield info.file.finding(
                "R064",
                node,
                f"second os.write() to O_APPEND fd '{fd}' in "
                f"{_short(qualname)}(); each write is atomic but the "
                f"sequence is not — a concurrent appender interleaves "
                f"between them and tears the record; build the full line "
                f"first and write it once",
            )


@rule("R065", scope="project")
def check_blocking_under_lock(project: Project) -> Iterator[Finding]:
    """Flag blocking calls made while a lock is held (warning)."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        info = analysis.graph.functions[qualname]
        for lock, call in facts.blocking_under_lock:
            yield info.file.finding(
                "R065",
                call,
                f"blocking call {ast.unparse(call.func)}() in "
                f"{_short(qualname)}() while holding '{lock}'; every other "
                f"thread contending for the lock now waits on this I/O — "
                f"move the blocking work outside the critical section",
            )


@rule("R066", scope="project")
def check_leaked_threads(project: Project) -> Iterator[Finding]:
    """Flag non-daemon threads that outlive their function (warning)."""
    analysis = threads_for(project)
    for qualname in sorted(analysis.facts):
        facts = analysis.facts[qualname]
        info = analysis.graph.functions[qualname]
        for node, local in facts.leaked_threads:
            yield info.file.finding(
                "R066",
                node,
                f"non-daemon thread '{local}' started in {_short(qualname)}() "
                f"is neither joined nor handed to a caller; nothing can join "
                f"it, so drain/exit blocks on it — join it, store it, or "
                f"make it daemon=True",
            )


# Re-exported for the tests' convenience.
__all__ = [
    "ThreadAnalysis",
    "check_unlocked_shared_writes",
    "check_unpaired_acquire",
    "check_lock_order_inversion",
    "check_fork_after_threads",
    "check_journal_append_atomicity",
    "check_blocking_under_lock",
    "check_leaked_threads",
]
