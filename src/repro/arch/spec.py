"""Accelerator specification.

The paper's memory-management flow (Fig. 4) takes "accelerator
specifications" as input: operations per cycle, data width, GLB size and
off-chip memory bandwidth.  :class:`AcceleratorSpec` captures exactly those,
plus the PE-array geometry needed by the systolic timing model shared with
the SCALE-Sim baseline.

Defaults follow §4 of the paper: a 16×16 PE array, 512 OPs/cycle (a MAC
takes two cycles, so 256 MACs/cycle peak), 8-bit data, and an off-chip
bandwidth of 16 elements per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from .bounds import (
    MAX_DATA_WIDTH_BITS,
    MAX_DRAM_BANDWIDTH_ELEMS_PER_CYCLE,
    MAX_GLB_BYTES,
    MAX_OPS_PER_CYCLE,
    MAX_PE_DIM,
)
from .units import kib

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..dram.spec import DramSpec

#: GLB sizes evaluated throughout the paper (§4), in bytes.
PAPER_GLB_SIZES = (kib(64), kib(128), kib(256), kib(512), kib(1024))

#: Data widths swept in Fig. 7, in bits.
PAPER_DATA_WIDTHS = (8, 16, 32)


@dataclass(frozen=True)
class AcceleratorSpec:
    """Static description of the simulated accelerator.

    Attributes
    ----------
    pe_rows, pe_cols:
        Dimensions of the processing-element array (systolic array for the
        baseline; for the proposed design only the aggregate MAC rate and the
        mapping-utilization model use them).
    ops_per_cycle:
        Peak scalar operations per cycle.  A multiply-accumulate counts as
        two operations (paper §4), so the peak MAC rate is half this value.
    data_width_bits:
        Width of one tensor element in bits (8 by default, swept in Fig. 7).
    glb_bytes:
        Capacity of the unified global buffer in bytes.
    dram_bandwidth_elems_per_cycle:
        Off-chip bandwidth expressed in *elements* per cycle (the paper fixes
        16 elements/cycle, matching the maximum average bandwidth it measured
        for the SCALE-Sim baseline).
    dram:
        Optional banked-DRAM device model (:class:`~repro.dram.DramSpec`).
        ``None`` — the default — keeps the flat-bandwidth model everywhere,
        bit-identical to the paper's figures; when set, the latency
        estimator, the step-level engine and the energy model price
        off-chip traffic through the row-buffer backend instead.
    """

    pe_rows: int = 16
    pe_cols: int = 16
    ops_per_cycle: int = 512
    data_width_bits: int = 8
    glb_bytes: int = kib(256)
    dram_bandwidth_elems_per_cycle: float = 16.0
    dram: DramSpec | None = None

    def __post_init__(self) -> None:
        problems = []
        if self.pe_rows <= 0 or self.pe_cols <= 0:
            problems.append(
                f"PE array dimensions must be positive, got "
                f"{self.pe_rows}x{self.pe_cols}"
            )
        if self.ops_per_cycle <= 0:
            problems.append(
                f"ops_per_cycle must be positive, got {self.ops_per_cycle}"
            )
        if self.data_width_bits % 8 != 0 or self.data_width_bits <= 0:
            problems.append(
                f"data_width_bits must be a positive multiple of 8, got "
                f"{self.data_width_bits}"
            )
        if self.glb_bytes <= 0:
            problems.append(f"glb_bytes must be positive, got {self.glb_bytes}")
        if self.dram_bandwidth_elems_per_cycle <= 0:
            problems.append(
                f"dram_bandwidth_elems_per_cycle must be positive, got "
                f"{self.dram_bandwidth_elems_per_cycle}"
            )
        # Upper bounds of the supported spec space (repro.arch.bounds):
        # the R070 overflow prover guarantees the int64 closed forms only
        # inside them, so accepting a larger spec would trade a loud
        # ValueError here for a silent wraparound later.
        if self.pe_rows > MAX_PE_DIM or self.pe_cols > MAX_PE_DIM:
            problems.append(
                f"PE array dimensions must be at most {MAX_PE_DIM}, got "
                f"{self.pe_rows}x{self.pe_cols}"
            )
        if self.ops_per_cycle > MAX_OPS_PER_CYCLE:
            problems.append(
                f"ops_per_cycle must be at most {MAX_OPS_PER_CYCLE}, got "
                f"{self.ops_per_cycle}"
            )
        if self.data_width_bits > MAX_DATA_WIDTH_BITS:
            problems.append(
                f"data_width_bits must be at most {MAX_DATA_WIDTH_BITS}, "
                f"got {self.data_width_bits}"
            )
        if self.glb_bytes > MAX_GLB_BYTES:
            problems.append(
                f"glb_bytes must be at most {MAX_GLB_BYTES}, got "
                f"{self.glb_bytes}"
            )
        if self.dram_bandwidth_elems_per_cycle > MAX_DRAM_BANDWIDTH_ELEMS_PER_CYCLE:
            problems.append(
                f"dram_bandwidth_elems_per_cycle must be at most "
                f"{MAX_DRAM_BANDWIDTH_ELEMS_PER_CYCLE}, got "
                f"{self.dram_bandwidth_elems_per_cycle}"
            )
        if problems:
            raise ValueError("invalid AcceleratorSpec: " + "; ".join(problems))

    @property
    def bytes_per_elem(self) -> int:
        """Size of one tensor element in bytes."""
        return self.data_width_bits // 8  # repro: noqa[R004] -- the canonical bits->bytes boundary

    @property
    def macs_per_cycle(self) -> float:
        """Peak multiply-accumulate rate (one MAC = two ops, paper §4)."""
        return self.ops_per_cycle / 2.0

    @property
    def num_pes(self) -> int:
        """Total number of processing elements."""
        return self.pe_rows * self.pe_cols

    @property
    def dram_bandwidth_bytes_per_cycle(self) -> float:
        """Off-chip bandwidth in bytes per cycle for the configured width."""
        return self.dram_bandwidth_elems_per_cycle * self.bytes_per_elem

    @property
    def glb_elems(self) -> int:
        """GLB capacity expressed in elements of the configured width."""
        return self.glb_bytes // self.bytes_per_elem

    def with_glb(self, glb_bytes: int) -> "AcceleratorSpec":
        """Return a copy of this spec with a different GLB capacity."""
        return replace(self, glb_bytes=glb_bytes)

    def with_data_width(self, bits: int) -> "AcceleratorSpec":
        """Return a copy of this spec with a different element width."""
        return replace(self, data_width_bits=bits)

    def with_dram(self, dram: DramSpec | None) -> "AcceleratorSpec":
        """Return a copy backed by ``dram`` (``None`` restores flat mode)."""
        return replace(self, dram=dram)

    def transfer_cycles(self, nbytes: float) -> float:
        """Cycles to move ``nbytes`` across the off-chip interface."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return nbytes / self.dram_bandwidth_bytes_per_cycle


#: The paper's reference configuration (§4), 256 kB GLB variant.
DEFAULT_SPEC = AcceleratorSpec()
