"""Declared bounds of the supported specification space.

The vectorized planner (PR 8) evaluates the Eq. (1)/(2) capacity and
traffic closed forms as NumPy ``int64`` arrays, where an overflow raises
no error — it silently wraps and corrupts plans.  The static value-range
prover (``R070``–``R074`` in :mod:`repro.analysis.range_rules`) proves
every ``int64`` intermediate stays below ``2**63`` *for the spec space
declared here*, and :class:`~repro.arch.spec.AcceleratorSpec` /
:class:`~repro.dram.spec.DramSpec` validation rejects inputs outside it —
one set of constants feeds both, so the prover and the validators can
never disagree about what "supported" means.

The bounds are deliberately generous relative to the paper's §4
configurations (16×16 PEs, ≤1 MiB GLB, ≤32-bit data, layer shapes from
LeNet/AlexNet/VGG16) — roomy enough that no realistic CNN or sweep ever
trips validation, tight enough that the worst-case products remain
provably inside ``int64``.

Two kinds of constants live here:

* **per-field caps** (feature dims, kernel dims, channels, widths,
  capacities) validated field by field; and
* **aggregate caps** (``MAX_LAYER_MACS``, ``MAX_TENSOR_ELEMS``)
  validated as *independent* constraints on each layer, because the
  corner "maximal spatial extent × maximal channels × maximal kernel
  simultaneously" is unphysical (FC layers flatten to huge channel
  counts precisely when their spatial extent is 1×1) and taking the
  product of per-field maxima would be uselessly loose.

The proof sketch the R070 prover re-derives from these constants:
per-layer traffic is bounded by ``2·MACs + tensor footprints``
elements, so traffic × ``MAX_BYTES_PER_ELEM`` (= 4) stays below
``2**55 < 2**63``, and per-model sums scale by ``MAX_MODEL_LAYERS =
2**8``, keeping even an unbatched MACs-per-layer sum at ``2**60``.
Raising any bound here shifts the proof obligations with it: an
increase that breaks the ``int64`` proof fails CI instead of
corrupting plans at runtime.
"""

from __future__ import annotations

from .units import mib

#: Largest supported ifmap/ofmap spatial dimension (height or width).
MAX_FEATURE_DIM = 2048

#: Largest supported filter kernel dimension (height or width).
MAX_KERNEL_DIM = 16

#: Largest supported channel count (``in_c``, ``out_c``, ``num_filters``).
#: FC layers flatten their input into ``in_c`` (VGG16's first FC layer
#: consumes 25088 channels), so this is a per-field cap only — the
#: aggregate footprint/MAC caps below are what the prover leans on.
MAX_CHANNELS = 32768

#: Largest supported spatial padding.
MAX_PADDING = 8

#: Largest supported stride (bounded by the kernel for dense coverage).
MAX_STRIDE = MAX_KERNEL_DIM

#: Most layers one model may declare (sums over per-layer arrays scale
#: linearly with this).
MAX_MODEL_LAYERS = 256

#: Widest supported element, in bits (the paper sweeps 8/16/32).
MAX_DATA_WIDTH_BITS = 32

#: Largest supported global-buffer capacity, in bytes.  There is no
#: lower bound beyond positivity: degenerate few-byte GLBs are valid
#: inputs (the infeasibility paths are tested with them), and the R070
#: prover correspondingly assumes only ``glb_elems >= 1``.
MAX_GLB_BYTES = mib(64)

#: Largest supported off-chip bandwidth, in elements per accelerator
#: cycle.  The paper fixes 16; the headroom admits the bandwidth-sweep
#: experiments' "effectively infinite" endpoint (10⁴ elems/cycle).
MAX_DRAM_BANDWIDTH_ELEMS_PER_CYCLE = 16384.0

#: Largest supported peak operation rate, in scalar ops per cycle.
MAX_OPS_PER_CYCLE = 1 << 20

#: Largest supported PE-array dimension (rows or columns).
MAX_PE_DIM = 1024

#: Largest supported banked-DRAM capacity, in bytes (64 GiB).
MAX_DRAM_CAPACITY_BYTES = mib(64 * 1024)

# -- derived worst cases (used by the R070 prover's seed intervals) ------

#: Bytes of the narrowest/widest supported element.
MIN_BYTES_PER_ELEM = 1
MAX_BYTES_PER_ELEM = MAX_DATA_WIDTH_BITS // 8  # repro: noqa[R004] -- the canonical bits->bytes boundary

#: GLB capacity in elements of the narrowest (1-byte) element.
MAX_GLB_ELEMS = MAX_GLB_BYTES // MIN_BYTES_PER_ELEM

#: Largest supported padded spatial dimension.
MAX_PADDED_DIM = MAX_FEATURE_DIM + 2 * MAX_PADDING

#: Largest per-tensor footprint (padded ifmap, filters or ofmap), in
#: elements — an *independent* per-layer cap validated by
#: :class:`~repro.nn.layer.LayerSpec`, four orders of magnitude above
#: any bundled model's largest tensor (~2**25 elements).
MAX_TENSOR_ELEMS = 1 << 36

#: Largest per-layer MAC count — an *independent* per-layer cap
#: validated by :class:`~repro.nn.layer.LayerSpec`; VGG16's heaviest
#: convolution needs ~2**34 MACs.
MAX_LAYER_MACS = 1 << 52

#: Largest per-layer off-chip traffic, in elements.  Every schedule the
#: policies emit loads at most two operands per MAC and writes each
#: output at most once per pass, so ``2·MACs`` plus the tensor
#: footprints dominates every named policy and the tile-search fallback.
MAX_LAYER_TRAFFIC_ELEMS = 2 * MAX_LAYER_MACS + 4 * MAX_TENSOR_ELEMS

#: Largest per-plan GLB footprint, in elements: feasible plans fit the
#: budget, and Eq. (2) prefetch double-buffering at most doubles it.
MAX_PLAN_MEMORY_ELEMS = 2 * MAX_GLB_ELEMS  # repro: noqa[R002] -- worst-case bound over both prefetch policies, not a policy-conditional factor

#: Most candidate plans one layer's evaluation grid may hold (named
#: policies × prefetch variants plus the tile-search fallback ladder).
MAX_GRID_CANDIDATES = 4096
