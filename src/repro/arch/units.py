"""Unit helpers shared across the library.

The paper mixes units freely (elements, bytes, kB, MB, cycles).  Everything
inside the library is stored in *base units* — bytes for memory and traffic,
cycles for time — and converted only at reporting boundaries.  These helpers
make the conversions explicit so call sites never multiply magic constants.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * 1024


def kib(n: float) -> int:
    """Convert kibibytes to bytes (the paper's "kB" is 1024 bytes)."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Convert mebibytes to bytes."""
    return int(n * MIB)


def to_kib(nbytes: float) -> float:
    """Convert bytes to kibibytes."""
    return nbytes / KIB


def to_mib(nbytes: float) -> float:
    """Convert bytes to mebibytes."""
    return nbytes / MIB


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div dividend must be non-negative, got {a}")
    return -(-a // b)


def pct_change(new: float, old: float) -> float:
    """Relative change of ``new`` vs ``old`` in percent (negative = reduction).

    Used for the paper's "benefit" plots (Figs. 7, 9, 10, 11) where benefit is
    quoted as a percentage reduction relative to a reference configuration.
    """
    if old == 0:
        return 0.0 if new == 0 else float("inf")
    return (new - old) / old * 100.0


def reduction_pct(new: float, old: float) -> float:
    """Percentage reduction of ``new`` relative to ``old`` (positive = better)."""
    return -pct_change(new, old)
