"""Accelerator architecture description and unit helpers."""

from .bounds import (
    MAX_BYTES_PER_ELEM,
    MAX_CHANNELS,
    MAX_DATA_WIDTH_BITS,
    MAX_DRAM_CAPACITY_BYTES,
    MAX_FEATURE_DIM,
    MAX_GLB_BYTES,
    MAX_KERNEL_DIM,
    MAX_LAYER_MACS,
    MAX_LAYER_TRAFFIC_ELEMS,
    MAX_MODEL_LAYERS,
)
from .spec import (
    DEFAULT_SPEC,
    PAPER_DATA_WIDTHS,
    PAPER_GLB_SIZES,
    AcceleratorSpec,
)
from .units import KIB, MIB, ceil_div, kib, mib, pct_change, reduction_pct, to_kib, to_mib

__all__ = [
    "AcceleratorSpec",
    "DEFAULT_SPEC",
    "PAPER_GLB_SIZES",
    "PAPER_DATA_WIDTHS",
    "MAX_BYTES_PER_ELEM",
    "MAX_CHANNELS",
    "MAX_DATA_WIDTH_BITS",
    "MAX_DRAM_CAPACITY_BYTES",
    "MAX_FEATURE_DIM",
    "MAX_GLB_BYTES",
    "MAX_KERNEL_DIM",
    "MAX_LAYER_MACS",
    "MAX_LAYER_TRAFFIC_ELEMS",
    "MAX_MODEL_LAYERS",
    "KIB",
    "MIB",
    "kib",
    "mib",
    "to_kib",
    "to_mib",
    "ceil_div",
    "pct_change",
    "reduction_pct",
]
