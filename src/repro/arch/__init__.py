"""Accelerator architecture description and unit helpers."""

from .spec import (
    DEFAULT_SPEC,
    PAPER_DATA_WIDTHS,
    PAPER_GLB_SIZES,
    AcceleratorSpec,
)
from .units import KIB, MIB, ceil_div, kib, mib, pct_change, reduction_pct, to_kib, to_mib

__all__ = [
    "AcceleratorSpec",
    "DEFAULT_SPEC",
    "PAPER_GLB_SIZES",
    "PAPER_DATA_WIDTHS",
    "KIB",
    "MIB",
    "kib",
    "mib",
    "to_kib",
    "to_mib",
    "ceil_div",
    "pct_change",
    "reduction_pct",
]
