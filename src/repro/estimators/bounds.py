"""Off-chip communication lower bounds (extension).

The paper's related work cites Chen et al., "Communication lower bound in
convolution accelerators" (HPCA 2020), which bounds the DRAM traffic any
schedule needs given an on-chip buffer of ``S`` elements.  This module
implements two bounds and an experiment-facing helper that measures how
close the heterogeneous plans get:

* the **compulsory bound** — every ifmap/filter element must enter and
  every ofmap element must leave at least once;
* a **red-blue pebbling bound** for the convolution MAC grid — a schedule
  segment that performs ``W`` MACs with at most ``2S`` operands resident
  can touch at most ``O(S^2)`` distinct MACs (each MAC needs an
  (ifmap, filter) pair; with ``a`` ifmap and ``b`` filter operands at
  most ``a·b ≤ S²`` pairs exist), so segments of ``S`` transfers each
  perform at most ``c·S²`` useful MACs and

      traffic ≥ MACs / (c·S)   with c a small constant (we use c = 1,
      which is safe: a·b ≤ (2S/2)² = S² pairs per segment of S loads
      plus S resident).

The pebbling bound matters only when the buffer is small relative to the
reuse (`MACs/S` exceeding compulsory); for the paper's configurations the
compulsory term usually dominates — which is itself the interesting
finding: the heterogeneous scheme sits essentially *on* the lower bound
(see the ``bounds`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from numpy.typing import NDArray

from ..arch.spec import AcceleratorSpec
from ..nn.layer import LayerSpec
from ..nn.model import Model
from ..plancore import scalar_planner_enabled
from ..policies.base import Policy

if TYPE_CHECKING:  # imported lazily to avoid an analyzer<->estimators cycle
    from ..analyzer.plan import ExecutionPlan


@dataclass(frozen=True)
class TrafficBound:
    """Lower bound on one layer's off-chip traffic, in elements."""

    compulsory: int
    pebbling: int

    @property
    def combined(self) -> int:
        return max(self.compulsory, self.pebbling)


def layer_bound(layer: LayerSpec, glb_elems: int) -> TrafficBound:
    """Lower-bound one layer's off-chip traffic for a GLB of ``glb_elems``."""
    if glb_elems <= 0:
        raise ValueError("glb_elems must be positive")
    compulsory = (
        Policy.ifmap_pass_elems(layer) + layer.filter_elems + layer.ofmap_elems
    )
    pebbling = -(-layer.macs // glb_elems)  # ceil(MACs / S)
    return TrafficBound(compulsory=compulsory, pebbling=pebbling)


def _bound_arrays(
    model: Model, glb_elems: int
) -> tuple[NDArray[np.int64], NDArray[np.int64]]:
    """Per-layer ``(compulsory, pebbling)`` bound terms as int64 arrays.

    All quantities fit comfortably in int64 (traffic elements per layer are
    bounded by tensor sizes, far below 2**63), so the vectorized arithmetic
    is exact and identical to the Python-int scalar path.
    """
    if glb_elems <= 0:
        raise ValueError("glb_elems must be positive")
    compulsory = np.array(
        [
            Policy.ifmap_pass_elems(layer) + layer.filter_elems + layer.ofmap_elems
            for layer in model.layers
        ],
        dtype=np.int64,
    )
    macs = np.array([layer.macs for layer in model.layers], dtype=np.int64)
    pebbling = -(-macs // glb_elems)  # ceil(MACs / S)
    return compulsory, pebbling


def model_bound(model: Model, spec: AcceleratorSpec) -> int:
    """Lower bound on a model's layer-by-layer off-chip traffic, in bytes.

    Layer-by-layer execution (the paper's mode) cannot beat the sum of
    per-layer bounds; inter-layer reuse can beat the *compulsory* part by
    eliding intermediate tensors, so this bound applies to plans without
    inter-layer reuse (and with it, to a weaker variant that removes the
    donated ofmap/ifmap terms — see :func:`model_bound_interlayer`).

    Evaluated over all layers at once as int64 arrays (exact, so it is
    identical to the scalar path retained under ``REPRO_SCALAR_PLANNER``).
    """
    if scalar_planner_enabled():
        total = sum(
            layer_bound(layer, spec.glb_elems).combined for layer in model.layers
        )
        return total * spec.bytes_per_elem
    compulsory, pebbling = _bound_arrays(model, spec.glb_elems)
    return int(np.maximum(compulsory, pebbling).sum()) * spec.bytes_per_elem


def model_bound_interlayer(model: Model, spec: AcceleratorSpec) -> int:
    """Lower bound when intermediate tensors may stay on-chip, in bytes.

    Optimistically assumes every producer→consumer pair elides both the
    ofmap write and the (padded) ifmap read; non-chain tensors still move.
    """
    if scalar_planner_enabled():
        total = 0
        for i, layer in enumerate(model.layers):
            bound = layer_bound(layer, spec.glb_elems)
            compulsory = bound.compulsory
            if i > 0 and model.feeds_next(i - 1):
                compulsory -= Policy.ifmap_pass_elems(layer)
            if i < len(model.layers) - 1 and model.feeds_next(i):
                compulsory -= layer.ofmap_elems
            total += max(compulsory, bound.pebbling)
        return total * spec.bytes_per_elem
    if not model.layers:
        return 0
    compulsory, pebbling = _bound_arrays(model, spec.glb_elems)
    layers = model.layers
    chained = np.array(
        [model.feeds_next(i) for i in range(len(layers) - 1)] + [False],
        dtype=np.bool_,
    )
    ifmap_pass = np.array(
        [Policy.ifmap_pass_elems(layer) for layer in layers], dtype=np.int64
    )
    ofmap = np.array([layer.ofmap_elems for layer in layers], dtype=np.int64)
    # Consumers of a chained producer elide their ifmap read; the producers
    # elide their ofmap write.
    compulsory = compulsory.copy()
    compulsory[1:] -= np.where(chained[:-1], ifmap_pass[1:], 0)
    compulsory -= np.where(chained, ofmap, 0)
    return int(np.maximum(compulsory, pebbling).sum()) * spec.bytes_per_elem


@dataclass(frozen=True)
class OptimalityGap:
    """How far a plan's traffic sits above the lower bound."""

    plan_bytes: int
    bound_bytes: int

    @property
    def ratio(self) -> float:
        return self.plan_bytes / self.bound_bytes if self.bound_bytes else float("inf")

    @property
    def gap_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0)


def optimality_gap(plan: "ExecutionPlan", *, interlayer: bool = False) -> OptimalityGap:
    """Measure a plan against the applicable lower bound."""
    bound = (
        model_bound_interlayer(plan.model, plan.spec)
        if interlayer
        else model_bound(plan.model, plan.spec)
    )
    return OptimalityGap(plan_bytes=plan.total_accesses_bytes, bound_bytes=bound)
