"""Off-chip communication lower bounds (extension).

The paper's related work cites Chen et al., "Communication lower bound in
convolution accelerators" (HPCA 2020), which bounds the DRAM traffic any
schedule needs given an on-chip buffer of ``S`` elements.  This module
implements two bounds and an experiment-facing helper that measures how
close the heterogeneous plans get:

* the **compulsory bound** — every ifmap/filter element must enter and
  every ofmap element must leave at least once;
* a **red-blue pebbling bound** for the convolution MAC grid — a schedule
  segment that performs ``W`` MACs with at most ``2S`` operands resident
  can touch at most ``O(S^2)`` distinct MACs (each MAC needs an
  (ifmap, filter) pair; with ``a`` ifmap and ``b`` filter operands at
  most ``a·b ≤ S²`` pairs exist), so segments of ``S`` transfers each
  perform at most ``c·S²`` useful MACs and

      traffic ≥ MACs / (c·S)   with c a small constant (we use c = 1,
      which is safe: a·b ≤ (2S/2)² = S² pairs per segment of S loads
      plus S resident).

The pebbling bound matters only when the buffer is small relative to the
reuse (`MACs/S` exceeding compulsory); for the paper's configurations the
compulsory term usually dominates — which is itself the interesting
finding: the heterogeneous scheme sits essentially *on* the lower bound
(see the ``bounds`` experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..arch.spec import AcceleratorSpec
from ..nn.layer import LayerSpec
from ..nn.model import Model
from ..policies.base import Policy

if TYPE_CHECKING:  # imported lazily to avoid an analyzer<->estimators cycle
    from ..analyzer.plan import ExecutionPlan


@dataclass(frozen=True)
class TrafficBound:
    """Lower bound on one layer's off-chip traffic, in elements."""

    compulsory: int
    pebbling: int

    @property
    def combined(self) -> int:
        return max(self.compulsory, self.pebbling)


def layer_bound(layer: LayerSpec, glb_elems: int) -> TrafficBound:
    """Lower-bound one layer's off-chip traffic for a GLB of ``glb_elems``."""
    if glb_elems <= 0:
        raise ValueError("glb_elems must be positive")
    compulsory = (
        Policy.ifmap_pass_elems(layer) + layer.filter_elems + layer.ofmap_elems
    )
    pebbling = -(-layer.macs // glb_elems)  # ceil(MACs / S)
    return TrafficBound(compulsory=compulsory, pebbling=pebbling)


def model_bound(model: Model, spec: AcceleratorSpec) -> int:
    """Lower bound on a model's layer-by-layer off-chip traffic, in bytes.

    Layer-by-layer execution (the paper's mode) cannot beat the sum of
    per-layer bounds; inter-layer reuse can beat the *compulsory* part by
    eliding intermediate tensors, so this bound applies to plans without
    inter-layer reuse (and with it, to a weaker variant that removes the
    donated ofmap/ifmap terms — see :func:`model_bound_interlayer`).
    """
    total = sum(layer_bound(layer, spec.glb_elems).combined for layer in model.layers)
    return total * spec.bytes_per_elem


def model_bound_interlayer(model: Model, spec: AcceleratorSpec) -> int:
    """Lower bound when intermediate tensors may stay on-chip, in bytes.

    Optimistically assumes every producer→consumer pair elides both the
    ofmap write and the (padded) ifmap read; non-chain tensors still move.
    """
    total = 0
    for i, layer in enumerate(model.layers):
        bound = layer_bound(layer, spec.glb_elems)
        compulsory = bound.compulsory
        if i > 0 and model.feeds_next(i - 1):
            compulsory -= Policy.ifmap_pass_elems(layer)
        if i < len(model.layers) - 1 and model.feeds_next(i):
            compulsory -= layer.ofmap_elems
        total += max(compulsory, bound.pebbling)
    return total * spec.bytes_per_elem


@dataclass(frozen=True)
class OptimalityGap:
    """How far a plan's traffic sits above the lower bound."""

    plan_bytes: int
    bound_bytes: int

    @property
    def ratio(self) -> float:
        return self.plan_bytes / self.bound_bytes if self.bound_bytes else float("inf")

    @property
    def gap_pct(self) -> float:
        return 100.0 * (self.ratio - 1.0)


def optimality_gap(plan: "ExecutionPlan", *, interlayer: bool = False) -> OptimalityGap:
    """Measure a plan against the applicable lower bound."""
    bound = (
        model_bound_interlayer(plan.model, plan.spec)
        if interlayer
        else model_bound(plan.model, plan.spec)
    )
    return OptimalityGap(plan_bytes=plan.total_accesses_bytes, bound_bytes=bound)
