"""Lightweight per-layer estimation models (paper §3.3, Algorithm 1 l.7–9)."""

from .evaluate import (
    PolicyEvaluation,
    estimate_accesses,
    estimate_latency,
    estimate_memory,
    evaluate_layer,
)
from .bounds import (
    OptimalityGap,
    TrafficBound,
    layer_bound,
    model_bound,
    model_bound_interlayer,
    optimality_gap,
)
from .latency import LatencyBreakdown, schedule_latency

__all__ = [
    "PolicyEvaluation",
    "evaluate_layer",
    "estimate_memory",
    "estimate_accesses",
    "estimate_latency",
    "LatencyBreakdown",
    "schedule_latency",
    "TrafficBound",
    "OptimalityGap",
    "layer_bound",
    "model_bound",
    "model_bound_interlayer",
    "optimality_gap",
]
