"""Lightweight per-layer estimation models (paper §3.3, Algorithm 1 l.7–9)."""

from .evaluate import (
    PolicyEvaluation,
    estimate_accesses,
    estimate_accesses_batch,
    estimate_latency,
    estimate_latency_batch,
    estimate_memory,
    estimate_memory_batch,
    evaluate_layer,
    evaluate_plans,
)
from .bounds import (
    OptimalityGap,
    TrafficBound,
    layer_bound,
    model_bound,
    model_bound_interlayer,
    optimality_gap,
)
from .latency import LatencyBreakdown, schedule_latency, schedule_latency_batch

__all__ = [
    "PolicyEvaluation",
    "evaluate_layer",
    "evaluate_plans",
    "estimate_memory",
    "estimate_accesses",
    "estimate_latency",
    "estimate_memory_batch",
    "estimate_accesses_batch",
    "estimate_latency_batch",
    "LatencyBreakdown",
    "schedule_latency",
    "schedule_latency_batch",
    "TrafficBound",
    "OptimalityGap",
    "layer_bound",
    "model_bound",
    "model_bound_interlayer",
    "optimality_gap",
]
