"""Per-layer, per-policy evaluation: Algorithm 1 lines 7–9.

``evaluate_layer`` instantiates every policy (with and without prefetching)
on one layer and returns the feasible candidates with their estimated
memory, off-chip accesses and latency — exactly the quantities Algorithm 1
compares.  The tile-search fallback is consulted only when no named policy
fits, mirroring paper §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import AcceleratorSpec
from ..nn.layer import LayerSpec
from ..policies.base import CandidatePlan, Policy
from ..policies.registry import FALLBACK_POLICY, NAMED_POLICIES
from .latency import LatencyBreakdown, schedule_latency


@dataclass(frozen=True)
class PolicyAttempt:
    """One (policy, prefetch) instantiation *try*, feasible or not.

    ``evaluate_layer`` optionally records every attempt — including those
    where no tiling fit the GLB budget — so the planner's decision audit
    trail (:mod:`repro.obs.audit`) can explain infeasible candidates, not
    just the feasible ones it compared.
    """

    policy_name: str
    prefetch: bool
    feasible: bool
    fallback: bool = False

    @property
    def label(self) -> str:
        return self.policy_name + ("+p" if self.prefetch else "")


@dataclass(frozen=True)
class PolicyEvaluation:
    """One feasible (layer, policy, prefetch) instantiation with estimates."""

    plan: CandidatePlan
    memory_bytes: int
    accesses_bytes: int
    read_bytes: int
    write_bytes: int
    latency: LatencyBreakdown

    @property
    def label(self) -> str:
        return self.plan.label

    @property
    def policy_name(self) -> str:
        return self.plan.policy_name

    @property
    def prefetch(self) -> bool:
        return self.plan.prefetch

    @property
    def latency_cycles(self) -> float:
        return self.latency.total_cycles


def estimate_memory(plan: CandidatePlan, spec: AcceleratorSpec) -> int:
    """GLB bytes the plan needs (Eq. (1), doubled per Eq. (2) for +p)."""
    return plan.memory_elems * spec.bytes_per_elem


def estimate_accesses(plan: CandidatePlan, spec: AcceleratorSpec) -> int:
    """Total off-chip traffic of the plan in bytes."""
    return plan.traffic.total * spec.bytes_per_elem


def estimate_latency(plan: CandidatePlan, spec: AcceleratorSpec) -> LatencyBreakdown:
    """Latency of the plan under the two-resource overlap model.

    DRAM-aware when ``spec.dram`` is set (the plan knows its layer, so the
    effective-bandwidth substitution applies automatically).
    """
    return schedule_latency(plan.schedule, spec, plan.prefetch, layer=plan.layer)


def _evaluate_plan(plan: CandidatePlan, spec: AcceleratorSpec) -> PolicyEvaluation:
    b = spec.bytes_per_elem
    return PolicyEvaluation(
        plan=plan,
        memory_bytes=estimate_memory(plan, spec),
        accesses_bytes=estimate_accesses(plan, spec),
        read_bytes=plan.traffic.reads * b,
        write_bytes=plan.traffic.writes * b,
        latency=estimate_latency(plan, spec),
    )


def evaluate_layer(
    layer: LayerSpec,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...] = NAMED_POLICIES,
    use_fallback: bool = True,
    allow_prefetch: bool = True,
    always_fallback: bool = False,
    attempts: list[PolicyAttempt] | None = None,
) -> list[PolicyEvaluation]:
    """All feasible policy instantiations of one layer within the GLB.

    With ``always_fallback`` the tile search competes against the named
    policies instead of only rescuing infeasible layers; the heterogeneous
    planner uses this so that ``Het`` dominates every ``Hom`` scheme (whose
    infeasible layers fall back to the same search).

    When ``attempts`` is given, every instantiation try is appended to it
    as a :class:`PolicyAttempt` (feasible or not) for the decision audit
    trail; passing it changes no result.

    Returns an empty list only when even the tile-search fallback cannot
    fit, which for sane GLB sizes does not happen (the fallback's smallest
    footprint is a couple of rows).
    """
    budget = spec.glb_elems
    prefetch_options = (False, True) if allow_prefetch else (False,)
    evaluations: list[PolicyEvaluation] = []
    for policy in policies:
        for prefetch in prefetch_options:
            plan = policy.plan(layer, budget, prefetch)
            if attempts is not None:
                attempts.append(PolicyAttempt(policy.name, prefetch, plan is not None))
            if plan is not None:
                evaluations.append(_evaluate_plan(plan, spec))
    if use_fallback and (always_fallback or not evaluations):
        for prefetch in prefetch_options:
            plan = FALLBACK_POLICY.plan(layer, budget, prefetch)
            if attempts is not None:
                attempts.append(
                    PolicyAttempt(
                        FALLBACK_POLICY.name, prefetch, plan is not None, fallback=True
                    )
                )
            if plan is not None:
                evaluations.append(_evaluate_plan(plan, spec))
    return evaluations
