"""Per-layer, per-policy evaluation: Algorithm 1 lines 7–9.

``evaluate_layer`` instantiates every policy (with and without prefetching)
on one layer and returns the feasible candidates with their estimated
memory, off-chip accesses and latency — exactly the quantities Algorithm 1
compares.  The tile-search fallback is consulted only when no named policy
fits, mirroring paper §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from ..arch.spec import AcceleratorSpec
from ..nn.layer import LayerSpec
from ..plancore import scalar_planner_enabled
from ..policies.base import CandidatePlan, Policy
from ..policies.registry import FALLBACK_POLICY, NAMED_POLICIES
from .latency import (
    LatencyBreakdown,
    clear_latency_memo,
    schedule_latency,
    schedule_latency_batch,
)


@dataclass(frozen=True)
class PolicyAttempt:
    """One (policy, prefetch) instantiation *try*, feasible or not.

    ``evaluate_layer`` optionally records every attempt — including those
    where no tiling fit the GLB budget — so the planner's decision audit
    trail (:mod:`repro.obs.audit`) can explain infeasible candidates, not
    just the feasible ones it compared.
    """

    policy_name: str
    prefetch: bool
    feasible: bool
    fallback: bool = False

    @property
    def label(self) -> str:
        return self.policy_name + ("+p" if self.prefetch else "")


@dataclass(frozen=True)
class PolicyEvaluation:
    """One feasible (layer, policy, prefetch) instantiation with estimates."""

    plan: CandidatePlan
    memory_bytes: int
    accesses_bytes: int
    read_bytes: int
    write_bytes: int
    latency: LatencyBreakdown

    @property
    def label(self) -> str:
        return self.plan.label

    @property
    def policy_name(self) -> str:
        return self.plan.policy_name

    @property
    def prefetch(self) -> bool:
        return self.plan.prefetch

    @property
    def latency_cycles(self) -> float:
        return self.latency.total_cycles


def estimate_memory(plan: CandidatePlan, spec: AcceleratorSpec) -> int:
    """GLB bytes the plan needs (Eq. (1), doubled per Eq. (2) for +p)."""
    return plan.memory_elems * spec.bytes_per_elem


def estimate_accesses(plan: CandidatePlan, spec: AcceleratorSpec) -> int:
    """Total off-chip traffic of the plan in bytes."""
    return plan.traffic.total * spec.bytes_per_elem


def estimate_latency(plan: CandidatePlan, spec: AcceleratorSpec) -> LatencyBreakdown:
    """Latency of the plan under the two-resource overlap model.

    DRAM-aware when ``spec.dram`` is set (the plan knows its layer, so the
    effective-bandwidth substitution applies automatically).
    """
    return schedule_latency(plan.schedule, spec, plan.prefetch, layer=plan.layer)


def estimate_memory_batch(
    plans: Sequence[CandidatePlan], spec: AcceleratorSpec
) -> NDArray[np.int64]:
    """GLB bytes of every plan of a candidate grid, as one int64 array."""
    return (
        np.array([p.memory_elems for p in plans], dtype=np.int64)
        * spec.bytes_per_elem
    )


def estimate_accesses_batch(
    plans: Sequence[CandidatePlan], spec: AcceleratorSpec
) -> NDArray[np.int64]:
    """Off-chip traffic bytes of every plan of a grid, as one int64 array."""
    return (
        np.array([p.traffic.total for p in plans], dtype=np.int64)
        * spec.bytes_per_elem
    )


def estimate_latency_batch(
    plans: Sequence[CandidatePlan], spec: AcceleratorSpec
) -> list[LatencyBreakdown]:
    """Latency of every plan of a grid in one vectorized recurrence pass.

    Flat DRAM model only (see :func:`schedule_latency_batch`); bit-identical
    to :func:`estimate_latency` per plan.
    """
    return schedule_latency_batch(
        [p.schedule for p in plans], spec, [p.prefetch for p in plans]
    )


def _evaluate_plan(plan: CandidatePlan, spec: AcceleratorSpec) -> PolicyEvaluation:
    b = spec.bytes_per_elem
    return PolicyEvaluation(
        plan=plan,
        memory_bytes=estimate_memory(plan, spec),
        accesses_bytes=estimate_accesses(plan, spec),
        read_bytes=plan.traffic.reads * b,
        write_bytes=plan.traffic.writes * b,
        latency=estimate_latency(plan, spec),
    )


def evaluate_plans(
    plans: Sequence[CandidatePlan], spec: AcceleratorSpec
) -> list[PolicyEvaluation]:
    """Evaluate a layer's whole candidate grid in one shot.

    The default path computes memory/accesses/read/write bytes as int64
    arrays and all latencies through one batched recurrence, then coerces
    back to native Python ``int``/``float`` so no NumPy scalar ever leaks
    into a :class:`PolicyEvaluation` (and from there into cached plans,
    cache keys or JSON exports) — a type-pinning test enforces this.

    Falls back to per-plan scalar evaluation under ``REPRO_SCALAR_PLANNER``
    and whenever ``spec.dram`` is banked (trace-simulated bandwidth is
    inherently per-candidate); results are bit-identical either way.
    """
    if not plans:
        return []
    if scalar_planner_enabled() or spec.dram is not None:
        return [_evaluate_plan(plan, spec) for plan in plans]
    b = spec.bytes_per_elem
    memory = estimate_memory_batch(plans, spec)
    accesses = estimate_accesses_batch(plans, spec)
    reads = np.array([p.traffic.reads for p in plans], dtype=np.int64) * b
    writes = np.array([p.traffic.writes for p in plans], dtype=np.int64) * b
    latencies = estimate_latency_batch(plans, spec)
    return [
        PolicyEvaluation(
            plan=plan,
            memory_bytes=int(memory[i]),
            accesses_bytes=int(accesses[i]),
            read_bytes=int(reads[i]),
            write_bytes=int(writes[i]),
            latency=latencies[i],
        )
        for i, plan in enumerate(plans)
    ]


def evaluate_layer(
    layer: LayerSpec,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...] = NAMED_POLICIES,
    use_fallback: bool = True,
    allow_prefetch: bool = True,
    always_fallback: bool = False,
    attempts: list[PolicyAttempt] | None = None,
) -> list[PolicyEvaluation]:
    """All feasible policy instantiations of one layer within the GLB.

    With ``always_fallback`` the tile search competes against the named
    policies instead of only rescuing infeasible layers; the heterogeneous
    planner uses this so that ``Het`` dominates every ``Hom`` scheme (whose
    infeasible layers fall back to the same search).

    When ``attempts`` is given, every instantiation try is appended to it
    as a :class:`PolicyAttempt` (feasible or not) for the decision audit
    trail; passing it changes no result.

    The result is a pure function of the arguments (everything involved is
    a frozen dataclass), so the vectorized path memoizes it — CNNs repeat
    layer shapes heavily, both within a model and across a zoo.  The
    scalar parity oracle bypasses the memo entirely.

    Returns an empty list only when even the tile-search fallback cannot
    fit, which for sane GLB sizes does not happen (the fallback's smallest
    footprint is a couple of rows).
    """
    if scalar_planner_enabled():
        return _evaluate_layer_uncached(
            layer,
            spec,
            policies,
            use_fallback,
            allow_prefetch,
            always_fallback,
            attempts,
        )
    evaluations, tries = _evaluate_layer_memo(
        layer, spec, policies, use_fallback, allow_prefetch, always_fallback
    )
    if attempts is not None:
        attempts.extend(tries)
    return list(evaluations)


@lru_cache(maxsize=4096)
def _evaluate_layer_memo(
    layer: LayerSpec,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...],
    use_fallback: bool,
    allow_prefetch: bool,
    always_fallback: bool,
) -> tuple[tuple[PolicyEvaluation, ...], tuple[PolicyAttempt, ...]]:
    """Memoized evaluation grid of one layer (immutable results, safe to share)."""
    attempts: list[PolicyAttempt] = []
    evaluations = _evaluate_layer_uncached(
        layer, spec, policies, use_fallback, allow_prefetch, always_fallback, attempts
    )
    return tuple(evaluations), tuple(attempts)


def clear_evaluation_memo() -> None:
    """Drop the in-process per-layer evaluation memo (cold-start benches)."""
    _evaluate_layer_memo.cache_clear()
    clear_latency_memo()


def _evaluate_layer_uncached(
    layer: LayerSpec,
    spec: AcceleratorSpec,
    policies: tuple[Policy, ...],
    use_fallback: bool,
    allow_prefetch: bool,
    always_fallback: bool,
    attempts: list[PolicyAttempt] | None,
) -> list[PolicyEvaluation]:
    budget = spec.glb_elems
    prefetch_options = (False, True) if allow_prefetch else (False,)
    plans: list[CandidatePlan] = []
    for policy in policies:
        for prefetch in prefetch_options:
            plan = policy.plan(layer, budget, prefetch)
            if attempts is not None:
                attempts.append(PolicyAttempt(policy.name, prefetch, plan is not None))
            if plan is not None:
                plans.append(plan)
    if use_fallback and (always_fallback or not plans):
        for prefetch in prefetch_options:
            plan = FALLBACK_POLICY.plan(layer, budget, prefetch)
            if attempts is not None:
                attempts.append(
                    PolicyAttempt(
                        FALLBACK_POLICY.name, prefetch, plan is not None, fallback=True
                    )
                )
            if plan is not None:
                plans.append(plan)
    return evaluate_plans(plans, spec)
