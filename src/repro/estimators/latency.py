"""Latency estimation from a policy's streaming schedule.

The paper estimates latency "based on the number of operations, bandwidth
and tile sizes" (§3.3).  We make that concrete with a two-resource model:

* the **DMA port** moves data at the accelerator's off-chip bandwidth;
* the **PE array** computes at the peak MAC rate derived from
  ``ops_per_cycle`` (one MAC = two ops).

Without prefetching every step serializes its load, compute and store.
With prefetching (the Eq. (2) double-buffered variants) the port is
work-conserving with a write-back buffer: loads chain with priority, each
compute starts when its data is ready and the PE is free, stores chain
behind their computes, and the layer cannot finish before the port's
total work ``(Σloads + Σstores)/bandwidth``.

All three chains are max-plus recurrences; because schedules are stored
as *uniform step groups* the recurrences become periodic within a few
steps of each group, so ``schedule_latency`` evaluates the exact
event-model timeline in O(groups).  The step-level simulator in
:mod:`repro.sim` replays it step by step, and the test suite asserts they
agree to floating-point tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..arch.spec import AcceleratorSpec
from ..dram.trace import dram_effective_bandwidth
from ..nn.layer import LayerSpec
from ..policies.base import LayerSchedule, StepGroup

#: Recurrence state: (load-chain end, PE free time, store-chain end).
_State = tuple[float, float, float]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycle accounting of one layer under one policy."""

    total_cycles: float
    compute_cycles: float
    dma_cycles: float

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.compute_cycles < 0 or self.dma_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


def _advance_group(
    state: _State, group: StepGroup, bw: float, rate: float, prefetch: bool
) -> _State:
    """Advance the state across ``group.count`` identical steps, exactly.

    Within a uniform group the three chains obey feed-forward max-plus
    recurrences whose solutions are maxima of linear ramps, so the state
    after ``n`` steps has a closed form:

    * ``L_n = L_0 + n·l`` — loads chain unconditionally;
    * ``P_n = max(P_0 + n·c,  L_0 + n·l + c,  L_0 + l + n·c)`` — the PE is
      delayed either never, by the last load, or by the first load;
    * ``S_n`` — the store chain is the same construction over each of the
      PE ramps, with the binding compute either the last one (``k = n``)
      or the first one (``k = 1``); interior maxima of a linear function
      in ``k`` are dominated by the endpoints.

    The serial (no-prefetch) recurrence fully synchronizes every step, so
    it telescopes to a single linear ramp.
    """
    load = group.load / bw
    compute = group.macs / rate
    store = group.store / bw
    n = group.count
    load_t, pe_t, store_t = state

    if not prefetch:
        start = max(load_t, pe_t, store_t)
        end = start + n * (load + compute + store)
        return (end - compute - store, end - store, end)

    l_n = load_t + n * load
    p_n = max(
        pe_t + n * compute,
        load_t + n * load + compute,
        load_t + load + n * compute,
    )
    if store == 0:
        # The engine leaves the store chain untouched for store-less steps.
        return (l_n, p_n, store_t)
    s_n = max(
        store_t + n * store,
        pe_t + compute + n * store,
        pe_t + n * compute + store,
        load_t + load + compute + n * store,
        load_t + n * load + compute + store,
        load_t + load + n * compute + store,
    )
    return (l_n, p_n, s_n)


def effective_dram_bandwidth(
    schedule: LayerSchedule, spec: AcceleratorSpec, layer: LayerSpec | None
) -> float:
    """Off-chip bandwidth the schedule actually sees, in elements/cycle.

    The flat constant ``spec.dram_bandwidth_elems_per_cycle`` unless the
    spec carries a banked :class:`~repro.dram.DramSpec` *and* the layer is
    known, in which case the schedule's address stream is trace-simulated
    and the delivered rate (which row-buffer conflicts can push well below
    the flat peak) is used instead.
    """
    flat = spec.dram_bandwidth_elems_per_cycle
    if spec.dram is None or layer is None:
        return flat
    return dram_effective_bandwidth(
        schedule, layer, spec.dram, spec.bytes_per_elem, flat
    )


def schedule_latency(
    schedule: LayerSchedule,
    spec: AcceleratorSpec,
    prefetch: bool,
    layer: LayerSpec | None = None,
) -> LatencyBreakdown:
    """Exact two-resource latency of one layer's streaming schedule.

    When ``spec.dram`` is set and ``layer`` is given, the DMA port runs at
    the trace-simulated effective bandwidth instead of the flat constant;
    otherwise behaviour is bit-identical to the flat model.
    """
    bw = effective_dram_bandwidth(schedule, spec, layer)
    rate = spec.macs_per_cycle
    compute = schedule.total_macs / rate
    dma = (schedule.total_load + schedule.total_store) / bw

    load_t = schedule.resident_load / bw
    pe_t = load_t
    state: _State = (load_t, pe_t, 0.0)
    for group in schedule.groups:
        state = _advance_group(state, group, bw, rate, prefetch)
    total = max(state)
    if prefetch:
        # Port-work conservation: deferred write-backs still use bandwidth.
        total = max(total, dma)
    return LatencyBreakdown(
        total_cycles=total, compute_cycles=compute, dma_cycles=dma
    )
