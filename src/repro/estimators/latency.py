"""Latency estimation from a policy's streaming schedule.

The paper estimates latency "based on the number of operations, bandwidth
and tile sizes" (§3.3).  We make that concrete with a two-resource model:

* the **DMA port** moves data at the accelerator's off-chip bandwidth;
* the **PE array** computes at the peak MAC rate derived from
  ``ops_per_cycle`` (one MAC = two ops).

Without prefetching every step serializes its load, compute and store.
With prefetching (the Eq. (2) double-buffered variants) the port is
work-conserving with a write-back buffer: loads chain with priority, each
compute starts when its data is ready and the PE is free, stores chain
behind their computes, and the layer cannot finish before the port's
total work ``(Σloads + Σstores)/bandwidth``.

All three chains are max-plus recurrences; because schedules are stored
as *uniform step groups* the recurrences become periodic within a few
steps of each group, so ``schedule_latency`` evaluates the exact
event-model timeline in O(groups).  The step-level simulator in
:mod:`repro.sim` replays it step by step, and the test suite asserts they
agree to floating-point tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from numpy.typing import NDArray

from ..arch.spec import AcceleratorSpec
from ..dram.trace import dram_effective_bandwidth
from ..nn.layer import LayerSpec
from ..policies.base import LayerSchedule, StepGroup

#: Recurrence state: (load-chain end, PE free time, store-chain end).
_State = tuple[float, float, float]


@dataclass(frozen=True)
class LatencyBreakdown:
    """Cycle accounting of one layer under one policy."""

    total_cycles: float
    compute_cycles: float
    dma_cycles: float

    def __post_init__(self) -> None:
        if self.total_cycles < 0 or self.compute_cycles < 0 or self.dma_cycles < 0:
            raise ValueError("cycle counts must be non-negative")


def _advance_group(
    state: _State, group: StepGroup, bw: float, rate: float, prefetch: bool
) -> _State:
    """Advance the state across ``group.count`` identical steps, exactly.

    Within a uniform group the three chains obey feed-forward max-plus
    recurrences whose solutions are maxima of linear ramps, so the state
    after ``n`` steps has a closed form:

    * ``L_n = L_0 + n·l`` — loads chain unconditionally;
    * ``P_n = max(P_0 + n·c,  L_0 + n·l + c,  L_0 + l + n·c)`` — the PE is
      delayed either never, by the last load, or by the first load;
    * ``S_n`` — the store chain is the same construction over each of the
      PE ramps, with the binding compute either the last one (``k = n``)
      or the first one (``k = 1``); interior maxima of a linear function
      in ``k`` are dominated by the endpoints.

    The serial (no-prefetch) recurrence fully synchronizes every step, so
    it telescopes to a single linear ramp.
    """
    load = group.load / bw
    compute = group.macs / rate
    store = group.store / bw
    n = group.count
    load_t, pe_t, store_t = state

    if not prefetch:
        start = max(load_t, pe_t, store_t)
        end = start + n * (load + compute + store)
        return (end - compute - store, end - store, end)

    l_n = load_t + n * load
    p_n = max(
        pe_t + n * compute,
        load_t + n * load + compute,
        load_t + load + n * compute,
    )
    if store == 0:
        # The engine leaves the store chain untouched for store-less steps.
        return (l_n, p_n, store_t)
    s_n = max(
        store_t + n * store,
        pe_t + compute + n * store,
        pe_t + n * compute + store,
        load_t + load + compute + n * store,
        load_t + n * load + compute + store,
        load_t + load + n * compute + store,
    )
    return (l_n, p_n, s_n)


def effective_dram_bandwidth(
    schedule: LayerSchedule, spec: AcceleratorSpec, layer: LayerSpec | None
) -> float:
    """Off-chip bandwidth the schedule actually sees, in elements/cycle.

    The flat constant ``spec.dram_bandwidth_elems_per_cycle`` unless the
    spec carries a banked :class:`~repro.dram.DramSpec` *and* the layer is
    known, in which case the schedule's address stream is trace-simulated
    and the delivered rate (which row-buffer conflicts can push well below
    the flat peak) is used instead.
    """
    flat = spec.dram_bandwidth_elems_per_cycle
    if spec.dram is None or layer is None:
        return flat
    return dram_effective_bandwidth(
        schedule, layer, spec.dram, spec.bytes_per_elem, flat
    )


def schedule_latency(
    schedule: LayerSchedule,
    spec: AcceleratorSpec,
    prefetch: bool,
    layer: LayerSpec | None = None,
) -> LatencyBreakdown:
    """Exact two-resource latency of one layer's streaming schedule.

    When ``spec.dram`` is set and ``layer`` is given, the DMA port runs at
    the trace-simulated effective bandwidth instead of the flat constant;
    otherwise behaviour is bit-identical to the flat model.
    """
    bw = effective_dram_bandwidth(schedule, spec, layer)
    rate = spec.macs_per_cycle
    compute = schedule.total_macs / rate
    dma = (schedule.total_load + schedule.total_store) / bw

    total = _scalar_total(schedule, bw, rate, prefetch)
    if prefetch:
        # Port-work conservation: deferred write-backs still use bandwidth.
        total = max(total, dma)
    return LatencyBreakdown(
        total_cycles=total, compute_cycles=compute, dma_cycles=dma
    )


def _scalar_total(
    schedule: LayerSchedule, bw: float, rate: float, prefetch: bool
) -> float:
    """Final ``max(state)`` of one schedule's recurrence (scalar loop)."""
    load_t = schedule.resident_load / bw
    state: _State = (load_t, load_t, 0.0)
    for group in schedule.groups:
        state = _advance_group(state, group, bw, rate, prefetch)
    return max(state)


#: Schedules longer than this stay on the per-group scalar recurrence even
#: inside the batch API: the group axis is sequential (max-plus chain), so
#: a single long-tail schedule would otherwise stretch the whole batch's
#: padded group axis.  Either route is bit-identical; this is speed only.
_BATCH_GROUP_LIMIT = 16


def _batch_totals(
    schedules: Sequence[LayerSchedule], bw: float, rate: float, prefetch: bool
) -> NDArray[np.float64]:
    """Final ``max(state)`` of every schedule's recurrence, vectorized.

    One group slot per recurrence step, advanced for all schedules at once;
    shorter schedules are padded with all-zero groups, which are exact
    no-ops for the final maximum:

    * serial — a zero group sets the state to ``(m, m, m)`` with
      ``m = max(state)``, preserving the maximum;
    * prefetch — a zero group leaves the load chain (``n·l = 0``) and the
      store chain (``store == 0`` keeps ``store_t``) untouched and can only
      lift ``pe_t`` to ``load_t``, which the maximum already contains.

    Every arithmetic expression mirrors :func:`_advance_group` operand for
    operand, so float64 results are bit-identical to the scalar path.
    """
    count_rows = len(schedules)
    max_groups = max((len(s.groups) for s in schedules), default=0)
    n = np.zeros((count_rows, max_groups), dtype=np.int64)
    load_e = np.zeros((count_rows, max_groups), dtype=np.int64)
    macs_e = np.zeros((count_rows, max_groups), dtype=np.int64)
    store_e = np.zeros((count_rows, max_groups), dtype=np.int64)
    for row, schedule in enumerate(schedules):
        for col, group in enumerate(schedule.groups):
            n[row, col] = group.count
            load_e[row, col] = group.load
            macs_e[row, col] = group.macs
            store_e[row, col] = group.store

    load_t = np.array([s.resident_load for s in schedules], dtype=np.float64) / bw
    pe_t = load_t.copy()
    store_t = np.zeros(count_rows, dtype=np.float64)
    for col in range(max_groups):
        load = load_e[:, col] / bw
        compute = macs_e[:, col] / rate
        store = store_e[:, col] / bw
        steps = n[:, col]
        if not prefetch:
            start = np.maximum(np.maximum(load_t, pe_t), store_t)
            end = start + steps * (load + compute + store)
            load_t = end - compute - store
            pe_t = end - store
            store_t = end
        else:
            l_n = load_t + steps * load
            p_n = np.maximum(
                np.maximum(
                    pe_t + steps * compute,
                    load_t + steps * load + compute,
                ),
                load_t + load + steps * compute,
            )
            s_n = np.maximum.reduce(
                [
                    store_t + steps * store,
                    pe_t + compute + steps * store,
                    pe_t + steps * compute + store,
                    load_t + load + compute + steps * store,
                    load_t + steps * load + compute + store,
                    load_t + load + steps * compute + store,
                ]
            )
            store_t = np.where(store_e[:, col] == 0, store_t, s_n)
            load_t = l_n
            pe_t = p_n
    return np.maximum(np.maximum(load_t, pe_t), store_t)


#: Memo of final recurrence totals, keyed by the exact inputs that decide
#: them.  Fixed-tile policies emit *identical* schedules across a GLB
#: ladder, so sweeps re-request the same totals at every size; the batch
#: API (vectorized path only — the scalar oracle never reaches it) reuses
#: them.  Bounded by wholesale reset; cleared with the evaluation memo.
_TOTALS_MEMO: dict[tuple[LayerSchedule, float, float, bool], float] = {}
_TOTALS_MEMO_MAX = 65536


def clear_latency_memo() -> None:
    """Drop the memoized recurrence totals (cold-start benches)."""
    _TOTALS_MEMO.clear()


def schedule_latency_batch(
    schedules: Sequence[LayerSchedule],
    spec: AcceleratorSpec,
    prefetch_flags: Sequence[bool],
) -> list[LatencyBreakdown]:
    """Batch :func:`schedule_latency` over a layer's whole candidate grid.

    Evaluates every schedule's max-plus recurrence as NumPy arrays across
    candidates (the prefetch and serial recurrences differ, so candidates
    split into two sub-batches by flag) and is **bit-identical** to calling
    :func:`schedule_latency` per candidate — the parity suite asserts it.

    Only valid for the flat DRAM model: a banked ``spec.dram`` makes each
    candidate's bandwidth depend on its own simulated address trace, which
    stays on the scalar path.
    """
    if spec.dram is not None:
        raise ValueError(
            "schedule_latency_batch requires the flat DRAM model; "
            "trace-simulated bandwidth is per-candidate (use schedule_latency)"
        )
    bw = spec.dram_bandwidth_elems_per_cycle
    rate = spec.macs_per_cycle
    if len(_TOTALS_MEMO) > _TOTALS_MEMO_MAX:
        _TOTALS_MEMO.clear()
    totals_by_index: dict[int, float] = {}
    for flag in (False, True):
        rows = []
        for i, p in enumerate(prefetch_flags):
            if bool(p) is not flag:
                continue
            cached = _TOTALS_MEMO.get((schedules[i], bw, rate, flag))
            if cached is None:
                rows.append(i)
            else:
                totals_by_index[i] = cached
        short = [i for i in rows if len(schedules[i].groups) <= _BATCH_GROUP_LIMIT]
        if short:
            totals = _batch_totals([schedules[i] for i in short], bw, rate, flag)
            for j, i in enumerate(short):
                totals_by_index[i] = float(totals[j])
        for i in rows:
            if i not in totals_by_index:
                totals_by_index[i] = _scalar_total(schedules[i], bw, rate, flag)
        for i in rows:
            _TOTALS_MEMO[(schedules[i], bw, rate, flag)] = totals_by_index[i]  # repro: noqa[R060] -- benign race: idempotent memo put of a deterministic value; dict item assignment is atomic under the GIL
    results: list[LatencyBreakdown] = []
    for i, schedule in enumerate(schedules):
        compute = schedule.total_macs / rate
        dma = (schedule.total_load + schedule.total_store) / bw
        total = totals_by_index[i]
        if prefetch_flags[i]:
            # Port-work conservation, exactly as the scalar path.
            total = max(total, dma)
        results.append(
            LatencyBreakdown(
                total_cycles=total, compute_cycles=compute, dma_cycles=dma
            )
        )
    return results
