"""Systolic-array compute-cycle models (SCALE-Sim analytical mode).

The paper's baseline latency is SCALE-Sim's zero-stall compute time, which
the analytical model derives from fold counts over the PE array:

* **OS** — each PE owns one ofmap pixel × filter pair; a fold streams the
  ``K``-long dot products through the skewed array: ``2R + C + K − 2``
  cycles per fold (fill the skew, stream K operands, drain results).
* **WS** — weights of an ``R × C`` tile are preloaded (``R`` cycles), then
  ``SR`` ifmap rows stream through with fill/drain ``R + C − 1``.
* **IS** — symmetric to WS with ifmap resident.

These match SCALE-Sim's published first-order timing; the absolute values
only matter through the baseline-vs-proposed latency comparison (Fig. 8),
which is shape-, not constant-, sensitive.
"""

from __future__ import annotations

from ..arch.units import ceil_div
from .config import Dataflow, ScaleSimConfig
from .topology import GemmWorkload


def compute_cycles(workload: GemmWorkload, config: ScaleSimConfig) -> int:
    """Zero-stall compute cycles of one GEMM on the systolic array."""
    r, c = config.array_rows, config.array_cols
    sr, sc, k = workload.sr, workload.sc, workload.k
    if config.dataflow is Dataflow.OS:
        folds = ceil_div(sr, r) * ceil_div(sc, c)
        per_fold = 2 * r + c + k - 2
        return folds * per_fold
    if config.dataflow is Dataflow.WS:
        folds = ceil_div(k, r) * ceil_div(sc, c)
        per_fold = r + sr + r + c - 2  # preload + stream + fill/drain
        return folds * per_fold
    if config.dataflow is Dataflow.IS:
        folds = ceil_div(k, r) * ceil_div(sr, c)
        per_fold = r + sc + r + c - 2
        return folds * per_fold
    raise ValueError(f"unknown dataflow {config.dataflow}")


def utilization(workload: GemmWorkload, config: ScaleSimConfig) -> float:
    """Fraction of PE-cycles doing useful MACs (mapping efficiency)."""
    cycles = compute_cycles(workload, config)
    peak = cycles * config.array_rows * config.array_cols
    return workload.macs / peak if peak else 0.0
