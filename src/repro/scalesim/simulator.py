"""The baseline simulator: compute cycles + DRAM traffic per model.

Mirrors how the paper uses SCALE-Sim (§4): the latency is the zero-stall
compute time (independent of buffer sizes, hence the single baseline bar
per model in Fig. 8) and the off-chip access volume depends on the buffer
partition (the three ``sa_*`` bars of Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.model import Model
from .config import ScaleSimConfig
from .dataflow import compute_cycles, utilization
from .memory import LayerTraffic, layer_traffic
from .topology import GemmWorkload, lower_model


@dataclass(frozen=True)
class LayerResult:
    """Baseline simulation result for one layer."""

    workload: GemmWorkload
    compute_cycles: int
    traffic: LayerTraffic
    utilization: float

    @property
    def name(self) -> str:
        return self.workload.name


@dataclass(frozen=True)
class SimulationResult:
    """Baseline simulation result for a whole model."""

    model_name: str
    config: ScaleSimConfig
    layers: tuple[LayerResult, ...]

    @property
    def total_cycles(self) -> int:
        return sum(layer.compute_cycles for layer in self.layers)

    def total_cycles_with_stalls(self, bandwidth_elems_per_cycle: float) -> float:
        """Latency when DRAM stalls are charged (the paper's baseline is
        simulated "for zero stalls"; this quantifies what that assumption
        hides).  Per layer the array cannot finish before its DRAM traffic
        drains: ``max(compute, traffic / bandwidth)``."""
        if bandwidth_elems_per_cycle <= 0:
            raise ValueError("bandwidth must be positive")
        return sum(
            max(
                layer.compute_cycles,
                layer.traffic.total / bandwidth_elems_per_cycle,
            )
            for layer in self.layers
        )

    @property
    def total_traffic_elems(self) -> int:
        return sum(layer.traffic.total for layer in self.layers)

    @property
    def total_traffic_bytes(self) -> int:
        return self.total_traffic_elems * self.config.bytes_per_elem

    @property
    def total_read_bytes(self) -> int:
        return sum(layer.traffic.reads for layer in self.layers) * self.config.bytes_per_elem

    @property
    def total_write_bytes(self) -> int:
        return (
            sum(layer.traffic.ofmap_writes for layer in self.layers)
            * self.config.bytes_per_elem
        )

    @property
    def mean_utilization(self) -> float:
        total_macs = sum(layer.workload.macs for layer in self.layers)
        return total_macs / (
            self.total_cycles * self.config.array_rows * self.config.array_cols
        )

    @property
    def average_dram_bandwidth_elems_per_cycle(self) -> float:
        """Average DRAM elements moved per compute cycle (paper §4 uses the
        maximum of this across configurations to set the proposed design's
        bandwidth)."""
        return self.total_traffic_elems / self.total_cycles if self.total_cycles else 0.0


def simulate(model: Model, config: ScaleSimConfig) -> SimulationResult:
    """Run the analytical baseline over a model."""
    layers = []
    for workload in lower_model(model):
        layers.append(
            LayerResult(
                workload=workload,
                compute_cycles=compute_cycles(workload, config),
                traffic=layer_traffic(workload, config),
                utilization=utilization(workload, config),
            )
        )
    return SimulationResult(model_name=model.name, config=config, layers=tuple(layers))
