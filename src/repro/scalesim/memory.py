"""DRAM-traffic model for the separate-buffer baseline.

SCALE-Sim's output-stationary execution walks the ofmap in folds: row
folds (groups of ``R`` ofmap pixels) by column folds (groups of ``C``
filters).  Each operand's SRAM can *pin* a buffer-sized portion of its
working set; whatever does not fit re-streams from DRAM every time the
fold loop returns to it:

* **Filters** are needed by every row fold, so the un-pinned remainder
  re-streams once per row fold:
  ``reads_F = min(F, B_f) + max(0, F − B_f) × row_folds``.
* **Ifmap** data is needed by every column fold, so the un-pinned
  remainder re-streams once per column fold:
  ``reads_I = min(I, B_i) + max(0, I − B_i) × col_folds``.
* **Ofmap** is written exactly once (output stationary; the 4 kB ofmap
  buffer drains completed tiles).

This "pinned prefix + cyclic re-stream" model is the first-order behavior
of a double-buffered SRAM in SCALE-Sim's fixed fold schedule (an LRU
window gives no credit on a cyclic stream longer than itself, while a
pinned prefix is realizable and strictly better).  It reproduces the
partition sensitivities of paper §5.1: filter-heavy models (ResNet18,
GoogLeNet, MobileNet) gain most from a large filter partition
(``sa_25_75``) because the saved re-streams scale with ``row_folds``,
whereas ifmap-heavy models (EfficientNetB0, MnasNet, MobileNetV2) prefer
``sa_75_25``.  Traffic is monotonically non-increasing in either buffer
size and converges to the compulsory minimum once an operand is resident.

Depth-wise workloads have channel-private ifmaps and per-channel filters:
every element moves once regardless of partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.units import ceil_div
from .config import ScaleSimConfig
from .topology import GemmWorkload


@dataclass(frozen=True)
class LayerTraffic:
    """Per-operand DRAM traffic of one layer, in elements."""

    ifmap_reads: int
    filter_reads: int
    ofmap_writes: int
    #: "<ifmap regime>/<filter regime>", each "resident" or "pinned".
    regime: str

    @property
    def reads(self) -> int:
        return self.ifmap_reads + self.filter_reads

    @property
    def total(self) -> int:
        return self.reads + self.ofmap_writes


def _pinned_reads(unique: int, buffer_elems: int, refolds: int) -> tuple[int, str]:
    """Reads for one operand under the pinned-prefix model."""
    if unique <= buffer_elems:
        return unique, "resident"
    return buffer_elems + (unique - buffer_elems) * refolds, "pinned"


def layer_traffic(workload: GemmWorkload, config: ScaleSimConfig) -> LayerTraffic:
    """DRAM traffic of one layer under the fixed OS fold schedule."""
    if workload.channel_private:
        # Depth-wise: each channel's ifmap meets only its own tiny filter,
        # so there is no cross-fold reuse to lose.
        return LayerTraffic(
            ifmap_reads=workload.ifmap_unique,
            filter_reads=workload.filter_unique,
            ofmap_writes=workload.ofmap_unique,
            regime="resident/resident",
        )

    row_folds = ceil_div(workload.sr, config.array_rows)
    col_folds = ceil_div(workload.sc, config.array_cols)
    ifmap_reads, ifmap_regime = _pinned_reads(
        workload.ifmap_unique, config.ifmap_working_elems, col_folds
    )
    filter_reads, filter_regime = _pinned_reads(
        workload.filter_unique, config.filter_working_elems, row_folds
    )
    return LayerTraffic(
        ifmap_reads=ifmap_reads,
        filter_reads=filter_reads,
        ofmap_writes=workload.ofmap_unique,
        regime=f"{ifmap_regime}/{filter_regime}",
    )
