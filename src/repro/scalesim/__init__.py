"""SCALE-Sim-style baseline: separate-buffer systolic-array accelerator."""

from .config import Dataflow, ScaleSimConfig
from .dataflow import compute_cycles, utilization
from .memory import LayerTraffic, layer_traffic
from .presets import PARTITIONS, baseline_config, baseline_configs
from .simulator import LayerResult, SimulationResult, simulate
from .trace import TraceRecord, generate_dram_trace, trace_to_csv
from .topology import (
    GemmWorkload,
    lower_layer,
    lower_model,
    model_to_topology_csv,
    save_topology,
)

__all__ = [
    "Dataflow",
    "ScaleSimConfig",
    "compute_cycles",
    "utilization",
    "LayerTraffic",
    "layer_traffic",
    "PARTITIONS",
    "baseline_config",
    "baseline_configs",
    "GemmWorkload",
    "lower_layer",
    "lower_model",
    "model_to_topology_csv",
    "save_topology",
    "LayerResult",
    "SimulationResult",
    "simulate",
    "TraceRecord",
    "generate_dram_trace",
    "trace_to_csv",
]
