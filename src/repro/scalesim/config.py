"""Configuration of the SCALE-Sim-style baseline accelerator.

The paper's baseline (§4) is a 16×16 output-stationary systolic array
simulated with SCALE-Sim, with *separate* double-buffered SRAMs per data
type: a fixed 4 kB ofmap buffer and the remaining capacity split between
the ifmap and filter buffers in a fixed ratio (25-75, 50-50 or 75-25).
SCALE-Sim's double buffering halves the usable capacity of each buffer
("instead of requiring additional space, the assigned buffer size is
divided in half").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..arch.units import kib


class Dataflow(enum.Enum):
    """Systolic-array dataflows supported by the baseline model."""

    OS = "os"  #: output stationary (the paper's baseline)
    WS = "ws"  #: weight stationary
    IS = "is"  #: input stationary


@dataclass(frozen=True)
class ScaleSimConfig:
    """Static configuration of the baseline systolic-array accelerator."""

    array_rows: int = 16
    array_cols: int = 16
    dataflow: Dataflow = Dataflow.OS
    ifmap_buf_bytes: int = kib(30)
    filter_buf_bytes: int = kib(30)
    ofmap_buf_bytes: int = kib(4)
    data_width_bits: int = 8
    #: SCALE-Sim-style double buffering: half of each buffer holds the
    #: active working set, the other half prefetches.
    double_buffered: bool = True

    def __post_init__(self) -> None:
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if min(self.ifmap_buf_bytes, self.filter_buf_bytes, self.ofmap_buf_bytes) <= 0:
            raise ValueError("buffer sizes must be positive")
        if self.data_width_bits % 8 != 0 or self.data_width_bits <= 0:
            raise ValueError("data_width_bits must be a positive multiple of 8")

    @property
    def bytes_per_elem(self) -> int:
        return self.data_width_bits // 8  # repro: noqa[R004] -- the canonical bits->bytes boundary

    @property
    def total_sram_bytes(self) -> int:
        return self.ifmap_buf_bytes + self.filter_buf_bytes + self.ofmap_buf_bytes

    def _working(self, nbytes: int) -> int:
        """Usable working-set elements of a buffer (half if double-buffered)."""
        usable = nbytes // 2 if self.double_buffered else nbytes
        return max(1, usable // self.bytes_per_elem)

    @property
    def ifmap_working_elems(self) -> int:
        return self._working(self.ifmap_buf_bytes)

    @property
    def filter_working_elems(self) -> int:
        return self._working(self.filter_buf_bytes)

    @property
    def ofmap_working_elems(self) -> int:
        return self._working(self.ofmap_buf_bytes)
