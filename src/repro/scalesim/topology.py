"""Layer → GEMM workload conversion (SCALE-Sim topology semantics).

SCALE-Sim lowers a convolution to the im2col GEMM

    (SR × K) · (K × SC) → (SR × SC)

with ``SR = O_H·O_W`` ofmap pixels, ``SC = F#`` filters and
``K = F_H·F_W·C_I`` the dot-product length.  The *unique* operand
footprints differ from the GEMM matrix sizes because im2col rows overlap:
the unique ifmap is ``I_H·I_W·C_I`` (the baseline does not count padding —
paper §5.1 notes our scheme does and the baseline does not).

Depth-wise layers lower to ``C_I`` independent single-filter GEMMs, which
we represent as one workload with ``SC = C_I``, ``K = F_H·F_W`` and
*channel-private* ifmap (no reuse across columns).

This module can also emit/read SCALE-Sim-style topology CSV rows so
externally generated topologies can be simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..nn.layer import LayerKind, LayerSpec
from ..nn.model import Model


@dataclass(frozen=True)
class GemmWorkload:
    """One layer lowered to an im2col GEMM with unique-footprint info."""

    name: str
    sr: int  #: GEMM rows = ofmap pixels
    sc: int  #: GEMM cols = filters (or channels for DW)
    k: int  #: dot-product length
    ifmap_unique: int  #: unique ifmap elements (unpadded)
    filter_unique: int  #: unique filter elements
    ofmap_unique: int  #: unique ofmap elements
    #: True when ifmap columns are channel-private (depth-wise): no reuse
    #: of ifmap data across GEMM columns exists to begin with.
    channel_private: bool = False

    @property
    def macs(self) -> int:
        return self.sr * self.sc * self.k


def lower_layer(layer: LayerSpec) -> GemmWorkload:
    """Lower one layer to its GEMM workload."""
    if layer.kind is LayerKind.DEPTHWISE:
        return GemmWorkload(
            name=layer.name,
            sr=layer.out_h * layer.out_w,
            sc=layer.in_c,
            k=layer.f_h * layer.f_w,
            ifmap_unique=layer.ifmap_elems,
            filter_unique=layer.filter_elems,
            ofmap_unique=layer.ofmap_elems,
            channel_private=True,
        )
    return GemmWorkload(
        name=layer.name,
        sr=layer.out_h * layer.out_w,
        sc=layer.num_filters,
        k=layer.f_h * layer.f_w * layer.in_c,
        ifmap_unique=layer.ifmap_elems,
        filter_unique=layer.filter_elems,
        ofmap_unique=layer.ofmap_elems,
    )


def lower_model(model: Model) -> list[GemmWorkload]:
    """Lower a whole model in execution order."""
    return [lower_layer(layer) for layer in model.layers]


# ----------------------------------------------------------------------
# SCALE-Sim-style topology CSV
# ----------------------------------------------------------------------

_CSV_HEADER = (
    "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width, "
    "Channels, Num Filter, Strides,"
)


def model_to_topology_csv(model: Model) -> str:
    """Serialize a model in SCALE-Sim's topology CSV format."""
    lines = [_CSV_HEADER]
    for layer in model.layers:
        lines.append(
            f"{layer.name}, {layer.in_h}, {layer.in_w}, {layer.f_h}, "
            f"{layer.f_w}, {layer.in_c}, "
            f"{1 if layer.kind is LayerKind.DEPTHWISE else layer.num_filters}, "
            f"{layer.stride},"
        )
    return "\n".join(lines) + "\n"


def save_topology(model: Model, path: str | Path) -> None:
    """Write the SCALE-Sim topology CSV for a model."""
    Path(path).write_text(model_to_topology_csv(model))
