"""The three baseline configurations of paper §4.

Each splits a total on-chip capacity into a fixed 4 kB ofmap buffer and an
ifmap/filter partition of 25-75 %, 50-50 % or 75-25 %.
"""

from __future__ import annotations

from ..arch.units import kib
from .config import Dataflow, ScaleSimConfig

#: Partition names in paper order: (label, ifmap share, filter share).
PARTITIONS = (
    ("sa_25_75", 0.25, 0.75),
    ("sa_50_50", 0.50, 0.50),
    ("sa_75_25", 0.75, 0.25),
)


def baseline_config(
    total_bytes: int,
    ifmap_share: float,
    *,
    data_width_bits: int = 8,
    array_rows: int = 16,
    array_cols: int = 16,
) -> ScaleSimConfig:
    """One baseline configuration for a total SRAM capacity.

    The 4 kB ofmap buffer comes off the top (paper §4); the remainder is
    split ``ifmap_share`` / ``1 − ifmap_share``.
    """
    if not 0.0 < ifmap_share < 1.0:
        raise ValueError(f"ifmap_share must be in (0, 1), got {ifmap_share}")
    ofmap = kib(4)
    if total_bytes <= ofmap:
        raise ValueError(f"total_bytes must exceed the {ofmap}-byte ofmap buffer")
    rest = total_bytes - ofmap
    ifmap = int(rest * ifmap_share)
    return ScaleSimConfig(
        array_rows=array_rows,
        array_cols=array_cols,
        dataflow=Dataflow.OS,
        ifmap_buf_bytes=ifmap,
        filter_buf_bytes=rest - ifmap,
        ofmap_buf_bytes=ofmap,
        data_width_bits=data_width_bits,
    )


def baseline_configs(
    total_bytes: int, *, data_width_bits: int = 8
) -> dict[str, ScaleSimConfig]:
    """The paper's three fixed-partition baselines for one total capacity."""
    return {
        label: baseline_config(total_bytes, share, data_width_bits=data_width_bits)
        for label, share, _ in PARTITIONS
    }
