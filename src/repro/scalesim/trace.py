"""DRAM address-trace generation for the baseline (SCALE-Sim's signature
output).

SCALE-Sim's distinguishing feature over analytical models is that it
emits cycle-stamped DRAM request traces.  This module reproduces that
capability for the output-stationary fold schedule: one
:class:`TraceRecord` per (cycle, address, read/write) DRAM transaction,
consistent *by construction* with the pinned-prefix traffic model in
:mod:`repro.scalesim.memory` — the test suite asserts the per-operand
record counts equal :func:`layer_traffic` exactly.

Address map (element-granularity, one operand space per tensor):

* ifmap:   ``[0, I)``
* filters: ``[I, I + F)``
* ofmap:   ``[I + F, I + F + O)``

Schedule: row folds outer, column folds inner.  The first pass over an
operand emits all its addresses; afterwards only the un-pinned suffix
re-streams (filters once per row fold, ifmap once per column fold).
Ofmap tiles are written once when their fold completes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..arch.units import ceil_div
from .config import ScaleSimConfig
from .dataflow import compute_cycles
from .memory import layer_traffic
from .topology import GemmWorkload


@dataclass(frozen=True)
class TraceRecord:
    """One DRAM transaction."""

    cycle: int
    address: int
    is_write: bool
    operand: str  #: "ifmap", "filter" or "ofmap"


class TraceLimitExceeded(RuntimeError):
    """The workload would emit more records than the caller allowed."""


def _check_limit(emitted: int, limit: int | None) -> None:
    if limit is not None and emitted > limit:
        raise TraceLimitExceeded(
            f"trace exceeds max_records={limit}; use a smaller layer "
            f"or raise the cap"
        )


def generate_dram_trace(
    workload: GemmWorkload,
    config: ScaleSimConfig,
    max_records: int | None = 2_000_000,
) -> Iterator[TraceRecord]:
    """Yield the DRAM transactions of one layer in schedule order."""
    traffic = layer_traffic(workload, config)
    ifmap_base = 0
    filter_base = workload.ifmap_unique
    ofmap_base = filter_base + workload.filter_unique

    row_folds = ceil_div(workload.sr, config.array_rows)
    col_folds = ceil_div(workload.sc, config.array_cols)
    per_fold = compute_cycles(workload, config) // (row_folds * col_folds)

    bi = config.ifmap_working_elems
    bf = config.filter_working_elems
    ifmap_pinned = min(workload.ifmap_unique, bi)
    filter_pinned = min(workload.filter_unique, bf)

    emitted = 0
    rows_per_fold = ceil_div(workload.sr, row_folds)
    for r in range(row_folds):
        for c in range(col_folds):
            cycle = (r * col_folds + c) * per_fold

            if workload.channel_private:
                # Depth-wise: each fold touches only its private slices,
                # every element exactly once.
                if r == 0:
                    span0 = c * workload.ifmap_unique // col_folds
                    span1 = (c + 1) * workload.ifmap_unique // col_folds
                    for address in range(ifmap_base + span0, ifmap_base + span1):
                        yield TraceRecord(cycle, address, False, "ifmap")
                        emitted += 1
                    f0 = c * workload.filter_unique // col_folds
                    f1 = (c + 1) * workload.filter_unique // col_folds
                    for address in range(filter_base + f0, filter_base + f1):
                        yield TraceRecord(cycle, address, False, "filter")
                        emitted += 1
                    _check_limit(emitted, max_records)
            else:
                # Ifmap: the whole operand on the first pass (r == 0,
                # c == 0 of the first row fold covers the pinned prefix;
                # the schedule streams unique data per row fold), then the
                # un-pinned suffix once per extra column fold.
                if r == 0 and c == 0:
                    for address in range(ifmap_base, ifmap_base + workload.ifmap_unique):
                        yield TraceRecord(cycle, address, False, "ifmap")
                        emitted += 1
                elif r == 0 and ifmap_pinned < workload.ifmap_unique:
                    for address in range(
                        ifmap_base + ifmap_pinned, ifmap_base + workload.ifmap_unique
                    ):
                        yield TraceRecord(cycle, address, False, "ifmap")
                        emitted += 1
                _check_limit(emitted, max_records)

                # Filters: all on the first row fold, un-pinned suffix on
                # later row folds (emitted on each fold's first column).
                if r == 0 and c == 0:
                    for address in range(
                        filter_base, filter_base + workload.filter_unique
                    ):
                        yield TraceRecord(cycle, address, False, "filter")
                        emitted += 1
                elif c == 0 and filter_pinned < workload.filter_unique:
                    for address in range(
                        filter_base + filter_pinned,
                        filter_base + workload.filter_unique,
                    ):
                        yield TraceRecord(cycle, address, False, "filter")
                        emitted += 1
                _check_limit(emitted, max_records)

        # Output stationary: the fold row's ofmap pixels drain once all
        # its column folds are done.
        drain_cycle = ((r + 1) * col_folds) * per_fold
        pixel0 = r * rows_per_fold
        pixel1 = min(workload.sr, (r + 1) * rows_per_fold)
        for pixel in range(pixel0, pixel1):
            for col in range(workload.sc):
                address = ofmap_base + pixel * workload.sc + col
                yield TraceRecord(drain_cycle, address, True, "ofmap")
                emitted += 1
        _check_limit(emitted, max_records)

    # Consistency guard: the generator must agree with the traffic model.
    expected = traffic.total
    if emitted != expected:  # pragma: no cover - defensive
        raise AssertionError(
            f"trace emitted {emitted} records, traffic model says {expected}"
        )


def trace_to_csv(records: Iterator[TraceRecord], path: str | Path) -> int:
    """Write records in SCALE-Sim's ``cycle, address`` CSV style.

    Returns the number of records written.
    """
    count = 0
    with open(path, "w") as fh:
        fh.write("cycle, address, rw, operand\n")
        for record in records:
            fh.write(
                f"{record.cycle}, {record.address}, "
                f"{'W' if record.is_write else 'R'}, {record.operand}\n"
            )
            count += 1
    return count
