"""SCALE-Sim file-format compatibility.

SCALE-Sim configures runs through INI-style ``.cfg`` files and describes
workloads through topology CSVs.  This module reads and writes both so
configurations can move between the original tool and this reproduction:

* :func:`load_scalesim_cfg` / :func:`save_scalesim_cfg` — the
  ``[architecture_presets]`` section (array dims, buffer sizes in kB,
  dataflow);
* :func:`load_topology_csv` — topology CSV rows back into
  :class:`~repro.nn.model.Model` (the inverse of
  :func:`~repro.scalesim.topology.model_to_topology_csv`); layer kinds
  are inferred (1×1 → PW, ``num_filters == 1`` with channels → DW,
  1×1 spatial input → FC, else CV).
"""

from __future__ import annotations

import configparser
from pathlib import Path

from ..arch.units import kib
from ..nn.layer import LayerKind, LayerSpec
from ..nn.model import Model, make_model
from .config import Dataflow, ScaleSimConfig

_SECTION = "architecture_presets"


def save_scalesim_cfg(config: ScaleSimConfig, path: str | Path, run_name: str = "repro") -> None:
    """Write a SCALE-Sim-style .cfg file."""
    parser = configparser.ConfigParser()
    parser["general"] = {"run_name": run_name}
    parser[_SECTION] = {
        "ArrayHeight": str(config.array_rows),
        "ArrayWidth": str(config.array_cols),
        "IfmapSramSzkB": str(config.ifmap_buf_bytes // kib(1)),
        "FilterSramSzkB": str(config.filter_buf_bytes // kib(1)),
        "OfmapSramSzkB": str(config.ofmap_buf_bytes // kib(1)),
        "Dataflow": config.dataflow.value,
    }
    with open(path, "w") as fh:
        parser.write(fh)


def load_scalesim_cfg(path: str | Path, *, data_width_bits: int = 8) -> ScaleSimConfig:
    """Read a SCALE-Sim-style .cfg file into a :class:`ScaleSimConfig`."""
    parser = configparser.ConfigParser()
    read = parser.read(path)
    if not read:
        raise FileNotFoundError(path)
    if _SECTION not in parser:
        raise ValueError(f"{path}: missing [{_SECTION}] section")
    section = parser[_SECTION]
    try:
        return ScaleSimConfig(
            array_rows=section.getint("ArrayHeight"),
            array_cols=section.getint("ArrayWidth"),
            ifmap_buf_bytes=kib(section.getint("IfmapSramSzkB")),
            filter_buf_bytes=kib(section.getint("FilterSramSzkB")),
            ofmap_buf_bytes=kib(section.getint("OfmapSramSzkB")),
            dataflow=Dataflow(section.get("Dataflow", "os").lower()),
            data_width_bits=data_width_bits,
        )
    except (TypeError, ValueError, KeyError) as exc:
        raise ValueError(f"{path}: malformed architecture presets: {exc}") from exc


def _infer_kind(
    in_h: int, in_w: int, f_h: int, f_w: int, channels: int, num_filters: int
) -> LayerKind:
    if (in_h, in_w) == (1, 1) and (f_h, f_w) == (1, 1):
        return LayerKind.FC
    if num_filters == 1 and channels > 1 and f_h > 1:
        return LayerKind.DEPTHWISE
    if (f_h, f_w) == (1, 1):
        return LayerKind.POINTWISE
    return LayerKind.CONV


def load_topology_csv(
    path: str | Path, model_name: str | None = None, *, same_padding: bool = True
) -> Model:
    """Read a SCALE-Sim topology CSV into a :class:`Model`.

    SCALE-Sim topologies carry no padding column; ``same_padding`` applies
    ``(F−1)//2`` (SCALE-Sim itself computes valid convolutions, so pass
    ``False`` to reproduce that instead).
    """
    path = Path(path)
    lines = [line.strip() for line in path.read_text().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty topology file")
    layers: list[LayerSpec] = []
    for line in lines[1:]:  # skip header
        fields = [f.strip() for f in line.rstrip(",").split(",")]
        if len(fields) < 8:
            raise ValueError(f"{path}: malformed row {line!r}")
        name = fields[0]
        in_h, in_w, f_h, f_w, channels, num_filters, stride = map(int, fields[1:8])
        kind = _infer_kind(in_h, in_w, f_h, f_w, channels, num_filters)
        pad = (f_h - 1) // 2 if same_padding else 0
        layers.append(
            LayerSpec(
                name=name,
                kind=kind,
                in_h=in_h,
                in_w=in_w,
                in_c=channels,
                f_h=f_h,
                f_w=f_w,
                num_filters=num_filters,
                stride=stride,
                padding=pad,
            )
        )
    return make_model(model_name or path.stem, layers)
