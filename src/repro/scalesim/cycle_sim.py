"""Cycle-stepped output-stationary systolic-array simulation.

The analytical baseline prices an OS fold at ``2R + C + K − 2`` cycles.
This module *derives* that number instead of asserting it: it steps an
R×C PE grid cycle by cycle — skewed operand injection from the west
(GEMM-A rows) and north (GEMM-B columns), one register hop per cycle,
one MAC per PE per cycle where operands coincide, then a southward
result drain — and returns both the computed GEMM block and the exact
cycle count.  The test suite checks the product against NumPy matmul and
the cycle count against :func:`repro.scalesim.dataflow.compute_cycles`
fold for fold.

This is deliberately the slow, obviously-correct machine: use it on
small GEMMs (tests, education, spot-audits), and the analytical model
everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.units import ceil_div


@dataclass(frozen=True)
class FoldResult:
    """One fold's outcome."""

    output: np.ndarray  #: (rows, cols) partial GEMM block
    cycles: int
    mac_count: int  #: useful MACs executed

    @property
    def utilization(self) -> float:
        """Useful-MAC fraction of the fold's PE-cycles (array assumed
        fully powered for the whole fold)."""
        return self.mac_count / (self.cycles * self.output.size) if self.cycles else 0.0


def simulate_fold(
    a_block: np.ndarray, b_block: np.ndarray, array_rows: int, array_cols: int
) -> FoldResult:
    """Run one OS fold: ``a_block (r×K) @ b_block (K×c)`` on the array.

    ``r ≤ array_rows`` and ``c ≤ array_cols``; smaller blocks leave PEs
    idle (lower utilization), exactly like partial folds on real arrays.
    """
    r, k = a_block.shape
    k2, c = b_block.shape
    if k != k2:
        raise ValueError(f"inner dimensions differ: {k} vs {k2}")
    if r > array_rows or c > array_cols:
        raise ValueError("block exceeds the PE array")

    # Register files across the full physical array.
    a_reg = np.zeros((array_rows, array_cols))
    a_valid = np.zeros((array_rows, array_cols), dtype=bool)
    b_reg = np.zeros((array_rows, array_cols))
    b_valid = np.zeros((array_rows, array_cols), dtype=bool)
    psum = np.zeros((array_rows, array_cols))
    macs = 0

    # Operands stream for K + skew cycles; the last PE (r-1, c-1) consumes
    # its final pair at cycle K - 1 + (r - 1) + (c - 1).
    stream_cycles = k + r + c - 2 if min(r, c, k) > 0 else 0
    for t in range(stream_cycles):
        # Shift east (A) and south (B); inject the skewed edges.
        a_reg[:, 1:] = a_reg[:, :-1]
        a_valid[:, 1:] = a_valid[:, :-1]
        b_reg[1:, :] = b_reg[:-1, :]
        b_valid[1:, :] = b_valid[:-1, :]
        for i in range(array_rows):
            kk = t - i  # row i is skewed by i cycles
            if i < r and 0 <= kk < k:
                a_reg[i, 0] = a_block[i, kk]
                a_valid[i, 0] = True
            else:
                a_reg[i, 0] = 0.0
                a_valid[i, 0] = False
        for j in range(array_cols):
            kk = t - j
            if j < c and 0 <= kk < k:
                b_reg[0, j] = b_block[kk, j]
                b_valid[0, j] = True
            else:
                b_reg[0, j] = 0.0
                b_valid[0, j] = False
        active = a_valid & b_valid
        psum += np.where(active, a_reg * b_reg, 0.0)
        macs += int(active.sum())

    # Drain: psums shift south one row per cycle, all columns in parallel;
    # emptying the used rows takes r cycles (SCALE-Sim's OS drain).
    drain_cycles = r
    output = psum[:r, :c].copy()

    return FoldResult(
        output=output,
        cycles=stream_cycles + drain_cycles,
        mac_count=macs,
    )


@dataclass(frozen=True)
class GemmResult:
    """A full GEMM executed fold by fold."""

    output: np.ndarray
    cycles: int
    mac_count: int
    folds: int


def simulate_gemm(
    a: np.ndarray, b: np.ndarray, array_rows: int = 16, array_cols: int = 16
) -> GemmResult:
    """Execute ``a (SR×K) @ b (K×SC)`` fold by fold on the array."""
    sr, k = a.shape
    _, sc = b.shape
    row_folds = ceil_div(sr, array_rows)
    col_folds = ceil_div(sc, array_cols)
    output = np.zeros((sr, sc))
    cycles = 0
    macs = 0
    for rf in range(row_folds):
        r0, r1 = rf * array_rows, min(sr, (rf + 1) * array_rows)
        for cf in range(col_folds):
            c0, c1 = cf * array_cols, min(sc, (cf + 1) * array_cols)
            fold = simulate_fold(a[r0:r1], b[:, c0:c1], array_rows, array_cols)
            output[r0:r1, c0:c1] = fold.output
            cycles += fold.cycles
            macs += fold.mac_count
    return GemmResult(
        output=output, cycles=cycles, mac_count=macs, folds=row_folds * col_folds
    )
