"""The single monotonic clock behind every repro timing.

All wall-time measurements — span durations, the experiment engine's
per-artifact seconds, :meth:`repro.manager.MemoryManager.plan_cached` —
go through :func:`monotonic_ns` so that (a) every timing in the repo is
taken from the same monotonic source and (b) tests can monkeypatch one
function (``repro.obs.clock.monotonic_ns``) to make timings
deterministic.  Callers must access it as a module attribute
(``clock.monotonic_ns()``), never ``from … import monotonic_ns``, or the
monkeypatch will not reach them.

``time.perf_counter_ns`` is monotonic and never feeds results (only
telemetry), so the determinism lint (R010) does not apply here.
"""

from __future__ import annotations

import time


def monotonic_ns() -> int:
    """Current monotonic timestamp in nanoseconds (telemetry/timing only)."""
    return time.perf_counter_ns()


def elapsed_seconds(start_ns: int) -> float:
    """Seconds elapsed since a :func:`monotonic_ns` timestamp."""
    return (monotonic_ns() - start_ns) / 1e9
