"""Structured tracing: nested, attribute-carrying spans.

Design goals, in order:

* **Free when off.**  The default tracer is a :class:`NullTracer` whose
  ``start`` returns a shared stateless no-op span — no clock read, no
  allocation beyond the kwargs dict, no lock.
* **Safe when on.**  :class:`Tracer` is thread-safe (one lock around the
  record list, thread-local depth bookkeeping) and its
  :class:`SpanRecord` output is a picklable frozen dataclass, so worker
  processes can ship their spans back to the engine for merging.
* **Process-correct under fork.**  Worker processes of the experiment
  engine's pool inherit the parent's tracer state on Linux (fork start
  method).  :func:`configure_worker` — installed as the pool initializer
  — replaces it with a fresh tracer (or the null tracer) according to
  the ``REPRO_TRACE`` environment flag, so parent spans are never
  duplicated into worker snapshots.

Spans must be opened with ``with`` (enforced by lint rule R030)::

    with get_tracer().start("plan_layer", layer=layer.name) as span:
        ...
        span.set_attr("candidates_count", len(evaluations))
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Iterable

from . import clock

#: Environment flag enabling tracing in spawned worker processes.  Set by
#: :func:`enable_tracing`, read by :func:`configure_worker`.  Telemetry
#: only — it can never change a planning or simulation result.
ENV_TRACE = "REPRO_TRACE"


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what happened, where, and for how long."""

    name: str
    start_ns: int
    end_ns: int
    pid: int
    tid: int
    depth: int
    attrs: tuple[tuple[str, object], ...] = ()

    @property
    def duration_ns(self) -> int:
        """Span duration in nanoseconds."""
        return self.end_ns - self.start_ns

    def attr_dict(self) -> dict[str, object]:
        """The span attributes as a plain dict."""
        return dict(self.attrs)


class AbstractSpan:
    """No-op span base; the shared instance backs :class:`NullTracer`."""

    __slots__ = ()

    def set_attr(self, key: str, value: object) -> None:
        """Attach an attribute to the span (no-op here)."""
        return None

    def __enter__(self) -> "AbstractSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        return None


#: The one stateless span every :class:`NullTracer.start` call returns.
_NULL_SPAN = AbstractSpan()


class Span(AbstractSpan):
    """A live span; records itself into its tracer on ``__exit__``."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._start_ns = 0
        self._depth = 0

    def set_attr(self, key: str, value: object) -> None:
        """Attach (or overwrite) an attribute on the span."""
        self._attrs[key] = value

    def __enter__(self) -> "Span":
        self._depth = self._tracer._enter_depth()
        self._start_ns = clock.monotonic_ns()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        end_ns = clock.monotonic_ns()
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._record(
            SpanRecord(
                name=self._name,
                start_ns=self._start_ns,
                end_ns=end_ns,
                pid=os.getpid(),  # repro: noqa[R010] -- span metadata for trace merging, never in results
                tid=threading.get_ident(),
                depth=self._depth,
                attrs=tuple(sorted(self._attrs.items())),
            )
        )
        self._tracer._exit_depth()


class NullTracer:
    """The default tracer: records nothing, costs (almost) nothing."""

    enabled: bool = False

    def start(self, name: str, /, **attrs: object) -> AbstractSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def drain(self) -> tuple[SpanRecord, ...]:
        """Remove and return collected spans (always empty here)."""
        return ()

    def ingest(self, records: Iterable[SpanRecord]) -> None:
        """Merge externally collected spans (dropped here)."""
        return None


class Tracer(NullTracer):
    """A recording tracer: collects :class:`SpanRecord` objects."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[SpanRecord] = []
        self._local = threading.local()

    def start(self, name: str, /, **attrs: object) -> Span:
        """Create a span; open it with ``with`` (lint rule R030)."""
        return Span(self, name, dict(attrs))

    def drain(self) -> tuple[SpanRecord, ...]:
        """Remove and return every span recorded so far."""
        with self._lock:
            records = tuple(self._records)
            self._records.clear()
        return records

    def ingest(self, records: Iterable[SpanRecord]) -> None:
        """Merge spans collected elsewhere (e.g. by a worker process)."""
        with self._lock:
            self._records.extend(records)

    # Internal hooks used by Span ---------------------------------------

    def _enter_depth(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit_depth(self) -> None:
        self._local.depth = max(0, getattr(self._local, "depth", 1) - 1)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)


#: The process-wide active tracer (module-level rebinding via set_tracer).
_active_tracer: NullTracer = NullTracer()


def get_tracer() -> NullTracer:
    """The active tracer (a no-op :class:`NullTracer` unless enabled)."""
    return _active_tracer


def set_tracer(tracer: NullTracer) -> NullTracer:
    """Install ``tracer`` as the active tracer; returns the previous one."""
    global _active_tracer
    previous = _active_tracer
    _active_tracer = tracer
    return previous


def enable_tracing() -> Tracer:
    """Install a fresh recording tracer and flag worker processes via env.

    Returns the installed tracer.  The environment flag only toggles
    telemetry collection in workers; results are unaffected either way.
    """
    tracer = Tracer()
    set_tracer(tracer)
    os.environ[ENV_TRACE] = "1"
    return tracer


def disable_tracing() -> None:
    """Restore the no-op tracer and clear the worker flag."""
    set_tracer(NullTracer())
    os.environ.pop(ENV_TRACE, None)


def configure_worker() -> None:
    """Pool-worker initializer: fresh tracer + metrics, per REPRO_TRACE.

    Forked workers inherit the parent's tracer records and metric values;
    without this reset their snapshots would double-count parent state.
    """
    from . import metrics

    if os.environ.get(ENV_TRACE):  # repro: noqa[R011,R051] -- telemetry on/off flag for workers, never affects results; worker-root boundary is exactly where config reads belong
        set_tracer(Tracer())
    else:
        set_tracer(NullTracer())
    metrics.registry().reset()
