"""Planner decision audit trail: why each layer got its policy.

Algorithm 1 evaluates every policy in the P1–P5/intra/tiled family (with
and without prefetch) per layer and keeps exactly one.  The audit trail
captures what it saw: every candidate with its capacity check, predicted
off-chip traffic and latency, and the accept/reject reason — including
candidates that never produced a plan because no tiling fit the GLB.

Recording is always on (it is pure bookkeeping over values the planner
computes anyway, and fully deterministic), so a plan explains itself
whether or not tracing was enabled — ``repro explain <model>`` and
:meth:`repro.analyzer.plan.ExecutionPlan.explain` read it back.

This module is pure data: frozen dataclasses plus payload rendering, no
imports from the planner (the planner imports *us*).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CandidateRecord:
    """One (policy, prefetch) instantiation the planner considered."""

    #: Candidate label, e.g. ``"p2+p"`` (Table 4 style).
    label: str
    policy: str
    prefetch: bool
    #: Whether any tiling fit the GLB budget (the Eq. (1)/(2) check).
    feasible: bool
    #: Whether Algorithm 1 (or the inter-layer pass) picked this one.
    chosen: bool
    #: Human-readable accept/reject reason.
    reason: str
    #: GLB residency of the candidate; None when infeasible.
    memory_bytes: int | None = None
    #: Predicted off-chip traffic; None when infeasible.
    accesses_bytes: int | None = None
    #: Predicted latency; None when infeasible.
    latency_cycles: float | None = None

    @property
    def status(self) -> str:
        """``chosen`` / ``rejected`` / ``infeasible``."""
        if self.chosen:
            return "chosen"
        return "rejected" if self.feasible else "infeasible"


@dataclass(frozen=True)
class LayerDecision:
    """All candidates of one layer, exactly one of them chosen."""

    index: int
    layer: str
    candidates: tuple[CandidateRecord, ...]

    @property
    def chosen(self) -> CandidateRecord | None:
        """The accepted candidate (None only for malformed trails)."""
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        return None

    @property
    def rejected(self) -> tuple[CandidateRecord, ...]:
        """Every candidate that was not accepted (incl. infeasible ones)."""
        return tuple(c for c in self.candidates if not c.chosen)


@dataclass(frozen=True)
class DecisionTrail:
    """The full audit of one planning run."""

    scheme: str
    objective: str
    glb_bytes: int
    layers: tuple[LayerDecision, ...]
    notes: tuple[str, ...] = ()

    def with_note(self, note: str) -> "DecisionTrail":
        """A copy of the trail with ``note`` appended."""
        return replace(self, notes=self.notes + (note,))

    def to_payload(self) -> dict[str, object]:
        """JSON-safe rendering (``repro explain --format json``)."""
        return {
            "scheme": self.scheme,
            "objective": self.objective,
            "glb_bytes": self.glb_bytes,
            "notes": list(self.notes),
            "layers": [
                {
                    "index": decision.index,
                    "layer": decision.layer,
                    "candidates": [
                        {
                            "label": c.label,
                            "policy": c.policy,
                            "prefetch": c.prefetch,
                            "feasible": c.feasible,
                            "chosen": c.chosen,
                            "status": c.status,
                            "reason": c.reason,
                            "memory_bytes": c.memory_bytes,
                            "accesses_bytes": c.accesses_bytes,
                            "latency_cycles": c.latency_cycles,
                        }
                        for c in decision.candidates
                    ],
                }
                for decision in self.layers
            ],
        }


@dataclass
class TrailBuilder:
    """Mutable accumulator the planner fills while Algorithm 1 runs."""

    scheme: str
    objective: str
    glb_bytes: int
    layers: list[LayerDecision] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_layer(
        self, index: int, layer: str, candidates: list[CandidateRecord]
    ) -> None:
        """Record one layer's full candidate set."""
        self.layers.append(
            LayerDecision(index=index, layer=layer, candidates=tuple(candidates))
        )

    def note(self, text: str) -> None:
        """Append a trail-level note (e.g. inter-layer pass summary)."""
        self.notes.append(text)

    def rechoose(self, index: int, label: str, reason: str) -> None:
        """Move layer ``index``'s chosen flag to candidate ``label``.

        Used when the inter-layer DP overrides Algorithm 1's per-layer
        pick; the original winner keeps a reason explaining the override.
        """
        for pos, decision in enumerate(self.layers):
            if decision.index != index:
                continue
            updated: list[CandidateRecord] = []
            for candidate in decision.candidates:
                if candidate.label == label:
                    updated.append(replace(candidate, chosen=True, reason=reason))
                elif candidate.chosen:
                    updated.append(
                        replace(
                            candidate,
                            chosen=False,
                            reason="Algorithm 1 pick, overridden by inter-layer DP",
                        )
                    )
                else:
                    updated.append(candidate)
            self.layers[pos] = replace(decision, candidates=tuple(updated))
            return

    def build(self) -> DecisionTrail:
        """Freeze the accumulated decisions into a :class:`DecisionTrail`."""
        return DecisionTrail(
            scheme=self.scheme,
            objective=self.objective,
            glb_bytes=self.glb_bytes,
            layers=tuple(self.layers),
            notes=tuple(self.notes),
        )
