"""Telemetry exporters: Chrome ``trace_event`` JSON + metrics payload.

The on-disk format is the ``repro-telemetry/1`` schema (validated by
:func:`repro.report.diagnostics.validate_telemetry_payload`): a JSON
object whose ``traceEvents`` array follows the Chrome ``trace_event``
format — Perfetto and ``chrome://tracing`` load the file directly,
extra top-level keys (``schema``, ``metrics``, ``meta``) are ignored by
both — and whose ``metrics`` object is a
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`.

Spans become ``"X"`` (complete) events with microsecond timestamps
normalized so the earliest span starts at 0; one ``"M"`` (metadata)
event per process names it for the viewer's process rail.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import Snapshot
from .tracer import SpanRecord

#: Schema identifier stamped into every exported telemetry payload.
TELEMETRY_SCHEMA = "repro-telemetry/1"


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def chrome_trace_events(spans: Sequence[SpanRecord]) -> list[dict[str, object]]:
    """Render spans as Chrome ``trace_event`` dicts (``X`` + ``M`` events)."""
    events: list[dict[str, object]] = []
    if not spans:
        return events
    origin_ns = min(span.start_ns for span in spans)
    for pid in sorted({span.pid for span in spans}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro"},
            }
        )
    for span in sorted(spans, key=lambda s: (s.pid, s.tid, s.start_ns)):
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": (span.start_ns - origin_ns) / 1000.0,
                "dur": span.duration_ns / 1000.0,
                "pid": span.pid,
                "tid": span.tid,
                "args": {key: _json_safe(value) for key, value in span.attrs},
            }
        )
    return events


def telemetry_payload(
    spans: Sequence[SpanRecord],
    metrics_snapshot: Snapshot,
    meta: dict[str, str] | None = None,
) -> dict[str, object]:
    """Build a complete ``repro-telemetry/1`` payload."""
    return {
        "schema": TELEMETRY_SCHEMA,
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(spans),
        "metrics": metrics_snapshot,
        "meta": dict(meta or {}),
    }


def write_trace(path: str | Path, payload: dict[str, object]) -> Path:
    """Write a telemetry payload to ``path`` as pretty-printed JSON."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target


def merge_span_batches(
    batches: Iterable[Sequence[SpanRecord]],
) -> tuple[SpanRecord, ...]:
    """Flatten per-worker span batches into one stream (stable order)."""
    merged: list[SpanRecord] = []
    for batch in batches:
        merged.extend(batch)
    return tuple(merged)
