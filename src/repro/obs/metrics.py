"""Named counters, gauges and histograms with enforced unit suffixes.

Every metric name must end in a unit suffix (``_bytes``, ``_elems``,
``_cycles``, ``_count``, ``_ns``, ``_seconds``, ``_ratio``, ``_bits``) —
the same convention the R001 unit lint applies to variables, enforced
here at registration time and statically by lint rule R031.

The registry is per-process; worker processes reset theirs at pool entry
(:func:`repro.obs.tracer.configure_worker`) and return
:meth:`MetricsRegistry.snapshot` dicts, which the engine merges with
:meth:`MetricsRegistry.merge` — counters add, gauges last-write-wins,
histograms pool their moments.
"""

from __future__ import annotations

import threading

#: Accepted metric-name unit suffixes (shared with lint rule R031).
UNIT_SUFFIXES: tuple[str, ...] = (
    "_bytes",
    "_bits",
    "_elems",
    "_cycles",
    "_count",
    "_ns",
    "_seconds",
    "_ratio",
)


def has_unit_suffix(name: str) -> bool:
    """Whether a metric name carries one of the accepted unit suffixes."""
    return name.endswith(UNIT_SUFFIXES)


def _check_name(name: str) -> str:
    if not has_unit_suffix(name):
        raise ValueError(
            f"metric name {name!r} lacks a unit suffix (one of {', '.join(UNIT_SUFFIXES)})"
        )
    return name


class Counter:
    """A monotonically increasing value (thread-safe).

    Handler threads all bump the same instrument, so the increment —
    a read-modify-write on a float — takes a per-instrument lock.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def add(self, amount: int | float = 1) -> None:
        """Increase the counter (negative amounts are rejected)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins; thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: int | float) -> None:
        """Record the current value."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Streaming distribution summary: count / sum / min / max.

    Thread-safe: observations and snapshot merges mutate several fields
    that must stay mutually consistent, so both take the instrument lock.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = 0.0
        self.max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: int | float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            if self.count == 0:
                self.min = self.max = value
            else:
                self.min = min(self.min, value)
                self.max = max(self.max, value)
            self.count += 1
            self.total += value

    def merge_summary(self, summary: dict[str, float]) -> None:
        """Pool another histogram's summary into this one."""
        with self._lock:
            if self.count == 0:
                self.min = summary["min"]
                self.max = summary["max"]
            else:
                self.min = min(self.min, summary["min"])
                self.max = max(self.max, summary["max"])
            self.count += int(summary["count"])
            self.total += summary["sum"]

    def summary(self) -> dict[str, float]:
        """The distribution summary as a plain dict."""
        with self._lock:
            return {
                "count": float(self.count),
                "sum": self.total,
                "min": self.min,
                "max": self.max,
            }


#: Shape of :meth:`MetricsRegistry.snapshot` — picklable, JSON-safe.
Snapshot = dict[str, dict[str, float] | dict[str, dict[str, float]]]


class MetricsRegistry:
    """Create-or-get registry of named instruments (thread-safe)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(_check_name(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(_check_name(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created on first use."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(_check_name(name))
        return instrument

    def snapshot(self) -> Snapshot:
        """All current values as a plain (picklable, JSON-safe) dict."""
        with self._lock:
            counters = {name: c.value for name, c in sorted(self._counters.items())}
            gauges = {name: g.value for name, g in sorted(self._gauges.items())}
            histograms = {
                name: h.summary() for name, h in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: Snapshot) -> None:
        """Fold another registry's snapshot into this one.

        Counters accumulate, gauges take the incoming value, histograms
        pool count/sum and widen min/max.
        """
        for name, value in snapshot.get("counters", {}).items():
            assert isinstance(value, float)
            self.counter(name).add(value)
        for name, value in snapshot.get("gauges", {}).items():
            assert isinstance(value, float)
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            assert isinstance(summary, dict)
            if not summary.get("count"):
                continue
            self.histogram(name).merge_summary(summary)

    def reset(self) -> None:
        """Drop every instrument (used by tests and worker initializers)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


def diff_snapshots(before: Snapshot, after: Snapshot) -> Snapshot:
    """``after`` minus ``before``: the metrics delta of a code window.

    Counters and histogram count/sum subtract; gauges and histogram
    min/max take the ``after`` value (a gauge is a point-in-time reading,
    and a histogram's extrema are not invertible — documented
    approximation, exact whenever ``before`` is empty, as it is in
    freshly initialized worker processes).
    """
    def _flat(snapshot: Snapshot, section: str) -> dict[str, float]:
        values = snapshot.get(section, {})
        return {k: v for k, v in values.items() if isinstance(v, float)}

    def _nested(snapshot: Snapshot, section: str) -> dict[str, dict[str, float]]:
        values = snapshot.get(section, {})
        return {k: v for k, v in values.items() if isinstance(v, dict)}

    counters_before = _flat(before, "counters")
    counters = {
        name: value - counters_before.get(name, 0.0)
        for name, value in _flat(after, "counters").items()
        if value - counters_before.get(name, 0.0) != 0.0
    }
    gauges = dict(_flat(after, "gauges"))
    histograms: dict[str, dict[str, float]] = {}
    hists_before = _nested(before, "histograms")
    for name, summary in _nested(after, "histograms").items():
        prior = hists_before.get(name, {})
        count = summary["count"] - prior.get("count", 0.0)
        if count <= 0:
            continue
        histograms[name] = {
            "count": count,
            "sum": summary["sum"] - prior.get("sum", 0.0),
            "min": summary["min"],
            "max": summary["max"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


#: The process-wide registry (workers reset theirs at pool entry).
_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry
