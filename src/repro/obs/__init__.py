"""Zero-dependency telemetry: tracing, metrics, audit trail, exporters.

Public surface:

* :mod:`~repro.obs.clock` — the one monotonic clock every timing uses
  (monkeypatch ``repro.obs.clock.monotonic_ns`` in tests).
* :func:`get_tracer` / :func:`enable_tracing` / :func:`disable_tracing`
  — structured spans, no-op by default (free hot path).
* :func:`metrics_registry` — process-wide counters/gauges/histograms
  with enforced unit-suffix names.
* :mod:`~repro.obs.audit` — the planner decision audit trail behind
  ``repro explain``.
* :mod:`~repro.obs.export` — Chrome ``trace_event`` / telemetry-payload
  rendering.

Nothing in this package imports from the rest of :mod:`repro`, so every
subsystem may instrument itself without creating import cycles.
"""

from __future__ import annotations

from . import audit, clock, export
from .metrics import MetricsRegistry, Snapshot, diff_snapshots, has_unit_suffix
from .metrics import registry as metrics_registry
from .tracer import (
    ENV_TRACE,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
    configure_worker,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    "ENV_TRACE",
    "MetricsRegistry",
    "NullTracer",
    "Snapshot",
    "Span",
    "SpanRecord",
    "Tracer",
    "audit",
    "clock",
    "configure_worker",
    "diff_snapshots",
    "disable_tracing",
    "enable_tracing",
    "export",
    "get_tracer",
    "has_unit_suffix",
    "metrics_registry",
    "set_tracer",
]
