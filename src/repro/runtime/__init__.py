"""Multi-tenant runtime scheduling (extension)."""

from .scheduler import (
    Discipline,
    Request,
    RequestOutcome,
    ScheduleResult,
    schedule,
)

__all__ = ["Discipline", "Request", "RequestOutcome", "ScheduleResult", "schedule"]
