"""Layer-granularity multi-tenant scheduling (extension).

The paper motivates flexible memory management with multi-tenancy but
evaluates single models.  This module adds the missing runtime layer: a
scheduler that time-multiplexes one accelerator between concurrent
inference requests at layer granularity, using each model's execution
plan for per-layer latency and traffic.

Two disciplines:

* **FCFS** — requests run to completion in arrival order (minimal
  switching, worst tail latency for short jobs behind long ones);
* **round-robin** — one layer per tenant per turn (fair progress, but
  every preemption between an inter-layer-reuse producer/consumer pair
  *breaks the donation*: the ofmap must spill after all and the ifmap
  reload returns, which the scheduler charges exactly).

Because the unified scratchpad is software-managed per layer, context
switches carry no other state: the next layer's tiles simply stream into
the buffer.  That is precisely the adaptability argument of the paper's
introduction, and the scheduler quantifies its cost side.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..analyzer.plan import ExecutionPlan, make_assignment


class Discipline(enum.Enum):
    """Scheduling discipline for concurrent requests."""

    FCFS = "fcfs"
    ROUND_ROBIN = "round_robin"


@dataclass(frozen=True)
class Request:
    """One inference request."""

    name: str
    plan: ExecutionPlan
    arrival_cycle: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_cycle < 0:
            raise ValueError("arrival_cycle must be non-negative")


@dataclass(frozen=True)
class RequestOutcome:
    """Scheduling outcome of one request."""

    name: str
    arrival_cycle: float
    start_cycle: float
    completion_cycle: float
    accesses_bytes: int
    broken_donations: int

    @property
    def turnaround_cycles(self) -> float:
        return self.completion_cycle - self.arrival_cycle


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a whole multi-tenant schedule."""

    discipline: Discipline
    outcomes: tuple[RequestOutcome, ...]
    makespan_cycles: float

    @property
    def mean_turnaround_cycles(self) -> float:
        return sum(o.turnaround_cycles for o in self.outcomes) / len(self.outcomes)

    @property
    def total_accesses_bytes(self) -> int:
        return sum(o.accesses_bytes for o in self.outcomes)

    @property
    def total_broken_donations(self) -> int:
        return sum(o.broken_donations for o in self.outcomes)


@dataclass
class _Job:
    request: Request
    next_layer: int = 0
    start_cycle: float | None = None
    accesses_bytes: int = 0
    broken_donations: int = 0

    @property
    def done(self) -> bool:
        return self.next_layer >= len(self.request.plan.assignments)


def _layer_cost(
    job: _Job, preempted_since_last_layer: bool
) -> tuple[float, int, bool]:
    """(cycles, bytes, donation_broken) for the job's next layer.

    A preemption between a donating producer and its consumer breaks the
    donation: the producer's saved ofmap write-back happens after all
    (charged here to the consumer's turn, where the breakage is detected)
    and the consumer pays its full ifmap reads.
    """
    plan = job.request.plan
    index = job.next_layer
    assignment = plan.assignments[index]
    if not (assignment.receives and preempted_since_last_layer):
        return assignment.latency_cycles, assignment.accesses_bytes, False
    # Re-materialize the layer without the donated input, and charge the
    # producer's ofmap write-back that the donation had elided.
    producer = plan.assignments[index - 1]
    fallback = make_assignment(
        index,
        assignment.evaluation,
        plan.spec,
        receives=False,
        donates=assignment.donates,
    )
    spill_bytes = (
        producer.evaluation.plan.traffic.ofmap_writes * plan.spec.bytes_per_elem
    )
    spill_cycles = plan.spec.transfer_cycles(spill_bytes)
    return (
        fallback.latency_cycles + spill_cycles,
        fallback.accesses_bytes + spill_bytes,
        True,
    )


def schedule(
    requests: list[Request], discipline: Discipline = Discipline.FCFS
) -> ScheduleResult:
    """Simulate the schedule; returns per-request and aggregate outcomes."""
    if not requests:
        raise ValueError("need at least one request")
    jobs = [_Job(request=r) for r in sorted(requests, key=lambda r: r.arrival_cycle)]
    clock = 0.0
    last_ran: _Job | None = None
    outcomes: dict[str, RequestOutcome] = {}
    names = [j.request.name for j in jobs]
    if len(set(names)) != len(names):
        raise ValueError("request names must be unique")

    def runnable() -> list[_Job]:
        return [j for j in jobs if not j.done and j.request.arrival_cycle <= clock]

    def pending() -> list[_Job]:
        return [j for j in jobs if not j.done]

    rr_cursor = 0
    while pending():
        ready = runnable()
        if not ready:
            clock = min(j.request.arrival_cycle for j in pending())
            continue
        if discipline is Discipline.FCFS:
            job = ready[0]
            layers_to_run = len(job.request.plan.assignments) - job.next_layer
        else:
            rr_cursor %= len(ready)
            job = ready[rr_cursor]
            rr_cursor += 1
            layers_to_run = 1

        for _ in range(layers_to_run):
            preempted = last_ran is not job and job.next_layer > 0
            cycles, nbytes, broken = _layer_cost(job, preempted)
            if job.start_cycle is None:
                job.start_cycle = clock
            clock += cycles
            job.accesses_bytes += nbytes
            job.broken_donations += int(broken)
            job.next_layer += 1
            last_ran = job
        if job.done:
            outcomes[job.request.name] = RequestOutcome(
                name=job.request.name,
                arrival_cycle=job.request.arrival_cycle,
                start_cycle=job.start_cycle or 0.0,
                completion_cycle=clock,
                accesses_bytes=job.accesses_bytes,
                broken_donations=job.broken_donations,
            )

    ordered = tuple(outcomes[j.request.name] for j in jobs)
    return ScheduleResult(
        discipline=discipline, outcomes=ordered, makespan_cycles=clock
    )
