"""Vectorized planner-core primitives shared across layers.

The planner hot path (Algorithm 1 and the tile-search fallback) evaluates
the whole candidate grid of a layer as NumPy arrays and picks winners with
a *stable masked argmin* — the array analogue of Python's ``min()`` over a
feasibility-filtered candidate list, which keeps the earliest-enumerated
candidate on exact key ties.  Both :mod:`repro.policies` and
:mod:`repro.analyzer` need the same selection semantics (and the same
scalar/vectorized mode switch), and neither may import the other, so the
primitives live here at the package root.

``REPRO_SCALAR_PLANNER=1`` re-enables the original pure-Python scalar
path end to end.  It exists as a *parity oracle*: the vectorized path is
required to produce bit-identical plans, audit trails and cache entries,
and the test suite plans the full model zoo under both modes and asserts
byte-identical exports.  The switch therefore never changes any result —
only how fast it is computed.
"""

from __future__ import annotations

import os

import numpy as np
from numpy.typing import NDArray

#: Environment variable selecting the scalar (pure-Python) planner path.
ENV_SCALAR_PLANNER = "REPRO_SCALAR_PLANNER"


def scalar_planner_enabled() -> bool:
    """Whether the scalar parity-oracle path is active.

    Read per planning call so tests can toggle it with ``monkeypatch``;
    the two paths are bit-identical by contract, so this can never change
    a result (plans, audit trails and cache entries all match).
    """
    return bool(os.environ.get(ENV_SCALAR_PLANNER))  # repro: noqa[R011,R051] -- parity-oracle switch between two bit-identical planner implementations; affects speed only, never results or cache payloads


def stable_masked_argmin(
    mask: NDArray[np.bool_], *keys: NDArray[np.generic]
) -> int | None:
    """Index of the lexicographic minimum of ``keys`` where ``mask`` holds.

    The array analogue of ``min(candidates, key=...)`` over the feasible
    subsequence: candidates are compared by ``keys[0]``, ties by
    ``keys[1]``, and so on; remaining exact ties keep the **lowest index**
    (the earliest-enumerated candidate), exactly like Python's stable
    ``min()``.  Returns ``None`` when no candidate is feasible.

    All keys must be 1-D arrays of the same length as ``mask``.  Integer
    and float keys compare exactly (no tolerance), matching the scalar
    planner's tuple comparisons bit for bit.
    """
    alive = np.flatnonzero(mask)
    if alive.size == 0:
        return None
    for key in keys:
        values = key[alive]
        alive = alive[values == values.min()]
        if alive.size == 1:
            break
    return int(alive[0])
