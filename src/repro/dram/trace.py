"""Schedule → DRAM address stream, and per-layer DRAM simulation.

The policies already emit exact per-step load/store schedules
(:class:`~repro.policies.base.LayerSchedule`).  This module lowers one
such schedule to the banked-DRAM access stream the backend consumes:

* each operand tensor gets a row-aligned :class:`~repro.dram.mapping.Region`
  (ifmap at its padded traffic footprint, filters, ofmap), laid out
  contiguously the way a simple allocator would place them;
* a cursor per region turns the per-step chunk sizes into sequential
  addresses — ifmap and filter loads advance (and wrap, for multi-pass
  policies), stores advance the ofmap cursor;
* steps interleave their ifmap / filter / store chunks in issue order,
  which is exactly what creates row-buffer conflicts under mappings that
  let operands share banks.

:func:`dram_effective_bandwidth` reduces the simulated stream to the one
number the latency estimator and the step-level engine consume: delivered
elements per cycle, memoized per (schedule, layer, device) because the
planner evaluates the same candidate schedule several times.
"""

from __future__ import annotations

from functools import lru_cache

from ..nn.layer import LayerSpec
from ..policies.base import LayerSchedule
from .backend import DramAccess, DramStats, simulate_accesses
from .mapping import MappingPolicy, Region, get_mapping
from .spec import DramSpec

#: Region indices of the three operand streams.
IFMAP, FILTERS, OFMAP = 0, 1, 2


def _align_up(value: int, quantum: int) -> int:
    return -(-value // quantum) * quantum


def layer_regions(
    schedule: LayerSchedule,
    layer: LayerSpec,
    bytes_per_elem: int,
    dram: DramSpec,
) -> tuple[Region, ...]:
    """The layer's three operand regions, allocated contiguously.

    Bases are row-aligned (as a page-granular allocator would place them)
    so two operands never share a row block; sizes are the tensors' DRAM
    footprints and ``traffic`` records the bytes the schedule actually
    moves (the reuse-aware mapping weights bank shares by it).
    """
    sizes = (
        layer.ifmap_padded_elems * bytes_per_elem,
        layer.filter_elems * bytes_per_elem,
        layer.ofmap_elems * bytes_per_elem,
    )
    traffics = (
        schedule.total_ifmap_load * bytes_per_elem,
        schedule.total_filter_load * bytes_per_elem,
        schedule.total_store * bytes_per_elem,
    )
    names = ("ifmap", "filters", "ofmap")
    regions = []
    base = 0
    for index, (name, size, traffic) in enumerate(zip(names, sizes, traffics)):
        regions.append(
            Region(name=name, index=index, base=base, size=size, traffic=traffic)
        )
        base += _align_up(size, dram.row_bytes)
    return tuple(regions)


def schedule_accesses(
    schedule: LayerSchedule,
    regions: tuple[Region, ...],
    bytes_per_elem: int,
) -> list[DramAccess]:
    """Lower a streaming schedule to the DRAM request stream it implies."""
    accesses: list[DramAccess] = []
    cursors = [0, 0, 0]
    sizes = [region.size for region in regions]

    def emit(region: int, nbytes: int, write: bool) -> None:
        # Sequential within the region; wraps for multi-pass re-reads.
        remaining = nbytes
        while remaining > 0:
            cursor = cursors[region]
            chunk = min(remaining, sizes[region] - cursor)
            accesses.append(
                DramAccess(region=region, offset=cursor, nbytes=chunk, write=write)
            )
            cursors[region] = (cursor + chunk) % sizes[region]
            remaining -= chunk

    if schedule.resident_ifmap:
        emit(IFMAP, schedule.resident_ifmap * bytes_per_elem, False)
    if schedule.resident_filters:
        emit(FILTERS, schedule.resident_filters * bytes_per_elem, False)
    for group in schedule.groups:
        ifmap_bytes = group.ifmap * bytes_per_elem
        filter_bytes = group.filters * bytes_per_elem
        store_bytes = group.store * bytes_per_elem
        for _ in range(group.count):
            if ifmap_bytes:
                emit(IFMAP, ifmap_bytes, False)
            if filter_bytes:
                emit(FILTERS, filter_bytes, False)
            if store_bytes:
                emit(OFMAP, store_bytes, True)
    return accesses


def simulate_schedule(
    schedule: LayerSchedule,
    layer: LayerSpec,
    bytes_per_elem: int,
    dram: DramSpec,
    mapping: MappingPolicy | str | None = None,
) -> DramStats:
    """Trace-simulate one layer's schedule on the banked DRAM."""
    policy = _resolve_mapping(dram, mapping)
    regions = layer_regions(schedule, layer, bytes_per_elem, dram)
    accesses = schedule_accesses(schedule, regions, bytes_per_elem)
    return simulate_accesses(accesses, regions, dram, policy)


def _resolve_mapping(dram: DramSpec, mapping: MappingPolicy | str | None) -> MappingPolicy:
    if mapping is None:
        return get_mapping(dram.mapping)
    if isinstance(mapping, str):
        return get_mapping(mapping)
    return mapping


@lru_cache(maxsize=65536)
def _effective_bandwidth(
    schedule: LayerSchedule,
    layer: LayerSpec,
    dram: DramSpec,
    bytes_per_elem: int,
    flat_elems_per_cycle: float,
) -> float:
    stats = simulate_schedule(schedule, layer, bytes_per_elem, dram)
    if stats.cycles <= 0.0:
        return flat_elems_per_cycle
    total_elems = stats.total_bytes // bytes_per_elem
    return total_elems / stats.cycles


def dram_effective_bandwidth(
    schedule: LayerSchedule,
    layer: LayerSpec,
    dram: DramSpec,
    bytes_per_elem: int,
    flat_elems_per_cycle: float,
) -> float:
    """Delivered off-chip bandwidth of the schedule, in elements/cycle.

    Runs the trace-driven backend over the schedule's address stream under
    the device's configured mapping policy and averages the delivered rate
    over the whole stream.  Falls back to ``flat_elems_per_cycle`` for
    schedules that move no data.  Memoized: planning evaluates the same
    candidate schedule repeatedly (estimate, assignment, verification).
    """
    return _effective_bandwidth(
        schedule, layer, dram, bytes_per_elem, flat_elems_per_cycle
    )
