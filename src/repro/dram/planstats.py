"""Plan-level DRAM simulation: price a whole execution plan's traffic.

Runs the trace-driven backend over every layer of an
:class:`~repro.analyzer.plan.ExecutionPlan` (donation-transformed, so
inter-layer reuse removes exactly the traffic the analyzer removed) and
aggregates row-buffer statistics, transfer cycles and energy per layer
and for the plan.  This is the engine behind the ``repro dram`` CLI
sweep, the :mod:`repro.experiments.dram_sweep` artifact and the
verifier's DRAM codes.

Analyzer types are imported lazily: the estimator chain imports
:mod:`repro.dram` while the analyzer package is still initializing, so
this module must not import it at module load time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .backend import DramStats, combine_stats
from .mapping import MappingPolicy
from .spec import DramSpec
from .trace import simulate_schedule

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from ..analyzer.plan import ExecutionPlan, LayerAssignment


@dataclass(frozen=True)
class LayerDramResult:
    """DRAM statistics of one layer of a plan."""

    name: str
    policy: str
    stats: DramStats


@dataclass(frozen=True)
class PlanDramResult:
    """DRAM statistics of a whole plan under one mapping policy."""

    mapping: str
    layers: tuple[LayerDramResult, ...]
    total: DramStats

    @property
    def transfer_cycles(self) -> float:
        """Off-chip transfer cycles of the whole plan (layers sequential)."""
        return self.total.cycles

    @property
    def row_hit_rate(self) -> float:
        """Plan-wide fraction of bursts served from an open row."""
        return self.total.row_hit_rate


def assignment_dram_stats(
    assignment: "LayerAssignment",
    bytes_per_elem: int,
    dram: DramSpec,
    mapping: MappingPolicy | str | None = None,
) -> DramStats:
    """Trace-simulate one assignment's donation-transformed schedule."""
    from ..analyzer.plan import transformed_schedule

    schedule = transformed_schedule(
        assignment.evaluation.plan.schedule, assignment.receives, assignment.donates
    )
    return simulate_schedule(
        schedule, assignment.layer, bytes_per_elem, dram, mapping
    )


def simulate_plan_dram(
    plan: "ExecutionPlan",
    dram: DramSpec | None = None,
    mapping: MappingPolicy | str | None = None,
) -> PlanDramResult:
    """Price every layer of a plan through the banked-DRAM backend.

    ``dram`` defaults to the plan's accelerator DRAM spec and must be
    given when the plan was produced with the flat model.  ``mapping``
    overrides the device's configured mapping policy (the sweep calls
    this once per policy on the same plan).
    """
    device = dram if dram is not None else plan.spec.dram
    if device is None:
        raise ValueError(
            "plan has no DramSpec; pass one explicitly or plan with "
            "AcceleratorSpec(dram=...)"
        )
    mapping_name = (
        device.mapping
        if mapping is None
        else (mapping if isinstance(mapping, str) else mapping.name)
    )
    layers = []
    for assignment in plan.assignments:
        stats = assignment_dram_stats(
            assignment, plan.spec.bytes_per_elem, device, mapping
        )
        layers.append(
            LayerDramResult(
                name=assignment.layer.name, policy=assignment.label, stats=stats
            )
        )
    return PlanDramResult(
        mapping=mapping_name,
        layers=tuple(layers),
        total=combine_stats([entry.stats for entry in layers]),
    )
