"""Trace-driven banked-DRAM backend.

The backend consumes a stream of :class:`DramAccess` requests (produced
from a policy's streaming schedule by :mod:`repro.dram.trace`), resolves
each through a mapping policy's :class:`~repro.dram.mapping.AddressLayout`
and replays it against a row-buffer state machine:

* every access is split at row boundaries into *segments* (one
  (channel, bank, row) touch each);
* a segment whose row is already open in its bank proceeds at the bus
  rate (every burst a row hit);
* a segment targeting a different row pays precharge + activate + CAS
  before its first burst (one row *activation*; the remaining bursts of
  the segment are hits);
* requests are queued ahead of time (the schedule is static), so a bank
  can precharge/activate in the shadow of other banks' transfers — bank
  parallelism — while each channel's data bus serializes its transfers.

The result is a :class:`DramStats`: row hits/misses, activations,
occupancy cycles per channel, effective bandwidth and per-component
energy.  By construction ``cycles >= ideal_cycles`` (the flat
peak-bandwidth bound) — the invariant the verifier's ``V018`` code
re-checks for every DRAM-backed plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs import get_tracer, metrics_registry
from .mapping import AddressLayout, MappingPolicy, Region
from .spec import DramSpec


@dataclass(frozen=True)
class DramAccess:
    """One request of the off-chip stream (all bytes of one step chunk)."""

    region: int  #: index into the layer's region tuple
    offset: int  #: byte offset within the region
    nbytes: int  #: request length in bytes
    write: bool = False

    def __post_init__(self) -> None:
        if self.region < 0 or self.offset < 0 or self.nbytes <= 0:
            raise ValueError("invalid DRAM access")


@dataclass(frozen=True)
class DramStats:
    """Row-buffer statistics and timing of one simulated access stream."""

    reads_bytes: int = 0
    writes_bytes: int = 0
    bursts: int = 0
    row_hits: int = 0
    row_misses: int = 0
    activations: int = 0
    cycles: float = 0.0
    ideal_cycles: float = 0.0
    act_energy_pj: float = 0.0
    read_energy_pj: float = 0.0
    write_energy_pj: float = 0.0

    @property
    def total_bytes(self) -> int:
        """Bytes moved in either direction."""
        return self.reads_bytes + self.writes_bytes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of bursts served from an open row."""
        return self.row_hits / self.bursts if self.bursts else 0.0

    @property
    def stall_cycles(self) -> float:
        """Cycles lost versus the zero-overhead peak-bandwidth bound."""
        return max(0.0, self.cycles - self.ideal_cycles)

    @property
    def effective_bytes_per_cycle(self) -> float:
        """Delivered bandwidth over the whole stream."""
        return self.total_bytes / self.cycles if self.cycles else 0.0

    @property
    def energy_pj(self) -> float:
        """Total off-chip energy (activation + read + write)."""
        return self.act_energy_pj + self.read_energy_pj + self.write_energy_pj

    def merged(self, other: "DramStats") -> "DramStats":
        """Aggregate of two sequential streams (cycles add)."""
        return DramStats(
            reads_bytes=self.reads_bytes + other.reads_bytes,
            writes_bytes=self.writes_bytes + other.writes_bytes,
            bursts=self.bursts + other.bursts,
            row_hits=self.row_hits + other.row_hits,
            row_misses=self.row_misses + other.row_misses,
            activations=self.activations + other.activations,
            cycles=self.cycles + other.cycles,
            ideal_cycles=self.ideal_cycles + other.ideal_cycles,
            act_energy_pj=self.act_energy_pj + other.act_energy_pj,
            read_energy_pj=self.read_energy_pj + other.read_energy_pj,
            write_energy_pj=self.write_energy_pj + other.write_energy_pj,
        )


def combine_stats(parts: list[DramStats]) -> DramStats:
    """Aggregate per-layer stats into plan totals (layers run in sequence)."""
    total = DramStats()
    for part in parts:
        total = total.merged(part)
    return total


class _BankState:
    """Open row and readiness time of one DRAM bank."""

    __slots__ = ("open_row", "free_at")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.free_at = 0.0


def simulate_accesses(
    accesses: list[DramAccess] | tuple[DramAccess, ...],
    regions: tuple[Region, ...],
    spec: DramSpec,
    mapping: MappingPolicy,
) -> DramStats:
    """Replay an access stream through the row-buffer state machine."""
    with get_tracer().start(
        "dram_stream", mapping=mapping.name, requests_count=len(accesses)
    ) as span:
        stats = _simulate_accesses(accesses, regions, spec, mapping)
        span.set_attr("row_hits_count", stats.row_hits)
        span.set_attr("row_misses_count", stats.row_misses)
        span.set_attr("total_bytes", stats.total_bytes)
    registry = metrics_registry()
    registry.counter("dram_row_hits_count").add(stats.row_hits)
    registry.counter("dram_row_misses_count").add(stats.row_misses)
    registry.counter("dram_activations_count").add(stats.activations)
    registry.counter("dram_reads_bytes").add(stats.reads_bytes)
    registry.counter("dram_writes_bytes").add(stats.writes_bytes)
    return stats


def _simulate_accesses(
    accesses: list[DramAccess] | tuple[DramAccess, ...],
    regions: tuple[Region, ...],
    spec: DramSpec,
    mapping: MappingPolicy,
) -> DramStats:
    layout: AddressLayout = mapping.layout(spec, regions)
    row_bytes = spec.row_bytes
    burst_bytes = spec.burst_bytes
    bus_rate = spec.channel_bytes_per_cycle

    bus = [0.0] * spec.channels
    banks: dict[tuple[int, int], _BankState] = {}

    reads = writes = bursts = hits = misses = 0

    for access in accesses:
        offset = access.offset
        remaining = access.nbytes
        if access.write:
            writes += access.nbytes
        else:
            reads += access.nbytes
        while remaining > 0:
            seg_bytes = min(remaining, row_bytes - offset % row_bytes)
            channel, bank_idx, row = layout.locate(access.region, offset)
            bank = banks.setdefault((channel, bank_idx), _BankState())
            seg_bursts = -(-seg_bytes // burst_bytes)
            bursts += seg_bursts
            if bank.open_row == row:
                hits += seg_bursts
                start = max(bus[channel], bank.free_at)
            else:
                misses += 1
                hits += seg_bursts - 1
                penalty = spec.row_open_penalty if bank.open_row is None else (
                    spec.row_miss_penalty
                )
                bank.open_row = row
                start = max(bus[channel], bank.free_at + penalty)
            end = start + seg_bytes / bus_rate
            bus[channel] = end
            bank.free_at = end
            offset += seg_bytes
            remaining -= seg_bytes

    total_bytes = reads + writes
    cycles = max(bus) if total_bytes else 0.0
    return DramStats(
        reads_bytes=reads,
        writes_bytes=writes,
        bursts=bursts,
        row_hits=hits,
        row_misses=misses,
        activations=misses,
        cycles=cycles,
        ideal_cycles=total_bytes / spec.peak_bytes_per_cycle,
        act_energy_pj=misses * spec.act_pj,
        read_energy_pj=reads * spec.read_pj_per_byte,
        write_energy_pj=writes * spec.write_pj_per_byte,
    )
