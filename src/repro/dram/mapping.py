"""DRAM data-mapping policies: tensor address → (channel, bank, row).

A mapping policy decides where each byte of each operand tensor lives in
the banked DRAM geometry of a :class:`~repro.dram.spec.DramSpec`.  The
policy determines how often the access stream re-opens rows (row-buffer
misses) and how much channel/bank parallelism it can exploit — DRMap and
PENDRAM show the same byte count can differ by >2× in latency and energy
across mappings.  Three policies are provided:

``row_major``
    Contiguous allocation with channel/bank in the high address bits: a
    tensor fills the rows of one bank before spilling to the next.  All
    operands of a layer land in the same bank of the same channel, so the
    interleaved per-step load/store streams conflict on every switch and
    only one channel is ever busy — the classic untuned baseline.

``bank_interleaved``
    Consecutive row-sized blocks rotate across channels, then banks
    (``Ro-Ba-Ch-Co`` order).  Sequential streams engage every channel and
    bank round-robin, so activations overlap transfers in other banks and
    both buses run in parallel.

``reuse_aware``
    DRMap-style operand-aware placement: the banks of every channel are
    partitioned among the layer's operand tensors proportionally to their
    off-chip traffic (each operand gets at least one bank), and each
    operand row-interleaves across its own partition.  Streams of
    different operands can never evict each other's open rows, so the
    per-step ifmap/filter/ofmap interleaving causes no conflicts at all.

Policies resolve a layer's :class:`Region` list into an
:class:`AddressLayout` once, then the backend queries ``locate`` per
row-block.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from .spec import DramSpec


@dataclass(frozen=True)
class Region:
    """One operand tensor's DRAM allocation.

    Attributes
    ----------
    name:
        Operand name (``"ifmap"``, ``"filters"``, ``"ofmap"``).
    index:
        Position in the layer's region list (stable operand id).
    base:
        Byte address of the region start (row-aligned by the trace
        generator).
    size:
        Region footprint in bytes.
    traffic:
        Total bytes the schedule moves through this region; the
        reuse-aware policy weights its bank partition by this.
    """

    name: str
    index: int
    base: int
    size: int
    traffic: int = 0

    def __post_init__(self) -> None:
        if self.index < 0 or self.base < 0 or self.size <= 0 or self.traffic < 0:
            raise ValueError(f"region {self.name!r}: invalid geometry")


class AddressLayout(abc.ABC):
    """A resolved placement: (region, byte offset) → (channel, bank, row)."""

    @abc.abstractmethod
    def locate(self, region_index: int, offset: int) -> tuple[int, int, int]:
        """DRAM coordinates of the row-block containing ``offset``."""


class MappingPolicy(abc.ABC):
    """A DRAM data-mapping policy (one of the module's three families)."""

    #: Stable identifier used in specs, CLI flags and report tables.
    name: str = ""

    @abc.abstractmethod
    def layout(self, spec: DramSpec, regions: tuple[Region, ...]) -> AddressLayout:
        """Resolve the regions of one layer into an address layout."""


class _RowMajorLayout(AddressLayout):
    """Contiguous layout: row fastest, then bank, then channel."""

    def __init__(self, spec: DramSpec, regions: tuple[Region, ...]) -> None:
        self._spec = spec
        self._regions = regions

    def locate(self, region_index: int, offset: int) -> tuple[int, int, int]:
        spec = self._spec
        block = (self._regions[region_index].base + offset) // spec.row_bytes
        row = block % spec.rows_per_bank
        rest = block // spec.rows_per_bank
        bank = rest % spec.banks_per_channel
        channel = (rest // spec.banks_per_channel) % spec.channels
        return channel, bank, row


class RowMajorMapping(MappingPolicy):
    """Baseline contiguous allocation (channel/bank in the high bits)."""

    name = "row_major"

    def layout(self, spec: DramSpec, regions: tuple[Region, ...]) -> AddressLayout:
        """Resolve the regions of one layer into an address layout."""
        return _RowMajorLayout(spec, regions)


class _BankInterleavedLayout(AddressLayout):
    """Row-block round-robin across channels, then banks."""

    def __init__(self, spec: DramSpec, regions: tuple[Region, ...]) -> None:
        self._spec = spec
        self._regions = regions

    def locate(self, region_index: int, offset: int) -> tuple[int, int, int]:
        spec = self._spec
        block = (self._regions[region_index].base + offset) // spec.row_bytes
        channel = block % spec.channels
        bank = (block // spec.channels) % spec.banks_per_channel
        row = (block // (spec.channels * spec.banks_per_channel)) % spec.rows_per_bank
        return channel, bank, row


class BankInterleavedMapping(MappingPolicy):
    """Row-block interleaving across channels and banks."""

    name = "bank_interleaved"

    def layout(self, spec: DramSpec, regions: tuple[Region, ...]) -> AddressLayout:
        """Resolve the regions of one layer into an address layout."""
        return _BankInterleavedLayout(spec, regions)


def partition_banks(
    banks: int, weights: tuple[int, ...]
) -> tuple[tuple[int, int], ...]:
    """Split ``banks`` into per-region (start, count) shares by weight.

    Every region receives at least one bank when ``banks >= len(weights)``;
    the remainder is distributed by largest weight (ties to the earlier
    region, keeping the split deterministic).  With more regions than
    banks, regions wrap around and share banks round-robin.
    """
    n = len(weights)
    if n == 0:
        raise ValueError("at least one region is required")
    if banks < n:
        return tuple((i % banks, 1) for i in range(n))
    counts = [1] * n
    spare = banks - n
    total = sum(weights)
    if total > 0 and spare > 0:
        exact = [spare * w / total for w in weights]
        floors = [int(e) for e in exact]
        for i, f in enumerate(floors):
            counts[i] += f
        leftover = spare - sum(floors)
        order = sorted(range(n), key=lambda i: (-(exact[i] - floors[i]), i))
        for i in order[:leftover]:
            counts[i] += 1
    elif spare > 0:
        for i in range(spare):
            counts[i % n] += 1
    starts: list[tuple[int, int]] = []
    cursor = 0
    for count in counts:
        starts.append((cursor, count))
        cursor += count
    return tuple(starts)


class _ReuseAwareLayout(AddressLayout):
    """Per-operand bank partitions, row-interleaved within each partition."""

    def __init__(self, spec: DramSpec, regions: tuple[Region, ...]) -> None:
        self._spec = spec
        weights = tuple(r.traffic if r.traffic > 0 else r.size for r in regions)
        self._shares = partition_banks(spec.banks_per_channel, weights)

    def locate(self, region_index: int, offset: int) -> tuple[int, int, int]:
        spec = self._spec
        start, count = self._shares[region_index]
        block = offset // spec.row_bytes
        channel = block % spec.channels
        k = block // spec.channels
        bank = start + k % count
        row = (k // count) % spec.rows_per_bank
        return channel, bank, row


class ReuseAwareMapping(MappingPolicy):
    """DRMap-style placement: operands get traffic-weighted bank partitions."""

    name = "reuse_aware"

    def layout(self, spec: DramSpec, regions: tuple[Region, ...]) -> AddressLayout:
        """Resolve the regions of one layer into an address layout."""
        return _ReuseAwareLayout(spec, regions)


#: name → policy instance, in presentation order (baseline first).
MAPPING_POLICIES: dict[str, MappingPolicy] = {
    policy.name: policy
    for policy in (RowMajorMapping(), BankInterleavedMapping(), ReuseAwareMapping())
}

#: All mapping-policy names, in presentation order.
MAPPING_NAMES: tuple[str, ...] = tuple(MAPPING_POLICIES)


def get_mapping(name: str) -> MappingPolicy:
    """Look up a mapping policy by name (raises ``KeyError`` on unknown)."""
    try:
        return MAPPING_POLICIES[name]
    except KeyError:
        raise KeyError(
            f"unknown DRAM mapping {name!r}; available: {', '.join(MAPPING_NAMES)}"
        ) from None
