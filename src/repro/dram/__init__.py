"""Banked DRAM model: row-buffer-aware off-chip traffic and timing.

The paper (and the rest of this library by default) prices off-chip
traffic with a flat bandwidth constant.  This subsystem models what that
constant abstracts away: a :class:`DramSpec` describes a banked device
(channels, banks, rows, tRCD/tRP/tCAS timing, per-operation energy),
pluggable :mod:`mapping <repro.dram.mapping>` policies place each operand
tensor's bytes onto (channel, bank, row) coordinates, and a trace-driven
:mod:`backend <repro.dram.backend>` replays the per-step load/store
schedules the policies already emit, returning row hits/misses,
activation counts, effective bandwidth, stall cycles and energy.

The flat model remains the default everywhere: only an
:class:`~repro.arch.AcceleratorSpec` constructed with ``dram=DramSpec(...)``
switches the latency estimator and the step-level engine to the
backend's effective bandwidth, so all paper artifacts are unchanged.
See ``docs/dram.md``.
"""

from .backend import DramAccess, DramStats, combine_stats, simulate_accesses
from .mapping import (
    MAPPING_NAMES,
    MAPPING_POLICIES,
    AddressLayout,
    BankInterleavedMapping,
    MappingPolicy,
    Region,
    ReuseAwareMapping,
    RowMajorMapping,
    get_mapping,
    partition_banks,
)
from .planstats import (
    LayerDramResult,
    PlanDramResult,
    assignment_dram_stats,
    simulate_plan_dram,
)
from .spec import DEFAULT_DDR4_SPEC, KNOWN_MAPPINGS, DramSpec
from .trace import (
    dram_effective_bandwidth,
    layer_regions,
    schedule_accesses,
    simulate_schedule,
)

__all__ = [
    "DramSpec",
    "DEFAULT_DDR4_SPEC",
    "KNOWN_MAPPINGS",
    "DramAccess",
    "DramStats",
    "combine_stats",
    "simulate_accesses",
    "MappingPolicy",
    "AddressLayout",
    "Region",
    "RowMajorMapping",
    "BankInterleavedMapping",
    "ReuseAwareMapping",
    "MAPPING_POLICIES",
    "MAPPING_NAMES",
    "get_mapping",
    "partition_banks",
    "layer_regions",
    "schedule_accesses",
    "simulate_schedule",
    "dram_effective_bandwidth",
    "LayerDramResult",
    "PlanDramResult",
    "assignment_dram_stats",
    "simulate_plan_dram",
]
