"""Banked DRAM device specification.

The paper converts off-chip access counts to cycles with a single flat
bandwidth constant (16 elements/cycle, §4).  Real DRAM does not deliver a
flat rate: each bank buffers one open *row* (page), a hit in the open row
streams at the bus rate while a miss costs a precharge + activate round
trip, and channels/banks provide parallelism that a mapping policy may or
may not exploit (DRMap, PENDRAM).  :class:`DramSpec` captures the handful
of parameters this model needs — geometry (channels, banks, rows), timing
(tRCD/tRP/tCAS in accelerator cycles) and per-operation energy — so the
trace-driven backend in :mod:`repro.dram.backend` can price a plan's
actual address stream instead of a byte count.

The default spec is DDR4-2400-like, scaled to the paper's accelerator
clock, and its **peak** bandwidth (``channels × channel_bytes_per_cycle``)
equals the paper's flat 16 bytes/cycle — so the flat model is exactly the
idealized, zero-overhead limit of this one, and DRAM-aware latencies are
lower-bounded by the paper's numbers (verifier code ``V018``).

This module is deliberately near-leaf-level: it imports only the
:mod:`repro.arch.bounds` constants (themselves leaf-level) so that
:mod:`repro.arch.spec` can reference it without an import cycle, and so
that the capacity ceiling it validates is the same one the R070 overflow
prover assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.bounds import MAX_DRAM_CAPACITY_BYTES

#: Mapping-policy names accepted by :attr:`DramSpec.mapping`
#: (mirrored by :data:`repro.dram.mapping.MAPPING_NAMES`; kept here so the
#: spec can validate without importing the policy classes).
KNOWN_MAPPINGS = ("row_major", "bank_interleaved", "reuse_aware")


@dataclass(frozen=True)
class DramSpec:
    """Static description of the off-chip DRAM behind the accelerator.

    Attributes
    ----------
    channels:
        Independent channels, each with its own data bus and banks.
    banks_per_channel:
        Banks per channel; each bank holds one open row at a time.
    rows_per_bank:
        Rows per bank (fixes the capacity and the row-major layout).
    row_bytes:
        Bytes per row (the row-buffer/page size).
    burst_bytes:
        Bytes one burst transfers; row hit/miss statistics are counted at
        burst granularity.
    channel_bytes_per_cycle:
        Data-bus throughput of one channel, in bytes per accelerator
        cycle.  ``channels × channel_bytes_per_cycle`` is the peak
        bandwidth; the default matches the paper's flat 16 bytes/cycle.
    t_rcd, t_rp, t_cas:
        Activate (RAS-to-CAS), precharge and CAS latencies, in accelerator
        cycles.
    mapping:
        Name of the default data-mapping policy
        (:data:`repro.dram.mapping.MAPPING_POLICIES`).
    act_pj:
        Energy of one row activation + precharge pair, in picojoules.
    read_pj_per_byte, write_pj_per_byte:
        Burst transfer energy per byte read/written.
    """

    channels: int = 2
    banks_per_channel: int = 8
    rows_per_bank: int = 32768
    row_bytes: int = 2048
    burst_bytes: int = 64
    channel_bytes_per_cycle: int = 8
    t_rcd: int = 14
    t_rp: int = 14
    t_cas: int = 14
    mapping: str = "bank_interleaved"
    act_pj: float = 1500.0
    read_pj_per_byte: float = 120.0
    write_pj_per_byte: float = 130.0

    def __post_init__(self) -> None:
        problems: list[str] = []
        for name in (
            "channels",
            "banks_per_channel",
            "rows_per_bank",
            "row_bytes",
            "burst_bytes",
            "channel_bytes_per_cycle",
        ):
            if getattr(self, name) <= 0:
                problems.append(f"{name} must be positive, got {getattr(self, name)}")
        for name in ("t_rcd", "t_rp", "t_cas"):
            if getattr(self, name) < 0:
                problems.append(f"{name} must be non-negative, got {getattr(self, name)}")
        for name in ("act_pj", "read_pj_per_byte", "write_pj_per_byte"):
            if getattr(self, name) < 0:
                problems.append(f"{name} must be non-negative, got {getattr(self, name)}")
        if self.burst_bytes > 0 and self.row_bytes > 0 and self.row_bytes % self.burst_bytes:
            problems.append(
                f"row_bytes ({self.row_bytes}) must be a multiple of "
                f"burst_bytes ({self.burst_bytes})"
            )
        if self.mapping not in KNOWN_MAPPINGS:
            problems.append(
                f"mapping must be one of {', '.join(KNOWN_MAPPINGS)}, got {self.mapping!r}"
            )
        # The supported-spec-space ceiling (repro.arch.bounds): the R070
        # overflow prover assumes capacities below it, and address
        # arithmetic in the trace backend is only proven inside it.
        capacity = (
            self.channels
            * self.banks_per_channel
            * self.rows_per_bank
            * self.row_bytes
        )
        if capacity > MAX_DRAM_CAPACITY_BYTES:
            problems.append(
                f"device capacity must be at most {MAX_DRAM_CAPACITY_BYTES} "
                f"bytes, got {capacity}"
            )
        if problems:
            raise ValueError("invalid DramSpec: " + "; ".join(problems))

    # Derived geometry ---------------------------------------------------

    @property
    def total_banks(self) -> int:
        """Banks across all channels."""
        return self.channels * self.banks_per_channel

    @property
    def bank_bytes(self) -> int:
        """Capacity of one bank."""
        return self.rows_per_bank * self.row_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity."""
        return self.total_banks * self.bank_bytes

    @property
    def peak_bytes_per_cycle(self) -> float:
        """Zero-overhead (all channels busy, all hits) bandwidth."""
        return float(self.channels * self.channel_bytes_per_cycle)

    # Derived timing -----------------------------------------------------

    @property
    def row_miss_penalty(self) -> int:
        """Extra cycles of a row-buffer conflict (precharge + activate + CAS)."""
        return self.t_rp + self.t_rcd + self.t_cas

    @property
    def row_open_penalty(self) -> int:
        """Extra cycles of the first access to an idle (closed) bank."""
        return self.t_rcd + self.t_cas

    def transfer_cycles(self, nbytes: int) -> float:
        """Data-bus occupancy of ``nbytes`` on one channel (no overheads)."""
        if nbytes < 0:
            raise ValueError("transfer size must be non-negative")
        return nbytes / self.channel_bytes_per_cycle


#: The bundled DDR4-like reference device (see module docstring).
DEFAULT_DDR4_SPEC = DramSpec()
