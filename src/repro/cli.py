"""Command-line interface.

Usage::

    python -m repro models                         # list the zoo
    python -m repro inspect ResNet18               # per-layer shapes/footprints
    python -m repro plan ResNet18 --glb 64         # Het plan + summary
    python -m repro plan model.json --objective latency --export plan.json
    python -m repro baseline ResNet18 --glb 64     # the three sa_* baselines
    python -m repro compare ResNet18 --glb 64      # plan vs baselines
    python -m repro sweep ResNet18 --glb 64,128,256,512,1024
    python -m repro dram ResNet18 --glb 256        # DRAM mapping-policy sweep
    python -m repro experiments fig5 table3        # regenerate paper artifacts
    python -m repro verify --all --format json     # V0xx plan invariants
    python -m repro lint src/repro --strict        # R0xx source lint
    python -m repro serve --port 8077 --jobs 2     # planning-as-a-service daemon
    python -m repro cache stats                    # shared plan-cache stats
    python -m repro bench serve --clients 4        # daemon load generator

Model arguments accept either a zoo name or a path to a JSON model
description (the Fig. 4 input format, see ``repro.nn.io``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from .analyzer import Objective, save_plan
from .arch.spec import PAPER_GLB_SIZES, AcceleratorSpec
from .arch.units import kib, to_kib, to_mib
from .energy import plan_energy
from .manager import MemoryManager
from .nn.io import load_model
from .nn.model import Model
from .nn.stats import layer_breakdown
from .nn.zoo import PAPER_MODEL_NAMES, get_model
from .report.table import Table


def _resolve_model(name_or_path: str) -> Model:
    """Load a model by zoo name or JSON file path."""
    if name_or_path in PAPER_MODEL_NAMES:
        return get_model(name_or_path)
    path = Path(name_or_path)
    if path.exists():
        return load_model(path)
    raise SystemExit(
        f"error: {name_or_path!r} is neither a zoo model "
        f"({', '.join(PAPER_MODEL_NAMES)}) nor an existing file"
    )


def _parse_glb_list(text: str) -> list[int]:
    """Parse a ``64,128,256`` kB list into byte sizes."""
    try:
        sizes = [kib(int(s)) for s in text.split(",")]
    except ValueError:
        raise SystemExit(
            f"error: --glb-list must be comma-separated kB integers, got {text!r}"
        ) from None
    if not sizes or any(size <= 0 for size in sizes):
        raise SystemExit(f"error: --glb-list sizes must be positive, got {text!r}")
    return sizes


def _spec_from_args(args: argparse.Namespace) -> AcceleratorSpec:
    return AcceleratorSpec(
        glb_bytes=kib(args.glb),
        data_width_bits=args.width,
        ops_per_cycle=args.ops,
        dram_bandwidth_elems_per_cycle=args.bandwidth,
    )


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--glb", type=int, default=64, help="GLB size in kB (default 64)")
    parser.add_argument("--width", type=int, default=8, help="data width in bits")
    parser.add_argument("--ops", type=int, default=512, help="operations per cycle")
    parser.add_argument(
        "--bandwidth", type=float, default=16.0, help="DRAM elements per cycle"
    )


def cmd_models(args: argparse.Namespace) -> int:
    """List the model zoo with parameter/MAC totals."""
    table = Table(title="Model zoo (Table 2)", headers=["Name", "Layers", "GMACs", "Weights (M)"])
    for name in PAPER_MODEL_NAMES:
        model = get_model(name)
        table.add_row(
            name,
            model.num_layers,
            round(model.total_macs / 1e9, 2),
            round(model.total_weight_elems / 1e6, 2),
        )
    print(table.render())
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Per-layer shapes and memory footprints of a model."""
    model = _resolve_model(args.model)
    spec = _spec_from_args(args)
    table = Table(
        title=f"{model.name}: {model.num_layers} layers",
        headers=["Layer", "Kind", "Input", "Output", "ifmap kB", "filter kB", "ofmap kB"],
    )
    for layer in model.layers:
        b = layer_breakdown(layer, spec)
        table.add_row(
            layer.name,
            layer.kind.value,
            f"{layer.in_h}x{layer.in_w}x{layer.in_c}",
            f"{layer.out_h}x{layer.out_w}x{layer.out_c}",
            round(to_kib(b.ifmap_bytes), 1),
            round(to_kib(b.filter_bytes), 1),
            round(to_kib(b.ofmap_bytes), 1),
        )
    print(table.render())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Produce, summarize and optionally export an execution plan."""
    model = _resolve_model(args.model)
    spec = _spec_from_args(args)
    manager = MemoryManager(spec)
    plan = manager.plan(
        model,
        Objective(args.objective),
        scheme=args.scheme,
        interlayer=args.interlayer,
    )
    table = Table(
        title=f"{model.name} @ {args.glb} kB — {plan.scheme}, objective={args.objective}",
        headers=["Layer", "Policy", "Mem kB", "Accesses kB", "Latency (cyc)", "IL"],
    )
    for a in plan:
        flags = ("r" if a.receives else "") + ("d" if a.donates else "")
        table.add_row(
            a.layer.name,
            a.label,
            round(to_kib(a.memory_bytes), 1),
            round(to_kib(a.accesses_bytes), 1),
            int(a.latency_cycles),
            flags or "-",
        )
    print(table.render())
    energy = plan_energy(plan)
    print(
        f"\ntotals: {to_mib(plan.total_accesses_bytes):.2f} MB off-chip, "
        f"{plan.total_latency_cycles:,.0f} cycles, "
        f"{energy.total_uj:.1f} µJ ({energy.dram_share:.0%} DRAM), "
        f"prefetch coverage {plan.prefetch_coverage:.0%}"
    )
    if args.export:
        save_plan(plan, args.export)
        print(f"plan exported to {args.export}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Show every feasible policy for one layer (Algorithm 1's raw input)."""
    model = _resolve_model(args.model)
    layer = model.find(args.layer)
    spec = _spec_from_args(args)
    from .estimators import evaluate_layer

    evaluations = evaluate_layer(layer, spec, always_fallback=True)
    table = Table(
        title=f"{model.name}/{layer.name} @ {args.glb} kB: policy candidates",
        headers=["Policy", "n", "Mem kB", "Accesses kB", "Latency (cyc)", "DMA", "Compute"],
    )
    for ev in sorted(evaluations, key=lambda e: e.accesses_bytes):
        table.add_row(
            ev.label,
            ev.plan.block_size if ev.plan.block_size is not None else "-",
            round(to_kib(ev.memory_bytes), 1),
            round(to_kib(ev.accesses_bytes), 1),
            int(ev.latency_cycles),
            int(ev.latency.dma_cycles),
            int(ev.latency.compute_cycles),
        )
    print(table.render())
    if not evaluations:
        print("no feasible policy — even the tile search cannot fit this GLB")
    return 0


def cmd_baseline(args: argparse.Namespace) -> int:
    """Simulate the three fixed-partition baselines."""
    from .scalesim import baseline_configs, simulate

    model = _resolve_model(args.model)
    table = Table(
        title=f"{model.name}: SCALE-Sim-style baselines @ {args.glb} kB",
        headers=["Partition", "DRAM MB", "Cycles", "Mean PE util"],
    )
    for label, config in baseline_configs(kib(args.glb), data_width_bits=args.width).items():
        result = simulate(model, config)
        table.add_row(
            label,
            round(to_mib(result.total_traffic_bytes), 2),
            result.total_cycles,
            f"{result.mean_utilization:.0%}",
        )
    print(table.render())
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Plan the model and compare against the baselines."""
    model = _resolve_model(args.model)
    manager = MemoryManager(_spec_from_args(args))
    comparison = manager.compare_with_baseline(model, Objective(args.objective))
    table = Table(
        title=f"{model.name} @ {args.glb} kB: proposed vs baselines",
        headers=["Scheme", "DRAM MB"],
    )
    for label, result in comparison.baselines.items():
        table.add_row(label, round(to_mib(result.total_traffic_bytes), 2))
    table.add_row(
        f"Het ({args.objective})",
        round(to_mib(comparison.plan.total_accesses_bytes), 2),
    )
    print(table.render())
    print(
        f"\naccess reduction vs best baseline: {comparison.accesses_reduction_pct:.1f}%"
        f"\nlatency reduction vs zero-stall baseline: "
        f"{comparison.latency_reduction_pct:.1f}%"
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Sweep the GLB capacity and report the trend."""
    from .experiments.sweep import glb_sweep, sweep_table

    model = _resolve_model(args.model)
    sizes = (
        _parse_glb_list(args.glb_list) if args.glb_list else list(PAPER_GLB_SIZES)
    )
    points = glb_sweep(model, sizes, Objective(args.objective))
    print(
        sweep_table(
            f"{model.name}: GLB sweep (objective={args.objective})",
            "GLB bytes",
            points,
        ).render()
    )
    return 0


def cmd_layout(args: argparse.Namespace) -> int:
    """Print the GLB address map of a plan."""
    from .sim.glb import layout_plan

    model = _resolve_model(args.model)
    manager = MemoryManager(_spec_from_args(args))
    plan = manager.plan(model, Objective(args.objective), interlayer=args.interlayer)
    table = Table(
        title=f"{model.name} @ {args.glb} kB: GLB address map",
        headers=["Layer", "Policy", "Region", "Offset", "End", "kB"],
    )
    for layout in layout_plan(plan):
        for region in sorted(layout.regions, key=lambda r: r.offset):
            table.add_row(
                layout.layer_name,
                layout.policy,
                region.name,
                region.offset,
                region.end,
                round(to_kib(region.size), 2),
            )
    print(table.render())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Emit the baseline's DRAM address trace for one layer."""
    from .scalesim import baseline_config, lower_layer
    from .scalesim.trace import generate_dram_trace, trace_to_csv

    model = _resolve_model(args.model)
    layer = model.find(args.layer)
    workload = lower_layer(layer)
    config = baseline_config(kib(args.glb), 0.5, data_width_bits=args.width)
    records = generate_dram_trace(workload, config, max_records=args.max_records)
    count = trace_to_csv(records, args.out)
    print(f"{count:,} DRAM transactions for {model.name}/{layer.name} "
          f"written to {args.out}")
    return 0


def cmd_bounds(args: argparse.Namespace) -> int:
    """Compare a plan against the communication lower bound."""
    from .estimators import model_bound, optimality_gap

    model = _resolve_model(args.model)
    spec = _spec_from_args(args)
    manager = MemoryManager(spec)
    plan = manager.plan(model, Objective(args.objective))
    gap = optimality_gap(plan)
    print(
        f"{model.name} @ {args.glb} kB: Het moves "
        f"{to_mib(plan.total_accesses_bytes):.2f} MB; lower bound "
        f"{to_mib(model_bound(model, spec)):.2f} MB "
        f"(gap {gap.gap_pct:+.1f}%)"
    )
    return 0


def cmd_pareto(args: argparse.Namespace) -> int:
    """Print the accesses-vs-latency Pareto frontier."""
    from .analyzer import pareto_frontier

    model = _resolve_model(args.model)
    frontier = pareto_frontier(model, _spec_from_args(args), args.points)
    table = Table(
        title=f"{model.name} @ {args.glb} kB: Pareto frontier",
        headers=["alpha", "Accesses MB", "Latency (cyc)"],
    )
    for p in frontier:
        table.add_row(
            round(p.alpha, 2),
            round(to_mib(p.accesses_bytes), 2),
            int(p.latency_cycles),
        )
    print(table.render())
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Statically verify plans against the invariant catalog (V0xx codes)."""
    import json

    from .report.diagnostics import verify_payload
    from .verify import CODE_TITLES, describe, verify_network

    if args.list_codes:
        table = Table(title="Diagnostic codes", headers=["Code", "Title", "Invariant"])
        for code, title in sorted(CODE_TITLES.items()):
            table.add_row(code, title, describe(code))
        print(table.render())
        return 0

    if args.all:
        names = list(PAPER_MODEL_NAMES)
    elif args.model:
        names = [args.model]
    else:
        raise SystemExit("error: give a model name/path or --all")
    models = [_resolve_model(name) for name in names]
    sizes = (
        _parse_glb_list(args.glb_list)
        if args.glb_list
        else (list(PAPER_GLB_SIZES) if args.all else [kib(args.glb)])
    )
    schemes: list[tuple[str, bool]] = [("het", False), ("het", True)]
    if args.scheme != "het":
        schemes = [(args.scheme, False)]

    table = Table(
        title=f"Plan verification, objective={args.objective}",
        headers=["Model", "GLB kB", "Scheme", "Checks", "Diagnostics", "Status"],
    )
    reports = []
    failures = []
    for model in models:
        for glb in sizes:
            spec = AcceleratorSpec(
                glb_bytes=glb,
                data_width_bits=args.width,
                ops_per_cycle=args.ops,
                dram_bandwidth_elems_per_cycle=args.bandwidth,
            )
            for scheme, interlayer in schemes:
                result = verify_network(
                    model,
                    spec,
                    scheme=scheme,
                    objective=Objective(args.objective),
                    interlayer=interlayer,
                )
                report = result.report
                reports.append(report)
                table.add_row(
                    model.name,
                    glb // kib(1),
                    result.scheme,
                    report.checks,
                    len(report.diagnostics),
                    "ok" if report.ok else "FAILED",
                )
                if not report.ok:
                    failures.append(report)
    if args.format == "json":
        print(json.dumps(verify_payload(reports), indent=2, sort_keys=True))
        return 1 if failures else 0
    print(table.render())
    for report in failures:
        print()
        print(report.render())
    if failures:
        print(f"\n{len(failures)} plan(s) FAILED verification")
        return 1
    print("\nall plans verified: every invariant holds")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the R0xx domain lint over source files (see docs/static-analysis.md).

    Exit codes: 0 clean, 1 findings above the gate, 2 usage errors.
    """
    import json

    from .analysis import (
        RULE_TITLES,
        analyze_paths,
        describe_rule,
        load_baseline,
        write_baseline,
    )
    from .report.diagnostics import lint_payload

    if args.list_codes:
        table = Table(title="Lint rule codes", headers=["Code", "Title", "Rationale"])
        for code, title in sorted(RULE_TITLES.items()):
            table.add_row(code, title, describe_rule(code))
        print(table.render())
        return 0

    paths = args.paths or ["src/repro"]
    baseline = None
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline file not found: {args.baseline}", file=sys.stderr)
            return 2
        baseline = load_baseline(baseline_path)
    packs = None
    if args.packs:
        packs = [name.strip() for name in args.packs.split(",") if name.strip()]
    try:
        report = analyze_paths(
            paths,
            baseline=baseline,
            use_baseline=not args.no_baseline,
            packs=packs,
            changed_files=args.changed_files,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        out = Path(args.write_baseline)
        write_baseline(out, report.active)
        print(f"baseline with {len(report.active)} finding(s) written to {out}")
        return 0

    if args.format == "json":
        print(json.dumps(lint_payload(report), indent=2, sort_keys=True))
    elif args.format == "sarif":
        from .report.sarif import sarif_payload

        print(json.dumps(sarif_payload(report), indent=2, sort_keys=True))
    else:
        print(report.render(show_silenced=args.show_silenced))
    if args.max_seconds is not None and report.duration_seconds > args.max_seconds:
        print(
            f"error: lint wall time {report.duration_seconds:.2f}s exceeds "
            f"the --max-seconds {args.max_seconds:g}s budget",
            file=sys.stderr,
        )
        return 1
    return 0 if report.ok(strict=args.strict) else 1


def cmd_dram(args: argparse.Namespace) -> int:
    """Sweep DRAM data-mapping policies over each network's plan."""
    from .dram import DEFAULT_DDR4_SPEC, MAPPING_NAMES, simulate_plan_dram

    if args.all:
        names = list(PAPER_MODEL_NAMES)
    elif args.model:
        names = [args.model]
    else:
        raise SystemExit("error: give a model name/path or --all")
    mappings = args.mappings.split(",") if args.mappings else list(MAPPING_NAMES)
    unknown = [m for m in mappings if m not in MAPPING_NAMES]
    if unknown:
        raise SystemExit(
            f"error: unknown mapping(s) {unknown}; available: {', '.join(MAPPING_NAMES)}"
        )

    spec = _spec_from_args(args)
    manager = MemoryManager(spec)
    table = Table(
        title=(
            f"DRAM mapping sweep @ {args.glb} kB GLB, DDR4-like "
            f"({DEFAULT_DDR4_SPEC.channels}ch x {DEFAULT_DDR4_SPEC.banks_per_channel}ba), "
            f"objective={args.objective}"
        ),
        headers=[
            "Model", "Mapping", "cycles", "ideal", "overhead",
            "hit rate", "activations", "energy uJ",
        ],
    )
    for name in names:
        model = _resolve_model(name)
        plan = manager.plan(model, Objective(args.objective))
        for mapping in mappings:
            total = simulate_plan_dram(plan, DEFAULT_DDR4_SPEC, mapping).total
            overhead = (
                100.0 * (total.cycles / total.ideal_cycles - 1.0)
                if total.ideal_cycles
                else 0.0
            )
            table.add_row(
                model.name,
                mapping,
                int(total.cycles),
                int(total.ideal_cycles),
                f"{overhead:.1f}%",
                f"{total.row_hit_rate:.4f}",
                total.activations,
                f"{total.energy_pj / 1e6:.1f}",
            )
    print(table.render())
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Render the planner's decision audit trail as a per-layer table.

    Model lookup is case-insensitive over the full zoo (so
    ``repro explain resnet18`` works); a JSON model path is accepted too.
    Unknown models exit with code 2 and list the available ids, mirroring
    the ``UnknownArtifactError`` convention of the experiments CLI.
    """
    import json

    from .nn.zoo import ALL_MODEL_NAMES

    canonical = {name.lower(): name for name in ALL_MODEL_NAMES}.get(
        args.model.lower()
    )
    if canonical is not None:
        model = get_model(canonical)
    elif Path(args.model).exists():
        model = load_model(Path(args.model))
    else:
        print(
            f"error: unknown model {args.model!r}\n"
            f"available models: {', '.join(ALL_MODEL_NAMES)}",
            file=sys.stderr,
        )
        return 2
    spec = _spec_from_args(args)
    plan = MemoryManager(spec).plan(
        model,
        Objective(args.objective),
        scheme=args.scheme,
        interlayer=args.interlayer,
    )
    trail = plan.explain()
    if args.format == "json":
        print(json.dumps(trail.to_payload(), indent=2))
        return 0
    table = Table(
        title=(
            f"{model.name} @ {args.glb} kB — {trail.scheme} decision audit "
            f"(objective={trail.objective})"
        ),
        headers=["Layer", "Candidate", "Status", "Mem kB", "Acc kB", "Reason"],
    )
    shown = 0
    for decision in trail.layers:
        if args.layer and decision.layer != args.layer:
            continue
        shown += 1
        for candidate in decision.candidates:
            table.add_row(
                decision.layer,
                ("* " if candidate.chosen else "  ") + candidate.label,
                candidate.status,
                "-"
                if candidate.memory_bytes is None
                else round(to_kib(candidate.memory_bytes), 1),
                "-"
                if candidate.accesses_bytes is None
                else round(to_kib(candidate.accesses_bytes), 1),
                candidate.reason,
            )
    if args.layer and not shown:
        print(
            f"error: {model.name} has no layer {args.layer!r} "
            f"(see `repro inspect {model.name}`)",
            file=sys.stderr,
        )
        return 2
    print(table.render())
    for note in trail.notes:
        print(f"note: {note}")
    chosen = [d.chosen.label for d in trail.layers if d.chosen is not None]
    print(
        f"\n{len(trail.layers)} layers, "
        f"{sum(len(d.candidates) for d in trail.layers)} candidates considered, "
        f"policies chosen: {', '.join(sorted(set(chosen)))}"
    )
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    """Forward to the experiments runner (engine-backed).

    Unknown artifact ids exit with an argparse-style error (code 2)
    listing the available ids, exactly like ``python -m repro.experiments``.
    """
    from .experiments.runner import main as experiments_main

    forwarded = list(args.artifacts)
    if args.csv:
        forwarded = ["--csv", args.csv, *forwarded]
    if args.jobs != 1:
        forwarded = ["--jobs", str(args.jobs), *forwarded]
    if args.bench:
        forwarded = ["--bench", args.bench, *forwarded]
    if args.no_cache:
        forwarded = ["--no-cache", *forwarded]
    if args.clear_cache:
        forwarded = ["--clear-cache", *forwarded]
    if args.trace_out:
        forwarded = ["--trace-out", args.trace_out, *forwarded]
    if args.metrics:
        forwarded = ["--metrics", *forwarded]
    return experiments_main(forwarded)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the planning-as-a-service daemon until SIGINT/SIGTERM.

    ``--cache-max-mb`` exports ``REPRO_CACHE_MAX_MB`` before boot, so
    the LRU cap applies in the daemon process and every pool worker.
    """
    from .serve.server import run_server

    if args.cache_max_mb is not None:
        from .experiments.cache import ENV_CACHE_MAX_MB

        os.environ[ENV_CACHE_MAX_MB] = str(args.cache_max_mb)
    return run_server(args.host, args.port, jobs=args.jobs)


def cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or manage the shared on-disk plan cache."""
    from .arch.units import mib
    from .experiments import cache

    if args.action == "clear":
        removed = cache.entry_count()
        cache.clear()
        print(f"cache cleared: {removed} entries removed from {cache.cache_dir()}")
        return 0
    if args.action == "prune":
        if args.max_mb is None:
            print("repro cache prune: --max-mb is required", file=sys.stderr)
            return 2
        result = cache.prune(mib(args.max_mb))
        print(
            f"pruned {result.evicted_count} entries "
            f"({to_mib(result.evicted_bytes):.2f} MiB); "
            f"{result.remaining_count} remain "
            f"({to_mib(result.remaining_bytes):.2f} MiB)"
        )
        return 0
    counters = cache.stats.snapshot()
    cap = cache.cache_max_bytes()
    table = Table(
        title="Plan cache",
        headers=["Field", "Value"],
    )
    table.add_row("dir", str(cache.cache_dir()))
    table.add_row("enabled", cache.cache_enabled())
    table.add_row("schema version", cache.CACHE_SCHEMA_VERSION)
    table.add_row("entries", cache.entry_count())
    table.add_row("total KiB", round(to_kib(cache.total_bytes()), 1))
    table.add_row("max MiB", "unbounded" if cap is None else round(to_mib(cap), 1))
    for name in ("hits", "misses", "stores", "evictions"):
        table.add_row(f"{name} (this process)", counters[name])
    print(table.render())
    return 0


def cmd_bench_serve(args: argparse.Namespace) -> int:
    """Load-generate against a daemon and write ``BENCH_serve.json``.

    Exits non-zero if any request failed or any served payload differed
    from the direct in-process computation (byte-identity check).
    """
    from .serve import loadgen

    models = (
        tuple(args.models.split(",")) if args.models else loadgen.DEFAULT_MODELS
    )
    glb_kb = (
        tuple(int(to_kib(size)) for size in _parse_glb_list(args.glb))
        if args.glb
        else loadgen.DEFAULT_GLB_KB
    )
    report = loadgen.bench_serve(
        clients=args.clients,
        requests=args.requests,
        seed=args.seed,
        url=args.url,
        jobs=args.jobs,
        models=models,
        glb_kb=glb_kb,
        verify=not args.no_verify,
        out=args.out,
    )
    latency = report.latency_summary()
    table = Table(
        title=f"repro bench serve (clients={report.clients}, seed={report.seed})",
        headers=["Metric", "Value"],
    )
    table.add_row("url", report.url)
    table.add_row("requests", report.total)
    table.add_row("ok / errors", f"{report.ok_count} / {report.error_count}")
    table.add_row("cache hit-rate", round(report.hit_rate, 3))
    table.add_row("byte-identical", report.byte_identical)
    table.add_row("latency p50 (s)", round(latency["p50"], 4))
    table.add_row("latency p99 (s)", round(latency["p99"], 4))
    table.add_row("latency mean (s)", round(latency["mean"], 4))
    table.add_row("throughput (req/s)", round(report.throughput_rps, 2))
    print(table.render())
    if args.out:
        print(f"wrote {args.out}")
    return 0 if (report.error_count == 0 and report.byte_identical) else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(func=cmd_models)

    p = sub.add_parser("inspect", help="per-layer shapes and footprints")
    p.add_argument("model")
    _add_spec_args(p)
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("plan", help="produce an execution plan")
    p.add_argument("model")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.add_argument("--scheme", default="het", help='het, hom or "hom(<family>)"')
    p.add_argument("--interlayer", action="store_true", help="enable inter-layer reuse")
    p.add_argument("--export", metavar="FILE", help="write the plan JSON here")
    p.set_defaults(func=cmd_plan)

    p = sub.add_parser(
        "explain", help="why each layer got its policy (decision audit trail)"
    )
    p.add_argument("model", help="zoo model (case-insensitive) or JSON path")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.add_argument("--scheme", default="het", help='het, hom or "hom(<family>)"')
    p.add_argument("--interlayer", action="store_true", help="enable inter-layer reuse")
    p.add_argument("--layer", metavar="NAME", help="show only this layer")
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json emits the full audit payload)",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("evaluate", help="all policy candidates for one layer")
    p.add_argument("model")
    p.add_argument("layer", help="layer name (see `inspect`)")
    _add_spec_args(p)
    p.set_defaults(func=cmd_evaluate)

    p = sub.add_parser("baseline", help="simulate the separate-buffer baselines")
    p.add_argument("model")
    _add_spec_args(p)
    p.set_defaults(func=cmd_baseline)

    p = sub.add_parser("compare", help="plan vs the three baselines")
    p.add_argument("model")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("sweep", help="GLB design-space sweep")
    p.add_argument("model")
    p.add_argument("--glb-list", metavar="KB,KB,...", help="sizes in kB")
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("layout", help="GLB address map of a plan")
    p.add_argument("model")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.add_argument("--interlayer", action="store_true")
    p.set_defaults(func=cmd_layout)

    p = sub.add_parser("trace", help="baseline DRAM address trace for a layer")
    p.add_argument("model")
    p.add_argument("layer")
    p.add_argument("out", help="output CSV path")
    _add_spec_args(p)
    p.add_argument("--max-records", type=int, default=2_000_000)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("bounds", help="plan vs communication lower bound")
    p.add_argument("model")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.set_defaults(func=cmd_bounds)

    p = sub.add_parser("pareto", help="accesses-vs-latency frontier")
    p.add_argument("model")
    _add_spec_args(p)
    p.add_argument("--points", type=int, default=11)
    p.set_defaults(func=cmd_pareto)

    p = sub.add_parser("verify", help="statically verify plans (V0xx diagnostics)")
    p.add_argument("model", nargs="?", help="zoo model or JSON path")
    p.add_argument("--all", action="store_true", help="all six paper networks")
    p.add_argument("--glb-list", metavar="KB,KB,...", help="sizes in kB")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.add_argument(
        "--scheme",
        default="het",
        help='het (also verifies het+il), hom, or "hom(<family>)"',
    )
    p.add_argument("--list-codes", action="store_true", help="print the catalog")
    p.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format (json uses the shared repro-diagnostics/1 schema)",
    )
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("lint", help="domain static analysis (R0xx diagnostics)")
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help=(
            "output format (json uses the shared repro-diagnostics/1 "
            "schema; sarif emits SARIF 2.1.0 for code-scanning UIs)"
        ),
    )
    p.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, not only errors (the CI gate)",
    )
    p.add_argument(
        "--max-seconds",
        type=float,
        metavar="N",
        help="fail when analysis wall time exceeds N seconds (the CI budget)",
    )
    p.add_argument("--baseline", metavar="FILE", help="baseline file to apply")
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the committed lint-baseline.json",
    )
    p.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="record all active findings as the new baseline and exit",
    )
    p.add_argument(
        "--show-silenced",
        action="store_true",
        help="also list suppressed and baselined findings",
    )
    p.add_argument(
        "--packs",
        metavar="NAMES",
        help=(
            "comma-separated rule packs to run (e.g. 'concurrency,range'); "
            "default: all packs"
        ),
    )
    p.add_argument(
        "--changed-files",
        nargs="+",
        metavar="PATH",
        help=(
            "incremental mode: analyze only these files (file-scope rules "
            "only — the whole-program packs need the full file set)"
        ),
    )
    p.add_argument("--list-codes", action="store_true", help="print the rule catalog")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser("dram", help="banked-DRAM mapping-policy sweep")
    p.add_argument("model", nargs="?", help="zoo model or JSON path")
    p.add_argument("--all", action="store_true", help="all six paper networks")
    _add_spec_args(p)
    p.add_argument("--objective", choices=["accesses", "latency"], default="accesses")
    p.add_argument(
        "--mappings",
        metavar="NAME,NAME,...",
        help="mapping policies to sweep (default: all)",
    )
    p.set_defaults(func=cmd_dram)

    p = sub.add_parser("experiments", help="regenerate paper artifacts")
    p.add_argument("artifacts", nargs="*")
    p.add_argument("--csv", metavar="DIR")
    p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes (default 1 = serial; output is identical)",
    )
    p.add_argument("--bench", metavar="FILE", help="write timing/cache JSON record")
    p.add_argument(
        "--no-cache", action="store_true", help="disable the persistent plan cache"
    )
    p.add_argument(
        "--clear-cache", action="store_true",
        help="delete the persistent plan cache and exit",
    )
    p.add_argument(
        "--trace-out", metavar="FILE",
        help="enable tracing and write a Perfetto-loadable Chrome trace",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print the run's merged metric counters",
    )
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser("serve", help="planning-as-a-service HTTP daemon")
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument("--port", type=int, default=8077, help="TCP port (0 = ephemeral)")
    p.add_argument(
        "--jobs", "-j", type=int, default=0, metavar="N",
        help="worker processes (default 0 = execute in request threads)",
    )
    p.add_argument(
        "--cache-max-mb", type=int, metavar="MB",
        help="LRU-evict the shared plan cache above this size",
    )
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("cache", help="inspect or manage the shared plan cache")
    p.add_argument("action", choices=("stats", "clear", "prune"))
    p.add_argument(
        "--max-mb", type=int, metavar="MB",
        help="prune target size (required for 'prune')",
    )
    p.set_defaults(func=cmd_cache)

    p = sub.add_parser("bench", help="performance benchmarks")
    bench_sub = p.add_subparsers(dest="bench_command", required=True)
    b = bench_sub.add_parser("serve", help="seeded load generator for the daemon")
    b.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    b.add_argument("--requests", type=int, default=24, help="total requests to send")
    b.add_argument("--seed", type=int, default=0, help="traffic-mix seed")
    b.add_argument(
        "--url", help="target an already-running daemon (default: boot one in-process)"
    )
    b.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="worker processes for the in-process daemon",
    )
    b.add_argument("--models", metavar="A,B", help="comma-separated zoo model names")
    b.add_argument("--glb", metavar="KB,KB", help="comma-separated GLB sizes in kB")
    b.add_argument(
        "--no-verify", action="store_true",
        help="skip the byte-identity check against in-process planning",
    )
    b.add_argument(
        "--out", default="BENCH_serve.json", metavar="FILE",
        help="perf record path (default BENCH_serve.json)",
    )
    b.set_defaults(func=cmd_bench_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    status: int = args.func(args)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
