"""Per-layer and per-model memory statistics.

These back Figure 3 of the paper (memory breakdown of ResNet18 into ifmap /
filter / ofmap per layer) and the model-characteristics summary of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.spec import AcceleratorSpec
from .layer import LayerKind, LayerSpec
from .model import Model


@dataclass(frozen=True)
class LayerMemoryBreakdown:
    """Byte footprint of one layer's three data types (Fig. 3 bars)."""

    name: str
    kind: LayerKind
    ifmap_bytes: int
    filter_bytes: int
    ofmap_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.ifmap_bytes + self.filter_bytes + self.ofmap_bytes


def layer_breakdown(layer: LayerSpec, spec: AcceleratorSpec) -> LayerMemoryBreakdown:
    """Memory breakdown of one layer at the spec's data width."""
    b = spec.bytes_per_elem
    return LayerMemoryBreakdown(
        name=layer.name,
        kind=layer.kind,
        ifmap_bytes=layer.ifmap_elems * b,
        filter_bytes=layer.filter_elems * b,
        ofmap_bytes=layer.ofmap_elems * b,
    )


def model_breakdown(model: Model, spec: AcceleratorSpec) -> list[LayerMemoryBreakdown]:
    """Per-layer breakdown for a whole model, in execution order."""
    return [layer_breakdown(layer, spec) for layer in model.layers]


@dataclass(frozen=True)
class ModelCharacteristics:
    """The Table 2 row for one model."""

    name: str
    num_layers: int
    layer_kinds: tuple[LayerKind, ...]
    total_macs: int
    total_weight_elems: int


def characteristics(model: Model) -> ModelCharacteristics:
    """Summarize a model as in Table 2 (plus MAC/weight totals)."""
    return ModelCharacteristics(
        name=model.name,
        num_layers=model.num_layers,
        layer_kinds=model.layer_kinds(),
        total_macs=model.total_macs,
        total_weight_elems=model.total_weight_elems,
    )
