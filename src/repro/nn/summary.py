"""Human-readable model summaries (torchsummary-style).

Pure-text companion to :mod:`repro.nn.stats`: one line per layer with
shapes, parameters, MACs and the memory breakdown at a given data width,
plus model totals.  Used by the CLI's ``inspect`` command and handy in
notebooks/examples.
"""

from __future__ import annotations

from ..arch.spec import AcceleratorSpec
from ..arch.units import to_kib
from .model import Model
from .stats import layer_breakdown


def summarize(model: Model, spec: AcceleratorSpec | None = None) -> str:
    """Render a layer-by-layer summary of the model."""
    spec = spec or AcceleratorSpec()
    header = (
        f"{'#':>3} {'layer':<18} {'kind':<4} {'input':<13} {'output':<13} "
        f"{'params':>10} {'MACs':>12} {'mem kB':>8}"
    )
    lines = [
        f"{model.name}: {model.num_layers} layers, "
        f"{model.total_weight_elems / 1e6:.2f}M params, "
        f"{model.total_macs / 1e9:.3f} GMACs "
        f"(at {spec.data_width_bits}-bit)",
        header,
        "-" * len(header),
    ]
    for i, layer in enumerate(model.layers, start=1):
        breakdown = layer_breakdown(layer, spec)
        lines.append(
            f"{i:>3} {layer.name:<18.18} {layer.kind.value:<4} "
            f"{layer.in_h}x{layer.in_w}x{layer.in_c:<6} "
            f"{layer.out_h}x{layer.out_w}x{layer.out_c:<6} "
            f"{layer.filter_elems:>10,} {layer.macs:>12,} "
            f"{to_kib(breakdown.total_bytes):>8.1f}"
        )
    peak = max(
        layer_breakdown(layer, spec).total_bytes for layer in model.layers
    )
    lines.append("-" * len(header))
    lines.append(
        f"peak single-layer working set: {to_kib(peak):.1f} kB; "
        f"sequential pairs: "
        f"{sum(1 for i in range(len(model.layers) - 1) if model.feeds_next(i))}"
        f"/{len(model.layers) - 1}"
    )
    return "\n".join(lines)
