"""Neural-network substrate: layer/model descriptions, builder DSL, zoo."""

from .builder import ModelBuilder, Tensor, same_padding
from .io import load_model, model_from_dict, model_to_dict, save_model
from .layer import LayerKind, LayerSpec, conv_out_extent
from .model import Model, make_model
from .summary import summarize
from .stats import (
    LayerMemoryBreakdown,
    ModelCharacteristics,
    characteristics,
    layer_breakdown,
    model_breakdown,
)

__all__ = [
    "LayerKind",
    "LayerSpec",
    "conv_out_extent",
    "Model",
    "make_model",
    "ModelBuilder",
    "Tensor",
    "same_padding",
    "load_model",
    "save_model",
    "model_to_dict",
    "model_from_dict",
    "LayerMemoryBreakdown",
    "ModelCharacteristics",
    "characteristics",
    "layer_breakdown",
    "model_breakdown",
    "summarize",
]
