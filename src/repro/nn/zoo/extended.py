"""Extended model zoo (beyond the paper's six networks).

Classic CNNs users are likely to bring to the tool.  They follow the same
conventions as the paper zoo (memory-managed layers only: conv / fc;
pooling and activations are shape transformations).
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..model import Model


def build_alexnet(input_size: int = 227, num_classes: int = 1000) -> Model:
    """AlexNet (Krizhevsky et al., 2012): 5 conv + 3 FC layers."""
    b = ModelBuilder("AlexNet", (input_size, input_size, 3))
    b.conv("conv1", f=11, n=96, s=4, p=0)
    b.maxpool(3, 2)
    b.conv("conv2", f=5, n=256, p=2)
    b.maxpool(3, 2)
    b.conv("conv3", f=3, n=384, p=1)
    b.conv("conv4", f=3, n=384, p=1)
    b.conv("conv5", f=3, n=256, p=1)
    b.maxpool(3, 2)
    b.flatten()
    b.fc("fc6", n=4096)
    b.fc("fc7", n=4096)
    b.fc("fc8", n=num_classes)
    return b.build()


def build_vgg16(input_size: int = 224, num_classes: int = 1000) -> Model:
    """VGG-16 (Simonyan & Zisserman, 2015): 13 conv + 3 FC layers."""
    b = ModelBuilder("VGG16", (input_size, input_size, 3))
    stages = ((2, 64), (2, 128), (3, 256), (3, 512), (3, 512))
    index = 0
    for repeats, channels in stages:
        for _ in range(repeats):
            index += 1
            b.conv(f"conv{index}", f=3, n=channels, p=1)
        b.maxpool(2, 2)
    b.flatten()
    b.fc("fc1", n=4096)
    b.fc("fc2", n=4096)
    b.fc("fc3", n=num_classes)
    return b.build()


def build_squeezenet(input_size: int = 224, num_classes: int = 1000) -> Model:
    """SqueezeNet 1.1 (Iandola et al., 2016): fire modules, no FC.

    A fire module is a 1×1 squeeze followed by parallel 1×1 and 3×3
    expands whose outputs concatenate.
    """
    b = ModelBuilder("SqueezeNet", (input_size, input_size, 3))

    def fire(name: str, squeeze: int, expand: int) -> None:
        b.pw(f"{name}_squeeze", n=squeeze)
        entry = b.fork()
        e1 = b.pw(f"{name}_e1x1", n=expand)
        b.goto(entry)
        e3 = b.conv(f"{name}_e3x3", f=3, n=expand, p=1)
        b.concat([e1, e3])

    b.conv("conv1", f=3, n=64, s=2, p=0)
    b.maxpool(3, 2)
    fire("fire2", 16, 64)
    fire("fire3", 16, 64)
    b.maxpool(3, 2)
    fire("fire4", 32, 128)
    fire("fire5", 32, 128)
    b.maxpool(3, 2)
    fire("fire6", 48, 192)
    fire("fire7", 48, 192)
    fire("fire8", 64, 256)
    fire("fire9", 64, 256)
    b.pw("conv10", n=num_classes)
    return b.build()


def _resnet_bottleneck(
    b: ModelBuilder, stage: int, block: int, channels: int, downsample: bool
) -> None:
    """One ResNet-50 bottleneck: 1×1 reduce, 3×3, 1×1 expand (+projection)."""
    shortcut = b.fork()
    stride = 2 if downsample and stage > 2 else 1
    needs_projection = downsample or b.cursor.c != channels * 4
    b.pw(f"conv{stage}_{block}a", n=channels, s=stride)
    b.conv(f"conv{stage}_{block}b", f=3, n=channels, p=1)
    b.pw(f"conv{stage}_{block}c", n=channels * 4)
    if needs_projection:
        out = b.fork()
        b.goto(shortcut)
        b.projection(f"proj{stage}_{block}", n=channels * 4, s=stride)
        projected = b.fork()
        b.goto(out)
        b.add_residual(projected)
    else:
        b.add_residual(shortcut)


def build_resnet50(input_size: int = 224, num_classes: int = 1000) -> Model:
    """ResNet-50 (He et al., 2016): bottleneck residual blocks."""
    b = ModelBuilder("ResNet50", (input_size, input_size, 3))
    b.conv("conv1", f=7, n=64, s=2, p=3)
    b.maxpool(3, 2, p=1)
    for stage, channels, repeats in ((2, 64, 3), (3, 128, 4), (4, 256, 6), (5, 512, 3)):
        for block in range(1, repeats + 1):
            _resnet_bottleneck(b, stage, block, channels, downsample=(block == 1))
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()


def build_resnet34(input_size: int = 224, num_classes: int = 1000) -> Model:
    """ResNet-34 (He et al., 2016): basic residual blocks, deeper than -18."""
    b = ModelBuilder("ResNet34", (input_size, input_size, 3))
    b.conv("conv1", f=7, n=64, s=2, p=3)
    b.maxpool(3, 2, p=1)
    for stage, channels, repeats in ((2, 64, 3), (3, 128, 4), (4, 256, 6), (5, 512, 3)):
        for block in range(1, repeats + 1):
            downsample = stage > 2 and block == 1
            shortcut = b.fork()
            b.conv(f"conv{stage}_{block}a", f=3, n=channels, s=2 if downsample else 1, p=1)
            b.conv(f"conv{stage}_{block}b", f=3, n=channels, p=1)
            if downsample:
                out = b.fork()
                b.goto(shortcut)
                b.projection(f"proj{stage}", n=channels, s=2)
                projected = b.fork()
                b.goto(out)
                b.add_residual(projected)
            else:
                b.add_residual(shortcut)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
