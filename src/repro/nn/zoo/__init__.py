"""Model zoo: the six CNNs evaluated in the paper (Table 2)."""

from .efficientnetb0 import build_efficientnetb0
from .googlenet import build_googlenet
from .mnasnet import build_mnasnet
from .mobilenet import build_mobilenet
from .mobilenetv2 import build_mobilenetv2
from .extended import (
    build_alexnet,
    build_resnet34,
    build_resnet50,
    build_squeezenet,
    build_vgg16,
)
from .registry import (
    ALL_MODEL_NAMES,
    PAPER_LAYER_COUNTS,
    PAPER_MODEL_NAMES,
    get_model,
    paper_models,
)
from .resnet18 import build_resnet18

__all__ = [
    "build_efficientnetb0",
    "build_googlenet",
    "build_mnasnet",
    "build_mobilenet",
    "build_mobilenetv2",
    "build_resnet18",
    "get_model",
    "paper_models",
    "PAPER_MODEL_NAMES",
    "PAPER_LAYER_COUNTS",
    "ALL_MODEL_NAMES",
    "build_alexnet",
    "build_vgg16",
    "build_squeezenet",
    "build_resnet34",
    "build_resnet50",
]
