"""Registry of the six DL models studied in the paper (Table 2)."""

from __future__ import annotations

from functools import lru_cache
from typing import Callable

from ..model import Model
from .efficientnetb0 import build_efficientnetb0
from .extended import (
    build_alexnet,
    build_resnet34,
    build_resnet50,
    build_squeezenet,
    build_vgg16,
)
from .googlenet import build_googlenet
from .mnasnet import build_mnasnet
from .mobilenet import build_mobilenet
from .mobilenetv2 import build_mobilenetv2
from .resnet18 import build_resnet18

#: Builders in Table 2 order.
_BUILDERS: dict[str, Callable[[], Model]] = {
    "EfficientNetB0": build_efficientnetb0,
    "GoogLeNet": build_googlenet,
    "MnasNet": build_mnasnet,
    "MobileNet": build_mobilenet,
    "MobileNetV2": build_mobilenetv2,
    "ResNet18": build_resnet18,
}

#: Model names in Table 2 order.
PAPER_MODEL_NAMES = tuple(_BUILDERS)

#: Extra networks beyond the paper's evaluation set.
_BUILDERS.update(
    {
        "AlexNet": build_alexnet,
        "VGG16": build_vgg16,
        "SqueezeNet": build_squeezenet,
        "ResNet34": build_resnet34,
        "ResNet50": build_resnet50,
    }
)

#: All registered model names (paper set first).
ALL_MODEL_NAMES = tuple(_BUILDERS)

#: Expected layer counts from Table 2 (validated by the test suite).
PAPER_LAYER_COUNTS = {
    "EfficientNetB0": 82,
    "GoogLeNet": 64,
    "MnasNet": 53,
    "MobileNet": 28,
    "MobileNetV2": 53,
    "ResNet18": 21,
}


@lru_cache(maxsize=None)
def get_model(name: str, input_size: int | None = None) -> Model:
    """Return the (cached, immutable) zoo model with the given name.

    ``input_size`` overrides the builder's native resolution (all zoo
    builders parameterize it), enabling resolution sweeps.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(_BUILDERS)}"
        ) from None
    return builder() if input_size is None else builder(input_size=input_size)


def paper_models() -> tuple[Model, ...]:
    """All six paper models in Table 2 order."""
    return tuple(get_model(name) for name in PAPER_MODEL_NAMES)
