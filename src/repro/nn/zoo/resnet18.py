"""ResNet18 (He et al., CVPR 2016) — 21 memory-managed layers.

Count per Table 2: conv1 + 16 block convolutions + 3 projection shortcuts +
the classifier FC = 21.  Residual additions are serialized per the paper's
layer-by-layer execution, so they appear only as chain breaks, not layers.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..model import Model


def build_resnet18(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct ResNet18 for ``input_size``×``input_size``×3 inputs."""
    b = ModelBuilder("ResNet18", (input_size, input_size, 3))
    b.conv("conv1", f=7, n=64, s=2, p=3)
    b.maxpool(3, 2, p=1)

    def basic_block(stage: int, block: int, channels: int, downsample: bool) -> None:
        shortcut = b.fork()
        stride = 2 if downsample else 1
        b.conv(f"conv{stage}_{block}a", f=3, n=channels, s=stride, p=1)
        b.conv(f"conv{stage}_{block}b", f=3, n=channels, s=1, p=1)
        if downsample:
            out = b.fork()
            b.goto(shortcut)
            b.projection(f"proj{stage}", n=channels, s=2)
            projected = b.fork()
            b.goto(out)
            b.add_residual(projected)
        else:
            b.add_residual(shortcut)

    for stage, channels in ((2, 64), (3, 128), (4, 256), (5, 512)):
        for block in (1, 2):
            basic_block(stage, block, channels, downsample=(stage > 2 and block == 1))

    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
