"""EfficientNet-B0 (Tan & Le, ICML 2019) — 82 memory-managed layers.

Count per Table 2: stem conv (1) + 16 MBConv blocks — the first without
expansion (DW + SE-reduce + SE-expand + project = 4 layers), the remaining
15 with expansion (expand PW + DW + SE-reduce + SE-expand + project = 5
layers) — giving 79, + head PW (1) + classifier FC (1) = 82.

The squeeze-and-excite stages operate on the globally-pooled 1×1×C tensor
and are modeled as point-wise layers on a 1×1 spatial extent, matching
Table 2's CV/DW/PW/FC type set.
"""

from __future__ import annotations

from ..builder import ModelBuilder, Tensor
from ..model import Model

#: (expansion t, kernel k, output channels c, repeats n, first stride s)
_STAGES = (
    (1, 3, 16, 1, 1),
    (6, 3, 24, 2, 2),
    (6, 5, 40, 2, 2),
    (6, 3, 80, 3, 2),
    (6, 5, 112, 3, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
)

#: SE bottleneck ratio relative to the block's *input* channels (B0 default).
_SE_RATIO = 0.25


def _se_stage(b: ModelBuilder, name: str, block_in_c: int) -> None:
    """Squeeze-excite: pool to 1×1, reduce, expand, rescale the feature map."""
    feature = b.fork()
    b.global_avgpool()
    se_c = max(1, int(block_in_c * _SE_RATIO))
    b.pw(f"{name}_se_reduce", n=se_c)
    b.pw(f"{name}_se_expand", n=feature.c)
    # The channel-wise rescale restores the feature-map shape; provenance is
    # a combination of two tensors, so the chain is broken (producer=None).
    b.goto(Tensor(feature.h, feature.w, feature.c))


def build_efficientnetb0(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct EfficientNet-B0 with squeeze-excite stages."""
    b = ModelBuilder("EfficientNetB0", (input_size, input_size, 3))
    b.conv("stem", f=3, n=32, s=2, p=1)
    block_index = 0
    for t, kernel, channels, repeats, first_stride in _STAGES:
        for r in range(repeats):
            block_index += 1
            name = f"b{block_index}"
            stride = first_stride if r == 0 else 1
            in_c = b.cursor.c
            use_residual = stride == 1 and in_c == channels
            shortcut = b.fork() if use_residual else None
            if t != 1:
                b.pw(f"{name}_expand", n=in_c * t)
            b.dw(f"{name}_dw", f=kernel, s=stride, p=(kernel - 1) // 2)
            _se_stage(b, name, in_c)
            b.pw(f"{name}_project", n=channels)
            if shortcut is not None:
                b.add_residual(shortcut)
    b.pw("head", n=1280)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
