"""MnasNet-B1 (Tan et al., CVPR 2019) — 53 memory-managed layers.

Count per Table 2: stem conv + separable stem block (DW + PW) + 16 MBConv
bottlenecks (expand PW + DW + project PW) + head PW + classifier FC =
1 + 2 + 48 + 1 + 1 = 53.  The B1 variant has no squeeze-excite stages, which
matches Table 2 listing only CV/DW/PW/FC types.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..model import Model

#: (expansion t, kernel k, output channels c, repeats n, first stride s)
_STAGES = (
    (3, 3, 24, 3, 2),
    (3, 5, 40, 3, 2),
    (6, 5, 80, 3, 2),
    (6, 3, 96, 2, 1),
    (6, 5, 192, 4, 2),
    (6, 3, 320, 1, 1),
)


def build_mnasnet(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct MnasNet-B1 (depth multiplier 1.0)."""
    b = ModelBuilder("MnasNet", (input_size, input_size, 3))
    b.conv("conv1", f=3, n=32, s=2, p=1)
    # Separable stem block (SepConv k3, 16 output channels).
    b.dw("sep_dw", f=3, s=1, p=1)
    b.pw("sep_pw", n=16)
    block_index = 0
    for t, kernel, channels, repeats, first_stride in _STAGES:
        for r in range(repeats):
            block_index += 1
            stride = first_stride if r == 0 else 1
            in_c = b.cursor.c
            use_residual = stride == 1 and in_c == channels
            shortcut = b.fork() if use_residual else None
            b.pw(f"b{block_index}_expand", n=in_c * t)
            b.dw(f"b{block_index}_dw", f=kernel, s=stride, p=(kernel - 1) // 2)
            b.pw(f"b{block_index}_project", n=channels)
            if shortcut is not None:
                b.add_residual(shortcut)
    b.pw("head", n=1280)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
