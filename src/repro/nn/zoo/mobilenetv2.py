"""MobileNetV2 (Sandler et al., CVPR 2018) — 53 memory-managed layers.

Count per Table 2: stem conv + first bottleneck (no expansion: DW + PW) +
16 expanded bottlenecks (expand PW + DW + project PW) + head PW +
classifier FC = 1 + 2 + 48 + 1 + 1 = 53.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..model import Model

#: (expansion factor t, output channels c, repeats n, first stride s)
_STAGES = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def build_mobilenetv2(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct MobileNetV2 (width multiplier 1.0)."""
    b = ModelBuilder("MobileNetV2", (input_size, input_size, 3))
    b.conv("conv1", f=3, n=32, s=2, p=1)
    block_index = 0
    for t, channels, repeats, first_stride in _STAGES:
        for r in range(repeats):
            block_index += 1
            stride = first_stride if r == 0 else 1
            in_c = b.cursor.c
            use_residual = stride == 1 and in_c == channels
            shortcut = b.fork() if use_residual else None
            if t != 1:
                b.pw(f"b{block_index}_expand", n=in_c * t)
            b.dw(f"b{block_index}_dw", f=3, s=stride, p=1)
            b.pw(f"b{block_index}_project", n=channels)
            if shortcut is not None:
                b.add_residual(shortcut)
    b.pw("head", n=1280)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
