"""MobileNet v1 (Howard et al., 2017) — 28 memory-managed layers.

Count per Table 2: stem conv + 13 depth-wise-separable blocks (DW + PW each)
+ classifier FC = 1 + 26 + 1 = 28.
"""

from __future__ import annotations

from ..builder import ModelBuilder
from ..model import Model

#: (stride of the depth-wise conv, point-wise output channels) per block.
_BLOCKS = (
    (1, 64),
    (2, 128),
    (1, 128),
    (2, 256),
    (1, 256),
    (2, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (1, 512),
    (2, 1024),
    (1, 1024),
)


def build_mobilenet(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct MobileNet v1 (width multiplier 1.0)."""
    b = ModelBuilder("MobileNet", (input_size, input_size, 3))
    b.conv("conv1", f=3, n=32, s=2, p=1)
    for i, (stride, channels) in enumerate(_BLOCKS, start=1):
        b.dw(f"dw{i}", f=3, s=stride, p=1)
        b.pw(f"pw{i}", n=channels)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
