"""GoogLeNet (Szegedy et al., CVPR 2015) — 64 memory-managed layers.

Count per Table 2: conv1 + conv2-reduce + conv2 (3) + 9 inception modules of
6 convolutions each (54) + two auxiliary classifiers of 3 layers each (6) +
classifier FC (1) = 64.  Branch layers are flattened into serialized
execution order, matching the paper's layer-by-layer model.
"""

from __future__ import annotations

from ..builder import ModelBuilder, Tensor
from ..model import Model

#: Inception configs: name -> (n1x1, (r3x3, n3x3), (r5x5, n5x5), pool_proj)
_INCEPTION = (
    ("3a", 64, (96, 128), (16, 32), 32),
    ("3b", 128, (128, 192), (32, 96), 64),
    ("pool",),
    ("4a", 192, (96, 208), (16, 48), 64),
    ("4b", 160, (112, 224), (24, 64), 64),
    ("4c", 128, (128, 256), (24, 64), 64),
    ("4d", 112, (144, 288), (32, 64), 64),
    ("4e", 256, (160, 320), (32, 128), 128),
    ("pool",),
    ("5a", 256, (160, 320), (32, 128), 128),
    ("5b", 384, (192, 384), (48, 128), 128),
)

#: Modules after which an auxiliary classifier hangs (original GoogLeNet).
_AUX_AFTER = ("4a", "4d")


def _inception(b: ModelBuilder, name: str, n1: int, n3: tuple[int, int],
               n5: tuple[int, int], pool_proj: int) -> None:
    entry = b.fork()
    outs: list[Tensor] = []

    b.goto(entry)
    outs.append(b.pw(f"inc{name}_1x1", n=n1))

    b.goto(entry)
    b.pw(f"inc{name}_3x3r", n=n3[0])
    outs.append(b.conv(f"inc{name}_3x3", f=3, n=n3[1], p=1))

    b.goto(entry)
    b.pw(f"inc{name}_5x5r", n=n5[0])
    outs.append(b.conv(f"inc{name}_5x5", f=5, n=n5[1], p=2))

    b.goto(entry)
    b.maxpool(3, 1, p=1)
    outs.append(b.pw(f"inc{name}_pool", n=pool_proj))

    b.concat(outs)


def _aux_classifier(b: ModelBuilder, name: str, trunk: Tensor, num_classes: int) -> None:
    b.goto(trunk)
    b.avgpool(5, 3)
    b.pw(f"aux{name}_conv", n=128)
    b.flatten()
    b.fc(f"aux{name}_fc1", n=1024)
    b.fc(f"aux{name}_fc2", n=num_classes)
    b.goto(trunk)


def build_googlenet(input_size: int = 224, num_classes: int = 1000) -> Model:
    """Construct GoogLeNet (Inception v1) with both auxiliary classifiers."""
    b = ModelBuilder("GoogLeNet", (input_size, input_size, 3))
    b.conv("conv1", f=7, n=64, s=2, p=3)
    b.maxpool(3, 2, p=1)
    b.pw("conv2_reduce", n=64)
    b.conv("conv2", f=3, n=192, p=1)
    b.maxpool(3, 2, p=1)
    for cfg in _INCEPTION:
        if cfg[0] == "pool":
            b.maxpool(3, 2, p=1)
            continue
        name, n1, n3, n5, pp = cfg
        _inception(b, name, n1, n3, n5, pp)
        if name in _AUX_AFTER:
            _aux_classifier(b, name, b.fork(), num_classes)
    b.global_avgpool()
    b.fc("fc", n=num_classes)
    return b.build()
