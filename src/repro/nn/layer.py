"""Layer description: the hyperparameters of Table 1 in the paper.

A :class:`LayerSpec` is self-contained — it records its own input extents, so
models with branches (GoogLeNet inception modules) or residual connections
(ResNet18, serialized per the paper's layer-by-layer execution) are simply a
flat list of layers, each knowing the shapes it consumes and produces.

Element counts are the currency of the whole library: the policies and the
estimators reason in elements and convert to bytes only through an
:class:`~repro.arch.AcceleratorSpec`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..arch.bounds import (
    MAX_CHANNELS,
    MAX_FEATURE_DIM,
    MAX_KERNEL_DIM,
    MAX_LAYER_MACS,
    MAX_PADDING,
    MAX_STRIDE,
    MAX_TENSOR_ELEMS,
)


class LayerKind(enum.Enum):
    """Layer types appearing in Table 2 of the paper."""

    CONV = "CV"  #: standard convolution
    DEPTHWISE = "DW"  #: depth-wise convolution (one 2-D filter per channel)
    POINTWISE = "PW"  #: 1×1 convolution
    FC = "FC"  #: fully connected
    PROJECTION = "PL"  #: 1×1 projection shortcut (ResNet downsample)

    @property
    def is_depthwise(self) -> bool:
        return self is LayerKind.DEPTHWISE


def conv_out_extent(in_extent: int, filt: int, stride: int, pad: int) -> int:
    """Output spatial extent of a strided, padded convolution."""
    out = (in_extent + 2 * pad - filt) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces empty output: in={in_extent} f={filt} "
            f"s={stride} p={pad}"
        )
    return out


@dataclass(frozen=True)
class LayerSpec:
    """One fully-connected or convolutional layer (Table 1 hyperparameters).

    Attributes
    ----------
    name:
        Unique layer name within its model (e.g. ``"conv2_1a"``).
    kind:
        Layer type; see :class:`LayerKind`.
    in_h, in_w:
        ifmap height / width (``I_H``, ``I_W``), *unpadded*.
    in_c:
        Number of ifmap (= filter) channels (``C_I``).
    f_h, f_w:
        Filter height / width (``F_H``, ``F_W``).
    num_filters:
        Number of 3-D filters (``F#``).  For depth-wise layers the paper
        treats the layer as having a *single* grouped filter of shape
        ``F_H×F_W×C_I``; construct those with ``num_filters=1`` (the
        constructor enforces it) and the output channel count equals
        ``in_c``.
    stride:
        Convolution stride (``S``), identical in both spatial dimensions.
    padding:
        Symmetric zero padding (``P``) added on every spatial border.
    """

    name: str
    kind: LayerKind
    in_h: int
    in_w: int
    in_c: int
    f_h: int
    f_w: int
    num_filters: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        for field_name in ("in_h", "in_w", "in_c", "f_h", "f_w", "num_filters", "stride"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{self.name}: {field_name} must be positive, got {value}")
        if self.padding < 0:
            raise ValueError(f"{self.name}: padding must be non-negative")
        if self.f_h > self.in_h + 2 * self.padding or self.f_w > self.in_w + 2 * self.padding:
            raise ValueError(f"{self.name}: filter larger than padded input")
        if self.kind is LayerKind.DEPTHWISE and self.num_filters != 1:
            raise ValueError(
                f"{self.name}: depth-wise layers are modeled as a single "
                f"grouped filter (paper §5.1); got num_filters={self.num_filters}"
            )
        if self.kind in (LayerKind.POINTWISE, LayerKind.PROJECTION, LayerKind.FC):
            if self.f_h != 1 or self.f_w != 1:
                raise ValueError(f"{self.name}: {self.kind.value} layers must have 1×1 filters")
        if self.kind is LayerKind.FC and (self.in_h != 1 or self.in_w != 1):
            raise ValueError(f"{self.name}: FC layers must have 1×1 spatial input")
        # Trigger output-shape validation eagerly so bad specs fail fast.
        conv_out_extent(self.in_h, self.f_h, self.stride, self.padding)
        conv_out_extent(self.in_w, self.f_w, self.stride, self.padding)
        # Supported-spec-space ceilings (repro.arch.bounds): the R070
        # overflow prover guarantees the planner's int64 closed forms
        # only for layers inside them, so an oversized layer must fail
        # loudly here rather than wrap silently there.
        for field_name, cap in (
            ("in_h", MAX_FEATURE_DIM),
            ("in_w", MAX_FEATURE_DIM),
            ("in_c", MAX_CHANNELS),
            ("f_h", MAX_KERNEL_DIM),
            ("f_w", MAX_KERNEL_DIM),
            ("num_filters", MAX_CHANNELS),
            ("stride", MAX_STRIDE),
            ("padding", MAX_PADDING),
        ):
            value = getattr(self, field_name)
            if value > cap:
                raise ValueError(
                    f"{self.name}: {field_name} must be at most {cap}, got {value}"
                )
        largest_tensor = max(
            self.ifmap_padded_elems, self.filter_elems, self.ofmap_elems
        )
        if largest_tensor > MAX_TENSOR_ELEMS:
            raise ValueError(
                f"{self.name}: tensor footprint {largest_tensor} elems exceeds "
                f"the supported bound {MAX_TENSOR_ELEMS}"
            )
        if self.macs > MAX_LAYER_MACS:
            raise ValueError(
                f"{self.name}: {self.macs} MACs exceed the supported bound "
                f"{MAX_LAYER_MACS}"
            )

    # ------------------------------------------------------------------
    # Derived shapes
    # ------------------------------------------------------------------

    @property
    def out_h(self) -> int:
        """ofmap height (``O_H``)."""
        return conv_out_extent(self.in_h, self.f_h, self.stride, self.padding)

    @property
    def out_w(self) -> int:
        """ofmap width (``O_W``)."""
        return conv_out_extent(self.in_w, self.f_w, self.stride, self.padding)

    @property
    def out_c(self) -> int:
        """ofmap channels (``C_O``): ``F#`` for dense layers, ``C_I`` for DW."""
        return self.in_c if self.kind.is_depthwise else self.num_filters

    @property
    def padded_h(self) -> int:
        """ifmap height including zero padding."""
        return self.in_h + 2 * self.padding

    @property
    def padded_w(self) -> int:
        """ifmap width including zero padding."""
        return self.in_w + 2 * self.padding

    # ------------------------------------------------------------------
    # Element counts
    # ------------------------------------------------------------------

    @property
    def ifmap_elems(self) -> int:
        """ifmap footprint in elements (unpadded; used for residency)."""
        return self.in_h * self.in_w * self.in_c

    @property
    def ifmap_padded_elems(self) -> int:
        """ifmap footprint in elements including padding (used for traffic)."""
        return self.padded_h * self.padded_w * self.in_c

    @property
    def filter_elems(self) -> int:
        """Total filter footprint in elements."""
        if self.kind.is_depthwise:
            return self.f_h * self.f_w * self.in_c
        return self.f_h * self.f_w * self.in_c * self.num_filters

    @property
    def filter_elems_per_filter(self) -> int:
        """Elements of a single 3-D filter (the whole grouped filter for DW)."""
        return self.f_h * self.f_w * self.in_c

    @property
    def ofmap_elems(self) -> int:
        """ofmap footprint in elements."""
        return self.out_h * self.out_w * self.out_c

    @property
    def total_elems(self) -> int:
        """Whole-layer working set (intra-layer reuse residency)."""
        return self.ifmap_elems + self.filter_elems + self.ofmap_elems

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations needed to compute the layer."""
        if self.kind.is_depthwise:
            return self.out_h * self.out_w * self.in_c * self.f_h * self.f_w
        return self.out_h * self.out_w * self.out_c * self.f_h * self.f_w * self.in_c

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.name}[{self.kind.value}] "
            f"{self.in_h}x{self.in_w}x{self.in_c} "
            f"-> {self.out_h}x{self.out_w}x{self.out_c} "
            f"(f={self.f_h}x{self.f_w}, n={self.num_filters}, s={self.stride}, p={self.padding})"
        )
