"""Builder DSL for describing CNNs layer by layer.

The zoo models (Table 2 of the paper) are written against this builder.  It
tracks the current tensor shape, flattens branching topologies (inception
modules) into the paper's serialized layer-by-layer execution order, and
records which consecutive layers form direct producer→consumer pairs — the
prerequisite for inter-layer reuse (§5.4).

Design notes
------------
* Pooling, activation and batch-norm operations are not memory-managed
  layers in the paper (Table 2 counts only CV/DW/PW/FC/PL); the builder
  models pooling as a shape transformation that *breaks* the
  producer→consumer chain (the pooled tensor is no longer byte-identical to
  the previous ofmap).
* Residual adds and branch fan-outs likewise break the chain: the next
  layer's ifmap is not exactly the previous layer's ofmap.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layer import LayerKind, LayerSpec, conv_out_extent
from .model import Model, make_model


@dataclass(frozen=True)
class Tensor:
    """A point in the network: shape plus provenance for chain detection."""

    h: int
    w: int
    c: int
    #: Index of the layer that produced this tensor, or ``None`` if it came
    #: from the input, a pooling op, a concat or a residual add.
    producer: int | None = None


def same_padding(filt: int) -> int:
    """Symmetric padding that preserves spatial extent at stride 1."""
    return (filt - 1) // 2


class ModelBuilder:
    """Incrementally constructs a :class:`~repro.nn.model.Model`."""

    def __init__(self, name: str, input_shape: tuple[int, int, int]) -> None:
        h, w, c = input_shape
        self.name = name
        self._layers: list[LayerSpec] = []
        self._cursor = Tensor(h, w, c)
        #: producer layer index -> number of layers consuming its tensor
        self._consumers: dict[int, int] = {}
        #: for each emitted layer, the producer index of the tensor it read
        self._consumed_producer: list[int | None] = []
        self._auto_index = 0

    # ------------------------------------------------------------------
    # Cursor management (branches / residuals)
    # ------------------------------------------------------------------

    @property
    def cursor(self) -> Tensor:
        """The tensor the next layer would consume."""
        return self._cursor

    def fork(self) -> Tensor:
        """Snapshot the current tensor so several branches can start here."""
        return self._cursor

    def goto(self, tensor: Tensor) -> None:
        """Rewind the cursor to a previously forked tensor."""
        self._cursor = tensor

    def concat(self, tensors: list[Tensor]) -> None:
        """Channel-concatenate branch outputs (inception join)."""
        if not tensors:
            raise ValueError("concat needs at least one tensor")
        h, w = tensors[0].h, tensors[0].w
        for t in tensors:
            if (t.h, t.w) != (h, w):
                raise ValueError(
                    f"{self.name}: concat spatial mismatch "
                    f"{(t.h, t.w)} vs {(h, w)}"
                )
        self._cursor = Tensor(h, w, sum(t.c for t in tensors))

    def add_residual(self, shortcut: Tensor) -> None:
        """Element-wise residual add; breaks the producer→consumer chain."""
        cur = self._cursor
        if (cur.h, cur.w, cur.c) != (shortcut.h, shortcut.w, shortcut.c):
            raise ValueError(
                f"{self.name}: residual shape mismatch "
                f"{(cur.h, cur.w, cur.c)} vs {(shortcut.h, shortcut.w, shortcut.c)}"
            )
        self._cursor = Tensor(cur.h, cur.w, cur.c)

    # ------------------------------------------------------------------
    # Layers
    # ------------------------------------------------------------------

    def _emit(self, spec: LayerSpec) -> Tensor:
        index = len(self._layers)
        self._consumed_producer.append(self._cursor.producer)
        if self._cursor.producer is not None:
            self._consumers[self._cursor.producer] = (
                self._consumers.get(self._cursor.producer, 0) + 1
            )
        self._layers.append(spec)
        self._cursor = Tensor(spec.out_h, spec.out_w, spec.out_c, producer=index)
        return self._cursor

    def _name(self, given: str | None, prefix: str) -> str:
        if given is not None:
            return given
        self._auto_index += 1
        return f"{prefix}{self._auto_index}"

    def conv(
        self,
        name: str | None = None,
        *,
        f: int,
        n: int,
        s: int = 1,
        p: int | None = None,
    ) -> Tensor:
        """Standard convolution with ``n`` filters of spatial size ``f×f``.

        ``p=None`` selects 'same'-style symmetric padding for odd filters.
        """
        cur = self._cursor
        pad = same_padding(f) if p is None else p
        return self._emit(
            LayerSpec(
                name=self._name(name, "conv"),
                kind=LayerKind.CONV,
                in_h=cur.h,
                in_w=cur.w,
                in_c=cur.c,
                f_h=f,
                f_w=f,
                num_filters=n,
                stride=s,
                padding=pad,
            )
        )

    def dw(
        self,
        name: str | None = None,
        *,
        f: int = 3,
        s: int = 1,
        p: int | None = None,
    ) -> Tensor:
        """Depth-wise convolution (single grouped filter, C_O = C_I)."""
        cur = self._cursor
        pad = same_padding(f) if p is None else p
        return self._emit(
            LayerSpec(
                name=self._name(name, "dw"),
                kind=LayerKind.DEPTHWISE,
                in_h=cur.h,
                in_w=cur.w,
                in_c=cur.c,
                f_h=f,
                f_w=f,
                num_filters=1,
                stride=s,
                padding=pad,
            )
        )

    def pw(self, name: str | None = None, *, n: int, s: int = 1) -> Tensor:
        """Point-wise (1×1) convolution with ``n`` filters."""
        cur = self._cursor
        return self._emit(
            LayerSpec(
                name=self._name(name, "pw"),
                kind=LayerKind.POINTWISE,
                in_h=cur.h,
                in_w=cur.w,
                in_c=cur.c,
                f_h=1,
                f_w=1,
                num_filters=n,
                stride=s,
                padding=0,
            )
        )

    def projection(self, name: str | None = None, *, n: int, s: int = 1) -> Tensor:
        """1×1 projection shortcut (ResNet downsample, kind PL)."""
        cur = self._cursor
        return self._emit(
            LayerSpec(
                name=self._name(name, "proj"),
                kind=LayerKind.PROJECTION,
                in_h=cur.h,
                in_w=cur.w,
                in_c=cur.c,
                f_h=1,
                f_w=1,
                num_filters=n,
                stride=s,
                padding=0,
            )
        )

    def fc(self, name: str | None = None, *, n: int) -> Tensor:
        """Fully-connected layer over a flattened 1×1×C input."""
        cur = self._cursor
        if (cur.h, cur.w) != (1, 1):
            raise ValueError(
                f"{self.name}: FC layer needs a 1x1 spatial input; call "
                f"global_avgpool()/flatten() first (have {cur.h}x{cur.w})"
            )
        return self._emit(
            LayerSpec(
                name=self._name(name, "fc"),
                kind=LayerKind.FC,
                in_h=1,
                in_w=1,
                in_c=cur.c,
                f_h=1,
                f_w=1,
                num_filters=n,
                stride=1,
                padding=0,
            )
        )

    # ------------------------------------------------------------------
    # Shape-only operations (not memory-managed layers)
    # ------------------------------------------------------------------

    def maxpool(self, f: int, s: int | None = None, p: int = 0) -> Tensor:
        """Max pooling; shape change only, breaks the reuse chain."""
        return self._pool(f, s, p)

    def avgpool(self, f: int, s: int | None = None, p: int = 0) -> Tensor:
        """Average pooling; shape change only, breaks the reuse chain."""
        return self._pool(f, s, p)

    def _pool(self, f: int, s: int | None, p: int) -> Tensor:
        cur = self._cursor
        stride = f if s is None else s
        self._cursor = Tensor(
            conv_out_extent(cur.h, f, stride, p),
            conv_out_extent(cur.w, f, stride, p),
            cur.c,
        )
        return self._cursor

    def global_avgpool(self) -> Tensor:
        """Global average pooling to 1×1×C."""
        cur = self._cursor
        self._cursor = Tensor(1, 1, cur.c)
        return self._cursor

    def flatten(self) -> Tensor:
        """Flatten H×W×C to 1×1×(H·W·C) ahead of an FC layer."""
        cur = self._cursor
        self._cursor = Tensor(1, 1, cur.h * cur.w * cur.c)
        return self._cursor

    # ------------------------------------------------------------------

    def build(self) -> Model:
        """Finalize into an immutable :class:`~repro.nn.model.Model`.

        Layer ``i`` forms a producer→consumer pair with layer ``i+1`` when
        layer ``i+1`` read exactly the tensor layer ``i`` produced and no
        other layer (branch, residual) read it too.
        """
        pairs = [
            producer
            for consumer, producer in enumerate(self._consumed_producer)
            if producer is not None
            and producer == consumer - 1
            and self._consumers.get(producer, 0) == 1
        ]
        return make_model(self.name, self._layers, pairs)
