"""A model is an ordered list of layers executed layer by layer.

The paper executes networks layer by layer with residual connections
serialized (§4), so the execution order is a flat sequence.  Branching
topologies (inception modules) are flattened by the builder; each layer's
:class:`~repro.nn.layer.LayerSpec` carries its own input shape, so no
connectivity graph is required for the memory-management analysis.

For inter-layer reuse (§5.4) the analyzer needs to know whether consecutive
layers in the execution order form a *producer→consumer* pair (the ofmap of
layer *i* is exactly the ifmap of layer *i+1*).  :meth:`Model.feeds_next`
detects that by shape matching, which is precise for the chain-structured
parts of the zoo models and conservatively false across branch boundaries.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .layer import LayerKind, LayerSpec


@dataclass(frozen=True)
class Model:
    """An ordered collection of layers with a name.

    Attributes
    ----------
    name:
        Model name (e.g. ``"ResNet18"``).
    layers:
        Layers in execution order.
    sequential_pairs:
        Indices ``i`` such that layer ``i`` feeds layer ``i+1`` directly
        (used by the inter-layer-reuse analysis).  Computed by the builder;
        if empty, :meth:`feeds_next` falls back to shape matching.
    """

    name: str
    layers: tuple[LayerSpec, ...]
    sequential_pairs: frozenset[int] = field(default_factory=frozenset)
    #: True when ``sequential_pairs`` is authoritative (builder-produced);
    #: False for hand-assembled models, where :meth:`feeds_next` falls back
    #: to shape matching.
    explicit_pairs: bool = False

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"{self.name}: model has no layers")
        names = [layer.name for layer in self.layers]
        dupes = [n for n, c in Counter(names).items() if c > 1]
        if dupes:
            raise ValueError(f"{self.name}: duplicate layer names {dupes}")
        bad = [i for i in self.sequential_pairs if not 0 <= i < len(self.layers) - 1]
        if bad:
            raise ValueError(f"{self.name}: sequential_pairs out of range {bad}")

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, index: int) -> LayerSpec:
        return self.layers[index]

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer_kinds(self) -> tuple[LayerKind, ...]:
        """Distinct layer kinds present, in Table 2 declaration order."""
        seen: dict[LayerKind, None] = {}
        for layer in self.layers:
            seen.setdefault(layer.kind, None)
        order = [
            LayerKind.CONV,
            LayerKind.DEPTHWISE,
            LayerKind.POINTWISE,
            LayerKind.FC,
            LayerKind.PROJECTION,
        ]
        return tuple(k for k in order if k in seen)

    def kind_histogram(self) -> dict[LayerKind, int]:
        """Number of layers of each kind."""
        hist: Counter[LayerKind] = Counter(layer.kind for layer in self.layers)
        return dict(hist)

    def feeds_next(self, index: int) -> bool:
        """Whether layer ``index`` directly produces the ifmap of ``index+1``.

        If the builder recorded explicit sequential pairs, trust those;
        otherwise fall back to an exact output→input shape match.
        """
        if index < 0 or index >= len(self.layers) - 1:
            return False
        if self.explicit_pairs:
            return index in self.sequential_pairs
        producer, consumer = self.layers[index], self.layers[index + 1]
        return (
            producer.out_h == consumer.in_h
            and producer.out_w == consumer.in_w
            and producer.out_c == consumer.in_c
        )

    @property
    def total_macs(self) -> int:
        """MACs for one inference at batch 1."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_weight_elems(self) -> int:
        """Total model weight footprint in elements."""
        return sum(layer.filter_elems for layer in self.layers)

    def find(self, name: str) -> LayerSpec:
        """Look up a layer by name."""
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"{self.name}: no layer named {name!r}")


def make_model(
    name: str,
    layers: Sequence[LayerSpec],
    sequential_pairs: Sequence[int] | None = None,
) -> Model:
    """Convenience constructor accepting plain sequences.

    Pass ``sequential_pairs=None`` for a hand-assembled model (producer→
    consumer detection falls back to shape matching); pass a sequence —
    possibly empty — when the pairs are known exactly.
    """
    return Model(
        name=name,
        layers=tuple(layers),
        sequential_pairs=frozenset(sequential_pairs or ()),
        explicit_pairs=sequential_pairs is not None,
    )
