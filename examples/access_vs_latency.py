"""Objective trade-off study: optimize for accesses or for latency?

The paper's §5.3 question: the same unified buffer can hold data for
*reuse* (fewer off-chip accesses) or reserve space for *prefetching*
(lower latency).  This example sweeps every GLB size for one model and
shows what switching the objective costs on the other metric, plus the
effect of disabling prefetching outright (Fig. 10).

Run:  python examples/access_vs_latency.py [model]
"""

import sys

from repro import AcceleratorSpec, Objective, plan_heterogeneous
from repro.arch import PAPER_GLB_SIZES, to_mib
from repro.nn.zoo import get_model


def main(model_name: str = "MobileNet") -> None:
    model = get_model(model_name)
    print(f"{model.name}: accesses-objective vs latency-objective Het schemes\n")
    header = (
        f"{'GLB':>7} | {'acc(Het_a)':>10} {'acc(Het_l)':>10} {'penalty':>8} | "
        f"{'lat(Het_a)':>11} {'lat(Het_l)':>11} {'benefit':>8} | {'pf cov':>6}"
    )
    print(header)
    print("-" * len(header))
    for glb in PAPER_GLB_SIZES:
        spec = AcceleratorSpec(glb_bytes=glb)
        het_a = plan_heterogeneous(model, spec, Objective.ACCESSES)
        het_l = plan_heterogeneous(model, spec, Objective.LATENCY)
        acc_pen = 100 * (het_l.total_accesses_bytes / het_a.total_accesses_bytes - 1)
        lat_ben = 100 * (1 - het_l.total_latency_cycles / het_a.total_latency_cycles)
        print(
            f"{glb // 1024:5d}kB | "
            f"{to_mib(het_a.total_accesses_bytes):8.2f}MB "
            f"{to_mib(het_l.total_accesses_bytes):8.2f}MB "
            f"{acc_pen:+7.1f}% | "
            f"{het_a.total_latency_cycles:10.0f}c "
            f"{het_l.total_latency_cycles:10.0f}c "
            f"{lat_ben:+7.1f}% | "
            f"{het_l.prefetch_coverage:5.0%}"
        )

    print("\nprefetching disabled entirely (latency objective):")
    for glb in PAPER_GLB_SIZES:
        spec = AcceleratorSpec(glb_bytes=glb)
        on = plan_heterogeneous(model, spec, Objective.LATENCY)
        off = plan_heterogeneous(model, spec, Objective.LATENCY, allow_prefetch=False)
        lat_ben = 100 * (1 - on.total_latency_cycles / off.total_latency_cycles)
        acc_pen = 100 * (on.total_accesses_bytes / off.total_accesses_bytes - 1)
        print(
            f"  {glb // 1024:5d}kB: prefetch saves {lat_ben:+5.1f}% latency "
            f"at {acc_pen:+5.1f}% accesses"
        )
    print("\n(paper Fig. 10: ~15% latency benefit; ~35% access penalty at 64 kB)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
