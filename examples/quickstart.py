"""Quickstart: manage a 64 kB scratchpad for ResNet18.

Reproduces the paper's headline experiment in a few lines: plan ResNet18
on the reference accelerator (16×16 PEs, 512 OPs/cycle, 8-bit data,
16 elements/cycle DRAM bandwidth) with a 64 kB unified global buffer,
statically verify the plan against the invariant catalog (the same checks
``repro verify`` runs), and compare against the SCALE-Sim-style
separate-buffer baselines.

Run:  python examples/quickstart.py
"""

from repro import AcceleratorSpec, Objective
from repro.arch import kib, to_mib
from repro.manager import MemoryManager
from repro.nn.zoo import get_model


def main() -> None:
    spec = AcceleratorSpec(glb_bytes=kib(64))
    manager = MemoryManager(spec)
    model = get_model("ResNet18")

    comparison = manager.compare_with_baseline(model, Objective.ACCESSES)
    plan = comparison.plan

    print(f"model: {model.name} ({model.num_layers} layers, "
          f"{model.total_macs / 1e9:.2f} GMACs)")
    print(f"GLB:   {spec.glb_bytes // 1024} kB unified scratchpad\n")

    print("per-layer policy assignment (heterogeneous scheme):")
    for assignment in plan:
        tiles = assignment.evaluation.plan.tiles
        print(
            f"  {assignment.layer.name:10s} {assignment.label:8s} "
            f"mem={assignment.memory_bytes / 1024:6.1f} kB "
            f"(i/f/o tiles: {tiles.ifmap}/{tiles.filters}/{tiles.ofmap} elems)"
        )

    # Static plan verification (docs/verification.md): capacity, traffic
    # and MAC conservation, donation chains, GLB address-map realizability.
    # `manager.plan(..., verify=True)` would raise instead of reporting.
    report = manager.verify(plan)
    print(f"\nstatic verification: {report.render()}")
    report.raise_if_failed()

    print("\noff-chip accesses:")
    for label, result in comparison.baselines.items():
        print(f"  baseline {label}: {to_mib(result.total_traffic_bytes):7.1f} MB")
    print(f"  proposed Het    : {to_mib(plan.total_accesses_bytes):7.1f} MB")
    print(
        f"\nreduction vs best baseline: "
        f"{comparison.accesses_reduction_pct:.1f}% "
        f"(paper reports 79.8% for ResNet18 at 64 kB)"
    )

    # The numbers above price DRAM at the paper's flat 16 elements/cycle.
    # Re-time one layer against the banked row-buffer model (docs/dram.md)
    # to see what that abstraction hides.
    from repro import DEFAULT_DDR4_SPEC
    from repro.estimators import schedule_latency

    first = plan.assignments[0]
    schedule = first.evaluation.plan.schedule
    from dataclasses import replace

    flat_lat = schedule_latency(schedule, spec, first.prefetch, layer=first.layer)
    print(f"\nDRAM timing for {first.layer.name} ({first.label}):")
    print(f"  flat 16 B/cycle model        : {flat_lat.total_cycles:12.1f} cycles")
    for mapping in ("row_major", "bank_interleaved"):
        banked = spec.with_dram(replace(DEFAULT_DDR4_SPEC, mapping=mapping))
        lat = schedule_latency(schedule, banked, first.prefetch, layer=first.layer)
        overhead = (lat.total_cycles / flat_lat.total_cycles - 1) * 100
        print(f"  banked, {mapping:20s} : {lat.total_cycles:12.1f} cycles "
              f"(+{overhead:.2f}% from row misses)")


if __name__ == "__main__":
    main()
