"""Map the accesses-vs-latency Pareto frontier (extension).

The paper optimizes accesses *or* latency and shows the extremes trade
off (Fig. 9).  Our weighted planner sweeps the space between them,
exposing intermediate schemes — often one captures most of the latency
benefit for a fraction of the access penalty.

Run:  python examples/pareto_frontier.py [model] [glb_kb]
"""

import sys

from repro.analyzer import pareto_frontier
from repro.arch import AcceleratorSpec, kib, to_mib
from repro.nn.zoo import get_model
from repro.report import sparkline


def main(model_name: str = "MobileNet", glb_kb: str = "64") -> None:
    model = get_model(model_name)
    spec = AcceleratorSpec(glb_bytes=kib(int(glb_kb)))
    frontier = pareto_frontier(model, spec, num_points=21)

    print(f"{model.name} @ {glb_kb} kB: accesses-vs-latency frontier "
          f"({len(frontier)} non-dominated plans)\n")
    print(f"{'alpha':>6} | {'accesses':>10} | {'latency':>12} | policies")
    print("-" * 72)
    base_acc = frontier[0].accesses_bytes
    base_lat = frontier[-1].latency_cycles
    for p in frontier:
        acc_pen = 100 * (p.accesses_bytes / base_acc - 1)
        lat_pen = 100 * (p.latency_cycles / base_lat - 1)
        fams = ",".join(p.plan.policy_families_used)
        print(
            f"{p.alpha:6.2f} | {to_mib(p.accesses_bytes):8.2f}MB "
            f"(+{acc_pen:4.1f}%) | {p.latency_cycles:10.0f}c "
            f"(+{lat_pen:4.1f}%) | {fams}"
        )

    print("\nlatency trend along the frontier: "
          + sparkline([p.latency_cycles for p in frontier]))
    print("accesses trend along the frontier: "
          + sparkline([p.accesses_bytes for p in frontier]))

    # The knee: the point minimizing the product of normalized penalties.
    knee = min(
        frontier,
        key=lambda p: (p.accesses_bytes / base_acc) * (p.latency_cycles / base_lat),
    )
    print(
        f"\nknee point: alpha={knee.alpha:.2f} — "
        f"{to_mib(knee.accesses_bytes):.2f} MB, {knee.latency_cycles:,.0f} cycles"
    )


if __name__ == "__main__":
    main(*sys.argv[1:3])
