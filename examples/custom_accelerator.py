"""Bring your own network and accelerator.

The library is not tied to the paper's six models or its 16×16 reference
design.  This example:

1. describes a small custom edge-vision CNN with the builder DSL,
2. saves/loads it through the JSON model-description format (the paper's
   Fig. 4 interface for externally translated models),
3. plans it on a custom accelerator (32×32 PEs, 16-bit data, 96 kB GLB),
4. exports the execution plan as the JSON schedule a compiler backend
   (e.g. a TVM integration, the paper's future work) would consume.

Run:  python examples/custom_accelerator.py
"""

import tempfile
from pathlib import Path

from repro import AcceleratorSpec, Objective
from repro.analyzer import save_plan
from repro.manager import MemoryManager
from repro.nn import ModelBuilder, load_model, save_model


def build_edge_cnn():
    """A compact detector backbone: stem + separable blocks + head."""
    b = ModelBuilder("EdgeCNN", (160, 160, 3))
    b.conv("stem", f=3, n=24, s=2)
    for i, (channels, stride) in enumerate(
        [(48, 2), (48, 1), (96, 2), (96, 1), (192, 2), (192, 1)], start=1
    ):
        b.dw(f"block{i}_dw", f=3, s=stride)
        b.pw(f"block{i}_pw", n=channels)
    b.conv("head_context", f=3, n=256)
    b.global_avgpool()
    b.fc("classifier", n=64)
    return b.build()


def main() -> None:
    model = build_edge_cnn()
    spec = AcceleratorSpec(
        pe_rows=32,
        pe_cols=32,
        ops_per_cycle=2048,
        data_width_bits=16,
        glb_bytes=96 * 1024,
        dram_bandwidth_elems_per_cycle=32,
    )
    manager = MemoryManager(spec)

    with tempfile.TemporaryDirectory() as tmp:
        model_path = Path(tmp) / "edge_cnn.json"
        save_model(model, model_path)  # the Fig. 4 model-description file
        loaded = load_model(model_path)
        assert loaded == model

        plan = manager.plan(loaded, Objective.LATENCY, interlayer=True)
        plan_path = Path(tmp) / "edge_cnn_plan.json"
        save_plan(plan, plan_path)

        print(f"model: {model.name}, {model.num_layers} layers, "
              f"{model.total_macs / 1e6:.1f} MMACs")
        print(f"accelerator: {spec.pe_rows}x{spec.pe_cols} PEs, "
              f"{spec.data_width_bits}-bit, GLB {spec.glb_bytes // 1024} kB\n")
        print(f"{'layer':16s} {'policy':8s} {'mem kB':>7} {'donates':>7}")
        for a in plan:
            print(
                f"{a.layer.name:16s} {a.label:8s} "
                f"{a.memory_bytes / 1024:7.1f} {'yes' if a.donates else '-':>7}"
            )
        print(f"\ntotal off-chip traffic: {plan.total_accesses_bytes / 1024:.0f} kB")
        print(f"estimated latency:      {plan.total_latency_cycles:.0f} cycles")
        print(f"inter-layer reuse:      {plan.interlayer_pairs_applied}/"
              f"{plan.interlayer_pairs_possible} pairs")
        print(f"\ncompiler schedule written to {plan_path.name} "
              f"({plan_path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
