"""Inter-layer reuse study (paper §5.4) with the joint-DP extension.

The paper enables inter-layer reuse opportunistically on top of the
per-layer policy choice.  Our library additionally implements a joint
dynamic program that co-selects policies *and* donation edges.  This
example sweeps both modes over the GLB sizes and shows where the joint
optimization finds donations the opportunistic pass cannot.

Run:  python examples/interlayer_reuse_study.py [model]
"""

import sys

from repro import AcceleratorSpec, plan_heterogeneous
from repro.arch import PAPER_GLB_SIZES, to_mib
from repro.nn.zoo import get_model


def main(model_name: str = "MnasNet") -> None:
    model = get_model(model_name)
    print(f"{model.name}: inter-layer reuse (het scheme, accesses objective)\n")
    header = (
        f"{'GLB':>7} | {'off (MB)':>9} | {'opportunistic':>22} | {'joint DP':>22}"
    )
    print(header)
    print("-" * len(header))
    for glb in PAPER_GLB_SIZES:
        spec = AcceleratorSpec(glb_bytes=glb)
        base = plan_heterogeneous(model, spec)
        opp = plan_heterogeneous(model, spec, interlayer=True)
        joint = plan_heterogeneous(
            model, spec, interlayer=True, interlayer_mode="joint"
        )

        def cell(plan):
            saving = 100 * (1 - plan.total_accesses_bytes / base.total_accesses_bytes)
            return (
                f"{to_mib(plan.total_accesses_bytes):6.2f}MB "
                f"(-{saving:4.1f}%, cov {plan.interlayer_coverage:4.0%})"
            )

        print(
            f"{glb // 1024:5d}kB | {to_mib(base.total_accesses_bytes):7.2f} | "
            f"{cell(opp)} | {cell(joint)}"
        )
    print(
        "\n(paper Fig. 11 for MnasNet: coverage 0% -> 98% from 64 kB to 1 MB, "
        "70% access benefit at 1 MB)"
    )


if __name__ == "__main__":
    main(*sys.argv[1:2])
