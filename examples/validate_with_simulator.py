"""Validate the lightweight estimators against the step-level simulator.

The paper's estimators must be trustworthy for Algorithm 1's decisions to
be meaningful.  This example takes a plan, *executes* it step by step
through the event-driven simulator (DMA port + PE array), and compares:

* off-chip traffic — must match the estimates exactly;
* latency — must match the closed-form timeline;

then prints the head of the DRAM transaction trace for one layer.

Run:  python examples/validate_with_simulator.py
"""

from repro import AcceleratorSpec, plan_heterogeneous
from repro.arch import kib
from repro.nn.zoo import get_model
from repro.sim import TraceEvent, crosscheck_plan, simulate_assignment


def main() -> None:
    spec = AcceleratorSpec(glb_bytes=kib(64))
    model = get_model("MobileNet")
    plan = plan_heterogeneous(model, spec)

    check, sim = crosscheck_plan(plan)
    print(f"{model.name} @ {spec.glb_bytes // 1024} kB, scheme={plan.scheme}\n")
    print(f"estimated accesses: {check.estimated_accesses_bytes:>12,} B")
    print(f"simulated accesses: {check.simulated_accesses_bytes:>12,} B"
          f"   (exact match: {check.traffic_matches})")
    print(f"estimated latency:  {check.estimated_latency_cycles:>12,.0f} cycles")
    print(f"simulated latency:  {check.simulated_latency_cycles:>12,.0f} cycles"
          f"   (rel. error: {check.latency_rel_error:.2e})")

    busiest = max(sim.layers, key=lambda l: l.dram_total_elems)
    print(f"\nbusiest layer: {busiest.name} "
          f"({busiest.dram_total_elems:,} elements over {busiest.steps} steps)")

    # Replay that one layer with trace recording on.
    assignment = next(a for a in plan if a.layer.name == busiest.name)
    trace: list[TraceEvent] = []
    simulate_assignment(assignment, spec, record_trace=trace)
    print(f"first DRAM transactions of {busiest.name} "
          f"(policy {assignment.label}):")
    for event in trace[:12]:
        print(f"  t={event.time:10.1f}  {event.kind:14s} {event.elems:8,} elems")
    print(f"  ... {len(trace) - 12} more transactions")


if __name__ == "__main__":
    main()
