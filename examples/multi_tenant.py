"""Multi-tenant scratchpad management.

The paper's introduction motivates flexible memory management with
"frequent changes in models being executed, as well as support for
multi-tenancy".  Because the unified buffer is re-planned every layer,
context switches are cheap — but not free: preempting between an
inter-layer-reuse producer and its consumer breaks the on-chip donation
and the spilled ofmap traffic comes back.

This example runs two tenants through the layer-granularity scheduler
under both disciplines and shows the fairness-vs-traffic trade, plus the
static space-partitioning alternative.

Run:  python examples/multi_tenant.py
"""

from repro import AcceleratorSpec, plan_heterogeneous
from repro.arch import kib, to_mib
from repro.nn.zoo import get_model
from repro.runtime import Discipline, Request, schedule

TENANTS = ("MnasNet", "MobileNet")
TOTAL_GLB = kib(256)


def main() -> None:
    spec = AcceleratorSpec(glb_bytes=TOTAL_GLB)
    plans = {
        name: plan_heterogeneous(get_model(name), spec, interlayer=True)
        for name in TENANTS
    }
    requests = [Request(name, plan) for name, plan in plans.items()]

    print(f"two tenants on one {TOTAL_GLB // 1024} kB accelerator: "
          f"{' + '.join(TENANTS)} (Het plans with inter-layer reuse)\n")

    for discipline in Discipline:
        result = schedule(requests, discipline)
        print(f"{discipline.value}:")
        for o in result.outcomes:
            print(
                f"  {o.name:10s} start={o.start_cycle:>10,.0f}  "
                f"turnaround={o.turnaround_cycles:>10,.0f} cyc  "
                f"traffic={to_mib(o.accesses_bytes):6.2f} MB  "
                f"broken donations={o.broken_donations}"
            )
        print(
            f"  makespan={result.makespan_cycles:,.0f} cyc, "
            f"total traffic={to_mib(result.total_accesses_bytes):.2f} MB, "
            f"mean turnaround={result.mean_turnaround_cycles:,.0f} cyc\n"
        )

    # The static alternative: give each tenant half the buffer, run truly
    # concurrently (two accelerators' worth of planning, half capacity).
    half = AcceleratorSpec(glb_bytes=TOTAL_GLB // 2)
    print("static space split (each tenant owns half the GLB):")
    for name in TENANTS:
        shared = plans[name]
        split = plan_heterogeneous(get_model(name), half, interlayer=True)
        penalty = 100 * (split.total_accesses_bytes / shared.total_accesses_bytes - 1)
        print(
            f"  {name:10s} {to_mib(split.total_accesses_bytes):6.2f} MB "
            f"({penalty:+5.1f}% vs time-shared full buffer)"
        )
    print(
        "\ntakeaway: layer-granularity time sharing keeps every tenant's\n"
        "full-buffer plan; round-robin buys fairness at the cost of broken\n"
        "inter-layer donations, while a static split costs reuse capacity\n"
        "on every layer — the flexible-buffer argument of the paper's intro."
    )


if __name__ == "__main__":
    main()
