"""Batched inference: when do weights stop costing traffic? (extension)

The paper fixes batch 1 for latency-constrained inference but describes
*global reuse* — weights staying on-chip across inputs (§2.2).  With
layer-by-layer batched execution, any layer whose policy keeps the whole
filter set resident (intra / Policy 1) amortizes its weight loads over
the batch, and the batched planner shifts the per-layer policy mix
accordingly.

Run:  python examples/batched_inference.py [model] [glb_kb]
"""

import sys

from repro.analyzer import batch_sweep, plan_batched
from repro.arch import AcceleratorSpec, kib, to_mib
from repro.nn.zoo import get_model
from repro.report import sparkline


def main(model_name: str = "MobileNetV2", glb_kb: str = "256") -> None:
    model = get_model(model_name)
    spec = AcceleratorSpec(glb_bytes=kib(int(glb_kb)))
    weights_mib = to_mib(model.total_weight_elems * spec.bytes_per_elem)
    print(
        f"{model.name} @ {glb_kb} kB — {weights_mib:.2f} MB of weights per "
        f"inference at batch 1\n"
    )

    rows = batch_sweep(model, spec, (1, 2, 4, 8, 16, 32, 64))
    print(f"{'batch':>6} | {'per-item traffic':>16} | {'per-item latency':>16} | "
          f"{'filter-resident layers':>22}")
    print("-" * 72)
    for r in rows:
        print(
            f"{r.batch:>6} | {to_mib(r.per_item_accesses_bytes):13.2f} MB | "
            f"{r.per_item_latency_cycles:13,.0f} c | "
            f"{r.weight_reuse_coverage:>21.0%}"
        )

    print("\nper-item traffic trend: "
          + sparkline([r.per_item_accesses_bytes for r in rows]))

    b1 = plan_batched(model, spec, 1)
    b64 = plan_batched(model, spec, 64)
    saved = to_mib(b1.total_accesses_bytes - b64.per_item_accesses_bytes)
    print(
        f"\nbatch-64 saves {saved:.2f} MB/item "
        f"(bounded by the {weights_mib:.2f} MB weight footprint) and the "
        f"policy mix moves from {b1.weight_reuse_coverage:.0%} to "
        f"{b64.weight_reuse_coverage:.0%} filter-resident layers."
    )


if __name__ == "__main__":
    main(*sys.argv[1:3])
