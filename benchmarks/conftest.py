"""Benchmark harness helpers.

Each benchmark regenerates one paper artifact end to end.  The experiment
layer memoizes plans (`lru_cache`), which is right for interactive use but
would let later benchmark rounds measure cache hits; ``fresh`` clears all
caches so every measured round does the full analysis.

Every benchmark session additionally emits ``BENCH_dram.json`` next to the
repository root: the wall-clock time to plan ResNet18 at a 1 MiB GLB on a
DRAM-backed spec plus the banked-DRAM simulated transfer cycles per
mapping policy.  CI uploads the file so the repo has a perf trajectory.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.experiments import common


def clear_experiment_caches() -> None:
    common.het_plan.cache_clear()
    common.hom_plan.cache_clear()
    common.baseline_results.cache_clear()


@pytest.fixture
def fresh():
    clear_experiment_caches()
    yield
    clear_experiment_caches()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark (sweeps are too heavy for
    statistical rounds; one round still yields a timing row)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _dram_benchmark_record() -> dict:
    from repro.arch import AcceleratorSpec, mib
    from repro.dram import DEFAULT_DDR4_SPEC, MAPPING_NAMES, simulate_plan_dram
    from repro.manager import MemoryManager
    from repro.nn.zoo import get_model

    spec = AcceleratorSpec(glb_bytes=mib(1)).with_dram(DEFAULT_DDR4_SPEC)
    model = get_model("ResNet18")
    start = time.perf_counter()
    plan = MemoryManager(spec).plan(model, interlayer=True)
    plan_seconds = time.perf_counter() - start
    mappings = {}
    for name in MAPPING_NAMES:
        stats = simulate_plan_dram(plan, mapping=name).total
        mappings[name] = {
            "cycles": stats.cycles,
            "ideal_cycles": stats.ideal_cycles,
            "row_hit_rate": stats.row_hit_rate,
            "energy_pj": stats.energy_pj,
        }
    return {
        "model": model.name,
        "glb_bytes": spec.glb_bytes,
        "plan_seconds": plan_seconds,
        "plan_latency_cycles": plan.total_latency_cycles,
        "dram": mappings,
    }


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_dram.json`` at the repo root after every benchmark run."""
    if exitstatus != 0 or session.config.option.collectonly:
        return
    out = Path(__file__).resolve().parent.parent / "BENCH_dram.json"
    out.write_text(json.dumps(_dram_benchmark_record(), indent=2) + "\n")
