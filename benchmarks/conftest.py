"""Benchmark harness helpers.

Each benchmark regenerates one paper artifact end to end.  The experiment
layer memoizes plans (`lru_cache`), which is right for interactive use but
would let later benchmark rounds measure cache hits; ``fresh`` clears all
caches so every measured round does the full analysis.
"""

from __future__ import annotations

import pytest

from repro.experiments import common


def clear_experiment_caches() -> None:
    common.het_plan.cache_clear()
    common.hom_plan.cache_clear()
    common.baseline_results.cache_clear()


@pytest.fixture
def fresh():
    clear_experiment_caches()
    yield
    clear_experiment_caches()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark (sweeps are too heavy for
    statistical rounds; one round still yields a timing row)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
