"""Benchmark harness helpers.

Each benchmark regenerates one paper artifact end to end.  The experiment
layer memoizes plans at two levels — an in-process ``lru_cache`` and the
persistent on-disk cache (:mod:`repro.experiments.cache`) — which is right
for interactive use but would let measured benchmark rounds hit caches.
The whole benchmark session therefore runs against an isolated temporary
cache directory, and ``fresh`` clears both levels so every measured round
does the full analysis.

Every benchmark session additionally emits two perf-trajectory artifacts
next to the repository root (CI uploads both):

* ``BENCH_dram.json`` — wall-clock time to plan ResNet18 at a 1 MiB GLB on
  a DRAM-backed spec plus the banked-DRAM simulated transfer cycles per
  mapping policy;
* ``BENCH_experiments.json`` — the experiment engine's smoke subset run
  cold and then warm through the persistent cache with ``--jobs 2``
  semantics, recording per-artifact wall time, cache hits/misses and the
  warm-over-cold speedup (outputs are asserted bit-identical);
* ``BENCH_plan.json`` — cold planning of the zoo smoke suite on the scalar
  parity-oracle path (``REPRO_SCALAR_PLANNER=1``) vs the vectorized grid
  planner, asserting byte-identical exported plans and recording the
  speedup (CI fails the job if the vectorized path is not faster).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.experiments import cache, common

#: The benchmark session never reads/writes the user's real plan cache.
_BENCH_CACHE_DIR = tempfile.mkdtemp(prefix="repro-bench-cache-")
os.environ[cache.ENV_CACHE_DIR] = _BENCH_CACHE_DIR

#: Fast artifact subset exercised by the engine perf record.
SMOKE_ARTIFACTS = ["table2", "fig1", "fig6", "fig9", "dram-sweep"]


def clear_experiment_caches() -> None:
    common.clear_in_process_caches()
    cache.clear()


@pytest.fixture
def fresh():
    clear_experiment_caches()
    yield
    clear_experiment_caches()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` once under pytest-benchmark (sweeps are too heavy for
    statistical rounds; one round still yields a timing row)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def _dram_benchmark_record() -> dict:
    from repro.arch import AcceleratorSpec, mib
    from repro.dram import DEFAULT_DDR4_SPEC, MAPPING_NAMES, simulate_plan_dram
    from repro.manager import MemoryManager
    from repro.nn.zoo import get_model

    spec = AcceleratorSpec(glb_bytes=mib(1)).with_dram(DEFAULT_DDR4_SPEC)
    model = get_model("ResNet18")
    start = time.perf_counter()
    plan = MemoryManager(spec).plan(model, interlayer=True)
    plan_seconds = time.perf_counter() - start
    mappings = {}
    for name in MAPPING_NAMES:
        stats = simulate_plan_dram(plan, mapping=name).total
        mappings[name] = {
            "cycles": stats.cycles,
            "ideal_cycles": stats.ideal_cycles,
            "row_hit_rate": stats.row_hit_rate,
            "energy_pj": stats.energy_pj,
        }
    return {
        "model": model.name,
        "glb_bytes": spec.glb_bytes,
        "plan_seconds": plan_seconds,
        "plan_latency_cycles": plan.total_latency_cycles,
        "dram": mappings,
    }


def _experiments_benchmark_record() -> dict:
    """Cold-vs-warm engine run over the smoke subset (2 workers)."""
    from repro.experiments.engine import run_experiments

    clear_experiment_caches()
    cold = run_experiments(SMOKE_ARTIFACTS, jobs=2)
    common.clear_in_process_caches()  # keep the on-disk cache warm
    warm = run_experiments(SMOKE_ARTIFACTS, jobs=2)
    identical = [t.render() for t in cold.tables] == [t.render() for t in warm.tables]
    clear_experiment_caches()
    return {
        "artifacts": SMOKE_ARTIFACTS,
        "bit_identical_warm_rerun": identical,
        "warm_speedup": (
            cold.total_seconds / warm.total_seconds if warm.total_seconds else None
        ),
        "cold": cold.bench_record(),
        "warm": warm.bench_record(),
    }


def _plan_benchmark_record() -> dict:
    """Cold-plan the zoo smoke suite, scalar oracle vs vectorized grid.

    Both passes start from a cleared per-layer evaluation memo (the memo is
    part of the vectorized design and disabled on the scalar path anyway),
    plan every (model, GLB, objective) combo via ``plan_heterogeneous`` and
    serialize the plans — asserting byte-identity before reporting speedup.
    """
    import gc

    from repro.analyzer import Objective, plan_heterogeneous, plan_to_dict
    from repro.arch import AcceleratorSpec, kib
    from repro.estimators.evaluate import clear_evaluation_memo
    from repro.nn.zoo import PAPER_MODEL_NAMES, get_model
    from repro.plancore import ENV_SCALAR_PLANNER

    # The full Fig. 5/8 planning grid: zoo × paper GLB ladder × objectives.
    combos = [
        (get_model(name), AcceleratorSpec(glb_bytes=kib(glb_kb)), objective)
        for name in PAPER_MODEL_NAMES
        for glb_kb in (64, 128, 256, 512, 1024)
        for objective in (Objective.ACCESSES, Objective.LATENCY)
    ]

    def run_suite() -> tuple[float, list[str]]:
        clear_evaluation_memo()
        # CPU time, not wall clock: planning is single-threaded CPU-bound
        # work and CI runners are noisy neighbours.  GC is paused during
        # the timed region (both paths) so heap pressure from earlier
        # benchmarks cannot skew either side.
        gc.collect()
        gc.disable()
        try:
            start = time.process_time()
            plans = [plan_heterogeneous(m, s, o) for m, s, o in combos]
            seconds = time.process_time() - start
        finally:
            gc.enable()
        # Serialization is identical work on both paths; keep it untimed.
        return seconds, [
            json.dumps(plan_to_dict(p), sort_keys=True) for p in plans
        ]

    # Untimed warm-up: the first vectorized plan in a process pays one-time
    # NumPy internals (ufunc caches etc.) that are not planning work.
    m0, s0, o0 = combos[0]
    plan_heterogeneous(m0, s0, o0)

    os.environ[ENV_SCALAR_PLANNER] = "1"
    try:
        scalar_seconds, scalar_plans = run_suite()
    finally:
        os.environ.pop(ENV_SCALAR_PLANNER, None)
    # Best of two cold passes: the suite is ~1 s vectorized, so a second
    # pass is cheap insurance against scheduler noise.
    vectorized_seconds, vectorized_plans = run_suite()
    vectorized_seconds = min(vectorized_seconds, run_suite()[0])
    identical = scalar_plans == vectorized_plans
    assert identical, "scalar and vectorized planners diverged on the smoke suite"
    return {
        "combos": len(combos),
        "glb_sizes_kb": [64, 128, 256, 512, 1024],
        "objectives": ["accesses", "latency"],
        "scalar_seconds": scalar_seconds,
        "vectorized_seconds": vectorized_seconds,
        "speedup": scalar_seconds / vectorized_seconds if vectorized_seconds else None,
        "bit_identical_plans": identical,
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the perf-trajectory JSONs at the repo root after every run."""
    if exitstatus != 0 or session.config.option.collectonly:
        return
    root = Path(__file__).resolve().parent.parent
    (root / "BENCH_dram.json").write_text(
        json.dumps(_dram_benchmark_record(), indent=2) + "\n"
    )
    (root / "BENCH_experiments.json").write_text(
        json.dumps(_experiments_benchmark_record(), indent=2) + "\n"
    )
    (root / "BENCH_plan.json").write_text(
        json.dumps(_plan_benchmark_record(), indent=2) + "\n"
    )
