"""Benchmark regenerating Figure 5: off-chip access volume per scheme.

The full grid (6 models × 5 GLB sizes × 5 schemes) is the paper's main
result; the assertions encode its headline claims:

* the proposed schemes reduce accesses most at the smallest buffer, with
  the Het reduction in the paper's band for its extreme models;
* no single fixed partition is best for every model;
* Het accesses stay nearly flat across buffer sizes.
"""

from __future__ import annotations

from collections import Counter

from repro.experiments import fig5

from conftest import run_once


def test_fig5_access_volume_grid(benchmark, fresh, capsys):
    cells = run_once(benchmark, fig5.run)
    with capsys.disabled():
        print("\n" + fig5.to_table(cells).render())

    by = {(c.model, c.glb_kb): c for c in cells}

    # Paper band at 64 kB: Het reduces accesses 43.2% (MobileNetV2) to
    # 79.8% (ResNet18) vs the baselines.
    assert 70.0 <= by[("ResNet18", 64)].reduction_vs_best_baseline("het") <= 90.0
    assert by[("MobileNetV2", 64)].reduction_vs_best_baseline("het") >= 25.0

    # Every model gains at the smallest buffer.
    for model in {c.model for c in cells}:
        assert by[(model, 64)].reduction_vs_best_baseline("het") > 25.0

    # No single fixed partition wins everywhere (paper §5.1).
    best_partitions = Counter(
        by[(model, 64)].best_baseline for model in {c.model for c in cells}
    )
    assert len(best_partitions) > 1

    # Het stays nearly flat across buffer sizes (within 10%).
    for model in {c.model for c in cells}:
        small = by[(model, 64)].accesses_mib["het"]
        large = by[(model, 1024)].accesses_mib["het"]
        assert small <= 1.10 * large

    # Hom never beats Het.
    for cell in cells:
        assert cell.accesses_mib["het"] <= cell.accesses_mib["hom"] + 1e-9
