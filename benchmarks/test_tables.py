"""Benchmarks regenerating the paper's tables (2, 3, 4).

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark prints
the regenerated artifact so the paper-vs-measured comparison is visible in
the output, and asserts the headline agreement.
"""

from __future__ import annotations

import pytest

from repro.experiments import table2, table3, table4

from conftest import run_once


def test_table2_model_characteristics(benchmark, fresh, capsys):
    rows = run_once(benchmark, table2.run)
    with capsys.disabled():
        print("\n" + table2.to_table(rows).render())
    assert all(r.num_layers == r.paper_num_layers for r in rows)


def test_table3_policy_memory_requirements(benchmark, fresh, capsys):
    rows = run_once(benchmark, table3.run)
    with capsys.disabled():
        print("\n" + table3.to_table(rows).render())
    for row in rows:
        assert row.max_kib == pytest.approx(row.paper_kib, rel=0.02)


def test_table4_policies_used_at_64kb(benchmark, fresh, capsys):
    rows = run_once(benchmark, table4.run)
    with capsys.disabled():
        print("\n" + table4.to_table(rows).render())
    for row in rows:
        # The single-transfer workhorse policies appear for every network.
        assert "policy 1" in row.policies
        assert "policy 2" in row.policies
        assert "policy 3" in row.policies
