"""Benchmark regenerating Figure 8: latency per scheme.

Headline claims asserted: the latency-optimized schemes beat the
accesses-optimized ones, which beat the zero-stall baseline for the
depth-wise-dominated models; the baseline bar is buffer-independent.
"""

from __future__ import annotations

from repro.experiments import fig8

from conftest import run_once


def test_fig8_latency_grid(benchmark, fresh, capsys):
    cells = run_once(benchmark, fig8.run)
    with capsys.disabled():
        print("\n" + fig8.to_table(cells).render())

    by = {(c.model, c.glb_kb): c for c in cells}

    for cell in cells:
        # Objective ordering within a scheme family.
        assert cell.het_l_cycles <= cell.het_a_cycles + 1e-6
        assert cell.hom_l_cycles <= cell.hom_a_cycles + 1e-6
        # Het never loses to Hom on its own objective.
        assert cell.het_l_cycles <= cell.hom_l_cycles + 1e-6

    # Baseline latency is one bar per model (buffer-independent).
    for model in {c.model for c in cells}:
        baselines = {by[(model, g)].baseline_cycles for g in (64, 128, 256, 512, 1024)}
        assert len(baselines) == 1

    # Depth-wise-heavy models see the large reductions (paper: up to 56%
    # for MnasNet); filter-heavy GoogLeNet/ResNet18 see the smallest.
    assert by[("MnasNet", 1024)].reduction_vs_baseline(
        by[("MnasNet", 1024)].het_l_cycles
    ) >= 20.0
    assert by[("GoogLeNet", 64)].reduction_vs_baseline(
        by[("GoogLeNet", 64)].het_l_cycles
    ) <= by[("MnasNet", 64)].reduction_vs_baseline(by[("MnasNet", 64)].het_l_cycles)
