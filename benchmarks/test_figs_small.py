"""Benchmarks for the remaining figures: 1, 3, 6, 7, 9, 10, 11."""

from __future__ import annotations

import pytest

from repro.experiments import fig1, fig3, fig6, fig7, fig9, fig10, fig11

from conftest import run_once


def test_fig1_motivation(benchmark, fresh, capsys):
    cases = run_once(benchmark, fig1.run)
    with capsys.disabled():
        print("\n" + fig1.to_table(cases).render())
    by = {c.case: c for c in cases}
    assert by["A"].separate_fit["filter"] < 0.05  # filters strand in case A
    assert by["B"].separate_fit["ifmap"] < 0.20  # feature maps strand in B
    assert by["A"].glb_feasible and by["B"].glb_feasible


def test_fig3_resnet18_breakdown(benchmark, fresh, capsys):
    rows = run_once(benchmark, fig3.run)
    with capsys.disabled():
        print("\n" + fig3.to_table(rows).render())
    # Early layers feature-map-heavy, late layers filter-heavy (paper §3.3).
    assert rows[1].ifmap_kib + rows[1].ofmap_kib > rows[1].filter_kib
    assert rows[-2].filter_kib > rows[-2].ifmap_kib + rows[-2].ofmap_kib


def test_fig6_het_breakdown(benchmark, fresh, capsys):
    rows = run_once(benchmark, fig6.run)
    with capsys.disabled():
        print("\n" + fig6.to_table(rows).render())
    assert len(rows) == 21
    assert all(r.total_kib <= 64.0 + 1e-9 for r in rows)
    # The allocations change policy across the network (heterogeneity).
    assert len({r.label for r in rows}) >= 3


def test_fig7_data_width_sweep(benchmark, fresh, capsys):
    cells = run_once(benchmark, fig7.run)
    with capsys.disabled():
        print("\n" + fig7.to_table(cells).render())
    by = {(c.data_width_bits, c.glb_kb): c for c in cells}
    # Het's edge over Hom grows with data width at the smallest buffer and
    # fades with larger buffers (paper Fig. 7's trend).
    assert by[(32, 64)].het_benefit_pct >= by[(8, 64)].het_benefit_pct
    assert by[(32, 1024)].het_benefit_pct <= by[(32, 64)].het_benefit_pct
    for c in cells:
        assert c.het_benefit_pct >= -1e-9


def test_fig9_objective_tradeoff(benchmark, fresh, capsys):
    rows = run_once(benchmark, fig9.run)
    with capsys.disabled():
        print("\n" + fig9.to_table(rows).render())
    for r in rows:
        assert r.latency_benefit_pct >= 0.0
        assert r.accesses_benefit_pct <= 1e-9
    # At least one model pays a double-digit access penalty for latency
    # (paper: MobileNet −33%).
    assert min(r.accesses_benefit_pct for r in rows) <= -5.0


def test_fig10_prefetching(benchmark, fresh, capsys):
    rows = run_once(benchmark, fig10.run)
    with capsys.disabled():
        print("\n" + fig10.to_table(rows).render())
    assert all(r.latency_benefit_pct > 5.0 for r in rows)  # paper: ~15%
    assert rows[0].accesses_benefit_pct <= 0.0  # penalty at 64 kB
    assert all(r.prefetch_coverage >= 0.9 for r in rows)  # paper: 93–100%


def test_fig11_interlayer_reuse(benchmark, fresh, capsys):
    rows = run_once(benchmark, fig11.run)
    geo_acc, geo_lat = fig11.geomean_benefits(glb_kb=1024)
    with capsys.disabled():
        print("\n" + fig11.to_table(rows).render())
        print(f"all-model geomean @1MB: accesses {geo_acc:+.1f}%, latency {geo_lat:+.1f}%")
    benefits = [r.accesses_benefit_pct for r in rows]
    assert benefits == sorted(benefits)  # grows with buffer size
    assert rows[-1].accesses_benefit_pct == pytest.approx(70.0, abs=10.0)  # paper: 70%
    assert rows[-1].coverage >= 0.9  # paper: 98%
    assert geo_acc == pytest.approx(47.0, abs=15.0)  # paper: 47%
