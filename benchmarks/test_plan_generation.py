"""Micro-benchmarks of the analysis pipeline itself.

The paper reports that generating the management schemes for all models
takes ~1 minute on a laptop while the SCALE-Sim baseline takes >5 hours
(§4).  These benchmarks quantify our implementation's per-call costs with
proper statistical rounds (they are cheap enough to repeat).
"""

from __future__ import annotations

from repro.analyzer import Objective, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.estimators import evaluate_layer
from repro.nn.zoo import get_model
from repro.scalesim import baseline_config, simulate

SPEC64 = AcceleratorSpec(glb_bytes=kib(64))


def test_bench_evaluate_single_layer(benchmark):
    layer = get_model("ResNet18")[5]
    result = benchmark(evaluate_layer, layer, SPEC64)
    assert result


def test_bench_het_plan_resnet18(benchmark):
    model = get_model("ResNet18")
    plan = benchmark(plan_heterogeneous, model, SPEC64)
    assert len(plan.assignments) == 21


def test_bench_het_plan_efficientnet(benchmark):
    model = get_model("EfficientNetB0")
    plan = benchmark(plan_heterogeneous, model, SPEC64)
    assert len(plan.assignments) == 82


def test_bench_het_plan_with_interlayer_dp(benchmark):
    model = get_model("MnasNet")
    plan = benchmark(
        plan_heterogeneous,
        model,
        SPEC64,
        Objective.ACCESSES,
        interlayer=True,
        interlayer_mode="joint",
    )
    assert len(plan.assignments) == 53


def test_bench_baseline_simulation(benchmark):
    model = get_model("ResNet18")
    config = baseline_config(kib(64), 0.5)
    result = benchmark(simulate, model, config)
    assert result.total_cycles > 0
