"""Benchmarks for the extension studies (energy, ablations, resolution,
Pareto, multi-tenant scheduling)."""

from __future__ import annotations

import pytest

from repro.analyzer import pareto_frontier, plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.experiments import ablations, energy, resolution
from repro.nn.zoo import get_model
from repro.runtime import Discipline, Request, schedule

from conftest import run_once


def test_energy_comparison(benchmark, fresh, capsys):
    cells = run_once(benchmark, energy.run)
    with capsys.disabled():
        print("\n" + energy.to_table(cells).render())
    by = {(c.model, c.glb_kb): c for c in cells}
    # Access reductions translate to energy reductions at small buffers.
    assert by[("ResNet18", 64)].reduction_pct > 30.0
    for c in cells:
        assert 0.0 < c.het_dram_share < 1.0


def test_ablation_interlayer_modes(benchmark, fresh, capsys):
    rows = run_once(benchmark, ablations.interlayer_modes)
    with capsys.disabled():
        print("\n" + ablations.interlayer_modes_table(rows).render())
    assert all(r.joint_extra_benefit_pct >= -1e-9 for r in rows)
    # The DP finds extra donations somewhere in the sweep.
    assert any(r.joint_extra_benefit_pct > 1.0 for r in rows)


def test_ablation_fallback_participation(benchmark, fresh, capsys):
    rows = run_once(benchmark, ablations.fallback_participation)
    with capsys.disabled():
        print("\n" + ablations.fallback_participation_table(rows).render())
    assert all(r.search_benefit_pct >= -1e-9 for r in rows)


def test_ablation_baseline_dataflows(benchmark, fresh, capsys):
    rows = run_once(benchmark, ablations.baseline_dataflows)
    with capsys.disabled():
        print("\n" + ablations.baseline_dataflows_table(rows).render())
    assert all(min(r.os_cycles, r.ws_cycles, r.is_cycles) > 0 for r in rows)


def test_resolution_sweep(benchmark, fresh, capsys):
    rows = run_once(benchmark, resolution.run)
    with capsys.disabled():
        print("\n" + resolution.to_table(rows).render())
    accesses = [r.accesses_bytes for r in rows]
    assert accesses == sorted(accesses)


def test_pareto_frontier(benchmark, fresh, capsys):
    spec = AcceleratorSpec(glb_bytes=kib(64))
    model = get_model("MobileNet")
    frontier = run_once(benchmark, pareto_frontier, model, spec, 11)
    with capsys.disabled():
        print(f"\nPareto frontier ({len(frontier)} points):")
        for p in frontier:
            print(
                f"  alpha={p.alpha:.2f} acc={p.accesses_bytes / 2**20:6.2f}MB "
                f"lat={p.latency_cycles:10.0f}"
            )
    assert len(frontier) >= 3


def test_multitenant_scheduling(benchmark, fresh, capsys):
    spec = AcceleratorSpec(glb_bytes=kib(256))
    requests = [
        Request(name, plan_heterogeneous(get_model(name), spec, interlayer=True))
        for name in ("MnasNet", "MobileNet")
    ]

    def run_both():
        return (
            schedule(requests, Discipline.FCFS),
            schedule(requests, Discipline.ROUND_ROBIN),
        )

    fcfs, rr = run_once(benchmark, run_both)
    with capsys.disabled():
        print(
            f"\nfcfs: makespan={fcfs.makespan_cycles:,.0f} "
            f"traffic={fcfs.total_accesses_bytes / 2**20:.2f}MB | "
            f"round-robin: makespan={rr.makespan_cycles:,.0f} "
            f"traffic={rr.total_accesses_bytes / 2**20:.2f}MB "
            f"(broken donations: {rr.total_broken_donations})"
        )
    assert rr.total_broken_donations > 0
    assert rr.total_accesses_bytes >= fcfs.total_accesses_bytes


def test_bounds_optimality_gap(benchmark, fresh, capsys):
    from repro.experiments import bounds

    rows = run_once(benchmark, bounds.run)
    with capsys.disabled():
        print("\n" + bounds.to_table(rows).render())
    # The extension headline: Het sits essentially on the layer-by-layer
    # communication lower bound at every configuration.
    for row in rows:
        assert row.gap_pct >= -1e-9
        assert row.gap_pct <= 10.0
    large = [r for r in rows if r.glb_kb == 1024]
    assert all(r.gap_pct <= 1.0 for r in large)
