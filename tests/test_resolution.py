"""Resolution-sweep extension experiment."""

from repro.experiments import resolution


class TestResolutionSweep:
    def test_macs_grow_with_resolution(self):
        rows = resolution.run(resolutions=(128, 224))
        assert rows[0].total_macs < rows[1].total_macs

    def test_accesses_grow_with_resolution(self):
        rows = resolution.run(resolutions=(128, 192, 256))
        accesses = [r.accesses_bytes for r in rows]
        assert accesses == sorted(accesses)

    def test_latency_grows_with_resolution(self):
        rows = resolution.run(resolutions=(128, 256))
        assert rows[0].latency_cycles < rows[1].latency_cycles

    def test_table_renders(self):
        rows = resolution.run(resolutions=(128, 160))
        text = resolution.to_table(rows).render()
        assert "128x128" in text and "160x160" in text
