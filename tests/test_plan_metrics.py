"""ExecutionPlan aggregates and coverage metrics."""

import pytest

from repro.analyzer import Objective, plan_heterogeneous
from repro.analyzer.plan import ExecutionPlan
from repro.arch import AcceleratorSpec, kib
from repro.nn.zoo import get_model


@pytest.fixture(scope="module")
def plan():
    return plan_heterogeneous(
        get_model("MobileNet"), AcceleratorSpec(glb_bytes=kib(128))
    )


class TestAggregates:
    def test_totals_sum_assignments(self, plan):
        assert plan.total_accesses_bytes == sum(
            a.accesses_bytes for a in plan.assignments
        )
        assert plan.total_latency_cycles == pytest.approx(
            sum(a.latency_cycles for a in plan.assignments)
        )

    def test_reads_plus_writes(self, plan):
        assert (
            plan.total_read_bytes + plan.total_write_bytes
            == plan.total_accesses_bytes
        )

    def test_max_memory_within_glb(self, plan):
        assert plan.max_memory_bytes <= plan.spec.glb_bytes

    def test_policies_used_sorted_unique(self, plan):
        used = plan.policies_used
        assert list(used) == sorted(set(used))
        assert all(
            a.label in used for a in plan.assignments
        )

    def test_policy_families_strip_prefetch(self, plan):
        for family in plan.policy_families_used:
            assert not family.endswith("+p")

    def test_prefetch_coverage_range(self, plan):
        assert 0.0 <= plan.prefetch_coverage <= 1.0

    def test_interlayer_counters_zero_without_interlayer(self, plan):
        assert plan.interlayer_pairs_applied == 0
        assert plan.interlayer_coverage == 0.0

    def test_pairs_possible_matches_model(self, plan):
        model = plan.model
        expected = sum(
            1 for i in range(len(model.layers) - 1) if model.feeds_next(i)
        )
        assert plan.interlayer_pairs_possible == expected


class TestValidation:
    def test_wrong_assignment_count_rejected(self, plan):
        with pytest.raises(ValueError, match="assignments"):
            ExecutionPlan(
                model=plan.model,
                spec=plan.spec,
                objective=Objective.ACCESSES,
                scheme="bad",
                assignments=plan.assignments[:-1],
            )

    def test_iteration(self, plan):
        assert len(list(plan)) == len(plan.model)
