"""Delta re-planning (:class:`repro.analyzer.SweepPlanner`) parity tests.

The delta planner must produce plans *byte-identical* to full per-point
re-planning across a GLB ladder — including audit trails — while actually
re-planning strictly fewer layers (asserted through the PR 5 metrics
counters), and must invalidate everything when any non-GLB spec field
moves.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace

import pytest

from repro.analyzer import (
    Objective,
    SweepPlanner,
    make_assignment,
    plan_heterogeneous,
    plan_to_dict,
    select_policy,
)
from repro.analyzer.plan import ExecutionPlan
from repro.analyzer.planner import candidate_evaluations
from repro.arch import AcceleratorSpec, kib
from repro.experiments import cache
from repro.experiments.common import het_plan_ladder, spec_for
from repro.experiments.sweep import bandwidth_sweep, glb_sweep
from repro.nn.zoo import get_model
from repro.obs import metrics_registry
from repro.plancore import ENV_SCALAR_PLANNER

LADDER_KB = (64, 128, 256, 512, 1024)


def _json(plan: ExecutionPlan) -> tuple[str, str]:
    exported = json.dumps(plan_to_dict(plan), sort_keys=True)
    trail = (
        json.dumps(plan.explain().to_payload(), sort_keys=True)
        if plan.audit is not None
        else ""
    )
    return exported, trail


def _counter(name: str) -> float:
    return metrics_registry().counter(name).value


@pytest.mark.parametrize("model_name", ["ResNet18", "EfficientNetB0"])
@pytest.mark.parametrize("objective", [Objective.ACCESSES, Objective.LATENCY])
def test_delta_equals_full_replanning_across_glb_ladder(model_name, objective):
    model = get_model(model_name)
    planner = SweepPlanner(model, objective)
    for glb_kb in LADDER_KB:
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        delta = planner.plan(spec)
        full = plan_heterogeneous(model, spec, objective)
        assert _json(delta) == _json(full), f"{model_name} @ {glb_kb} kB"


def test_delta_replans_strictly_fewer_layers():
    model = get_model("ResNet18")
    planner = SweepPlanner(model, Objective.ACCESSES)
    replanned0 = _counter("planner_layers_replanned_count")
    reused0 = _counter("planner_layers_reused_count")
    for glb_kb in LADDER_KB:
        planner.plan(AcceleratorSpec(glb_bytes=kib(glb_kb)))
    replanned = _counter("planner_layers_replanned_count") - replanned0
    reused = _counter("planner_layers_reused_count") - reused0
    total = len(LADDER_KB) * len(model.layers)
    assert replanned + reused == total
    assert reused > 0, "expected at least one reused layer on the ladder"
    assert replanned < total, "delta path must re-plan strictly fewer layers"


def test_non_glb_spec_move_invalidates_every_layer():
    model = get_model("MobileNet")
    planner = SweepPlanner(model, Objective.LATENCY)
    spec = AcceleratorSpec(glb_bytes=kib(256))
    planner.plan(spec)
    replanned0 = _counter("planner_layers_replanned_count")
    reused0 = _counter("planner_layers_reused_count")
    moved = replace(spec, dram_bandwidth_elems_per_cycle=32.0)
    delta = planner.plan(moved)
    assert _counter("planner_layers_replanned_count") - replanned0 == len(
        model.layers
    )
    assert _counter("planner_layers_reused_count") - reused0 == 0
    assert _json(delta) == _json(plan_heterogeneous(model, moved, Objective.LATENCY))
    # Re-planning the original spec afterwards must also be a full replan
    # (the bandwidth excursion invalidated the stored evaluations).
    replanned1 = _counter("planner_layers_replanned_count")
    back = planner.plan(spec)
    assert _counter("planner_layers_replanned_count") - replanned1 == len(
        model.layers
    )
    assert _json(back) == _json(plan_heterogeneous(model, spec, Objective.LATENCY))


def test_scalar_mode_disables_reuse_but_not_parity():
    model = get_model("AlexNet")
    planner = SweepPlanner(model, Objective.ACCESSES)
    os.environ[ENV_SCALAR_PLANNER] = "1"
    try:
        reused0 = _counter("planner_layers_reused_count")
        for glb_kb in (128, 256):
            spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
            assert _json(planner.plan(spec)) == _json(
                plan_heterogeneous(model, spec, Objective.ACCESSES)
            )
        assert _counter("planner_layers_reused_count") == reused0
    finally:
        os.environ.pop(ENV_SCALAR_PLANNER, None)


def test_glb_sweep_delta_path_matches_per_point_path():
    model = get_model("MnasNet")
    sizes = [kib(k) for k in LADDER_KB]
    # interlayer=False is not delta-reproducible by kwarg filtering, so it
    # forces the historical per-point path with identical semantics.
    delta_points = glb_sweep(model, sizes)
    full_points = glb_sweep(model, sizes, interlayer=False)
    assert delta_points == full_points


def test_bandwidth_sweep_delta_path_matches_per_point_path():
    model = get_model("AlexNet")
    bandwidths = [4.0, 16.0, 64.0]
    delta_points = bandwidth_sweep(model, bandwidths)
    full_points = bandwidth_sweep(model, bandwidths, interlayer=False)
    assert delta_points == full_points


def test_het_plan_ladder_matches_point_planning_and_cache_keys(tmp_path):
    model = get_model("MobileNetV2")
    previous = os.environ.get(cache.ENV_CACHE_DIR)
    os.environ[cache.ENV_CACHE_DIR] = str(tmp_path)
    try:
        plans = het_plan_ladder(model, (64, 256))
        for glb_kb, plan in zip((64, 256), plans):
            spec = spec_for(glb_kb)
            # Byte-identical to a fresh full plan...
            assert _json(plan) == _json(plan_heterogeneous(model, spec))
            # ...and stored under cached_het_plan's exact key.
            key = cache.plan_cache_key(
                "het",
                model,
                spec,
                Objective.ACCESSES,
                allow_prefetch=True,
                interlayer=False,
                interlayer_mode="opportunistic",
            )
            cached = cache.fetch(key, lambda: pytest.fail("cache miss"))
            assert _json(cached) == _json(plan)
    finally:
        if previous is None:
            os.environ.pop(cache.ENV_CACHE_DIR, None)
        else:
            os.environ[cache.ENV_CACHE_DIR] = previous


def test_named_only_ablation_byte_identical_to_manual_construction():
    """The rescue-only ablation, now delta-planned, must reproduce the
    pre-delta manual construction exactly (no audit, same scheme)."""
    model = get_model("ResNet18")
    objective = Objective.ACCESSES
    planner = SweepPlanner(
        model,
        objective,
        scheme="het(named-only)",
        always_fallback=False,
        record_audit=False,
    )
    for glb_kb in (64, 256):
        spec = spec_for(glb_kb)
        delta = planner.plan(spec)
        candidates = candidate_evaluations(model, spec, always_fallback=False)
        manual = ExecutionPlan(
            model=model,
            spec=spec,
            objective=objective,
            scheme="het(named-only)",
            assignments=tuple(
                make_assignment(i, select_policy(evs, objective), spec)
                for i, evs in enumerate(candidates)
            ),
        )
        assert delta.audit is None
        assert _json(delta) == _json(manual)
