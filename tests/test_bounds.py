"""Communication lower bounds and the optimality-gap experiment."""

import pytest

from repro.analyzer import plan_heterogeneous
from repro.arch import AcceleratorSpec, kib
from repro.estimators import (
    layer_bound,
    model_bound,
    model_bound_interlayer,
    optimality_gap,
)
from repro.experiments import bounds as bounds_experiment
from repro.nn.zoo import get_model, paper_models


class TestLayerBound:
    def test_compulsory_terms(self, conv_layer):
        bound = layer_bound(conv_layer, kib(64))
        expected = 58 * 58 * 64 + conv_layer.filter_elems + conv_layer.ofmap_elems
        assert bound.compulsory == expected

    def test_pebbling_grows_as_buffer_shrinks(self, conv_layer):
        small = layer_bound(conv_layer, 1_000)
        large = layer_bound(conv_layer, 1_000_000)
        assert small.pebbling > large.pebbling

    def test_combined_is_max(self, conv_layer):
        bound = layer_bound(conv_layer, 100)
        assert bound.combined == max(bound.compulsory, bound.pebbling)

    def test_rejects_bad_buffer(self, conv_layer):
        with pytest.raises(ValueError):
            layer_bound(conv_layer, 0)


class TestModelBounds:
    @pytest.mark.parametrize("glb_kb", [64, 1024])
    def test_every_plan_respects_the_bound(self, glb_kb):
        """No plan may move less than the lower bound — ever."""
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        for model in paper_models():
            bound = model_bound(model, spec)
            plan = plan_heterogeneous(model, spec)
            assert plan.total_accesses_bytes >= bound, model.name

    @pytest.mark.parametrize("glb_kb", [64, 1024])
    def test_interlayer_plans_respect_their_bound(self, glb_kb):
        spec = AcceleratorSpec(glb_bytes=kib(glb_kb))
        for model in paper_models():
            bound = model_bound_interlayer(model, spec)
            plan = plan_heterogeneous(model, spec, interlayer=True)
            assert plan.total_accesses_bytes >= bound, model.name

    def test_interlayer_bound_is_weaker(self):
        spec = AcceleratorSpec(glb_bytes=kib(256))
        for model in paper_models():
            assert model_bound_interlayer(model, spec) <= model_bound(model, spec)

    def test_het_is_near_optimal_at_large_buffers(self):
        """The headline extension finding: Het sits on the bound."""
        spec = AcceleratorSpec(glb_bytes=kib(1024))
        for model in paper_models():
            gap = optimality_gap(plan_heterogeneous(model, spec))
            assert gap.gap_pct <= 1.0, (model.name, gap.gap_pct)

    def test_gap_small_even_at_64k(self):
        spec = AcceleratorSpec(glb_bytes=kib(64))
        for model in paper_models():
            gap = optimality_gap(plan_heterogeneous(model, spec))
            assert gap.gap_pct <= 10.0, (model.name, gap.gap_pct)


class TestBoundsExperiment:
    def test_rows_and_rendering(self):
        rows = bounds_experiment.run(models=("ResNet18",), glb_sizes_kb=(64, 1024))
        text = bounds_experiment.to_table(rows).render()
        assert "ResNet18" in text and "gap" in text
        for row in rows:
            assert row.gap_pct >= -1e-9
            assert row.il_gap_pct >= -1e-9
